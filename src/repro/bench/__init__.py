"""Benchmark harness: workloads, bounds, runners and table formatters.

Regenerates every table and figure of the paper's evaluation:

* :mod:`repro.bench.shapes` — the ILT-10 clip suite and the known-optimal
  AGB/RGB suites (substitutes for the UCLA/UCSD benchmark download; see
  DESIGN.md).
* :mod:`repro.bench.bounds` — heuristic lower/upper shot-count bounds
  standing in for the ILP bounds of [16].
* :mod:`repro.bench.runner` — run a set of fracturers over a suite.
* :mod:`repro.bench.tables` — Table 2 / Table 3 formatters.
* :mod:`repro.bench.figures` — SVG renderings of Figures 1–5 from the
  actual algorithm internals.
"""

from repro.bench.bounds import lower_bound_shots, upper_bound_shots
from repro.bench.metrics import SolutionMetrics, solution_metrics
from repro.bench.runner import SuiteResult, run_suite
from repro.bench.shapes import agb_suite, ilt_suite, rgb_suite
from repro.bench.tables import format_table2, format_table3

__all__ = [
    "SolutionMetrics",
    "SuiteResult",
    "agb_suite",
    "format_table2",
    "format_table3",
    "ilt_suite",
    "lower_bound_shots",
    "rgb_suite",
    "run_suite",
    "solution_metrics",
    "upper_bound_shots",
]
