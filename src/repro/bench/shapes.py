"""Benchmark workloads: synthetic ILT clips and known-optimal shapes.

The paper evaluates on ten real ILT mask shapes and ten generated
benchmark shapes with known optimal shot count, all from the UCLA/UCSD
benchmarking suite [16, 17], which is not redistributable here.  Per the
substitution policy in DESIGN.md we regenerate equivalents:

* :func:`ilt_suite` — a deterministic *toy ILT flow*: intended wafer
  patterns (contacts, bars, line-ends) are blurred, perturbed with
  low-frequency "optimizer noise" and thresholded, producing the
  many-vertex curvilinear contours characteristic of inverse lithography
  output.  Ten clips of graded complexity.

* :func:`agb_suite` / :func:`rgb_suite` — exactly the construction [16]
  uses for shapes with known achievable shot count: place K rectangles,
  simulate their summed e-beam intensity, and take the ρ-contour as the
  target.  K shots reproduce the shape *by construction*, so K is the
  reference optimum.  AGB clips chain adjacent/aligned rectangles into
  aggregates; RGB clips scatter overlapping rectangles around a centre,
  which produces the "wavy boundary" contours the paper calls out as
  hard.  The per-clip K values match Table 3: AGB 3/16/17/7/3 and
  RGB 5/7/5/9/6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

# Known-optimal shot counts per Table 3 of the paper.
AGB_OPTIMA = (3, 16, 17, 7, 3)
RGB_OPTIMA = (5, 7, 5, 9, 6)

_ILT_GRID = 320  # pixels per side of an ILT clip grid
_MARGIN = 40.0  # grid padding (nm) ≥ FractureSpec.grid_margin for defaults


@dataclass(frozen=True, slots=True)
class KnownOptimalShape:
    """A generated benchmark target together with its construction."""

    shape: MaskShape
    optimal_shots: int
    generator_shots: tuple[Rect, ...]


def ilt_suite(pitch: float = 1.0) -> list[MaskShape]:
    """The ten synthetic ILT clips (ILT-1 … ILT-10), graded by complexity.

    Intended layouts are thin bars, elbows, crosses and contact pairs
    (feature width ≈ 35–50 nm, typical of post-ILT main features at the
    14 nm node); the toy ILT flow then waves their boundaries.
    """
    recipes = [
        # (seed, intended feature rects, blur, noise amp, noise blur, threshold)
        (31, [(90, 140, 240, 185)], 8.0, 0.30, 6.0, 0.42),
        (32, [(135, 70, 182, 250)], 8.0, 0.34, 7.0, 0.42),
        (33, [(80, 90, 240, 132), (80, 190, 240, 232)], 8.0, 0.32, 6.0, 0.42),
        (34, [(70, 130, 250, 172), (140, 60, 182, 260)], 8.0, 0.36, 7.0, 0.42),
        (35, [(80, 80, 125, 240), (125, 195, 250, 240)], 8.0, 0.34, 6.5, 0.42),
        (36, [(60, 140, 260, 182), (90, 60, 132, 260)], 8.0, 0.38, 7.5, 0.42),
        (9, [(60, 140, 260, 180), (140, 60, 180, 260)], 8.0, 0.40, 8.0, 0.42),
        (38, [(60, 90, 250, 130), (60, 200, 250, 240), (140, 120, 180, 210)], 8.0, 0.36, 7.0, 0.42),
        (39, [(70, 70, 115, 250), (160, 70, 205, 250), (100, 145, 180, 185)], 8.0, 0.38, 7.5, 0.42),
        (40, [(60, 60, 110, 110), (150, 90, 255, 132), (80, 180, 125, 255), (170, 180, 250, 222)], 8.0, 0.36, 7.0, 0.42),
    ]
    shapes = []
    for index, (seed, features, blur, noise_amp, noise_blur, threshold) in enumerate(
        recipes, 1
    ):
        mask, grid = _toy_ilt_mask(
            seed, features, blur, noise_amp, noise_blur, threshold, pitch
        )
        shapes.append(MaskShape.from_mask(mask, grid, name=f"ILT-{index}"))
    return shapes


def _toy_ilt_mask(
    seed: int,
    features: list[tuple[int, int, int, int]],
    blur: float,
    noise_amp: float,
    noise_blur: float,
    threshold: float,
    pitch: float,
) -> tuple[np.ndarray, PixelGrid]:
    """One toy inverse-lithography mask contour.

    The intended pattern is blurred (optical low-pass), perturbed with
    smooth pseudo-gradient noise (what ILT optimizers add while chasing
    process-window metrics) and thresholded.  The result has curvy,
    non-rectilinear boundaries at the pixel grid — the workload the
    paper's method is built for.  Only the largest connected component is
    kept so each clip is a single polygon, as in the paper's per-shape
    fracturing setting.
    """
    rng = np.random.default_rng(seed)
    grid = PixelGrid(0.0, 0.0, pitch, _ILT_GRID, _ILT_GRID)
    field = np.zeros(grid.shape)
    for x_lo, y_lo, x_hi, y_hi in features:
        field[y_lo:y_hi, x_lo:x_hi] = 1.0
    smooth_noise = gaussian_filter(rng.standard_normal(grid.shape), noise_blur)
    smooth_noise /= max(1e-12, np.abs(smooth_noise).max())
    blurred = gaussian_filter(field, blur)
    mask = (blurred + noise_amp * smooth_noise) > threshold
    # MRC cleanup: real masks obey minimum-width/minimum-notch rules, so
    # slivers and notches narrower than ~the minimum shot size never
    # appear; open/close with a disc enforces the same here (without it
    # a sub-L_min spike would make the clip unfixable for every method).
    mask = _mrc_clean(mask, radius_close=8, radius_open=5)
    return _largest_component(mask), grid


def _disc(radius_px: int) -> np.ndarray:
    span = np.arange(-radius_px, radius_px + 1)
    return (span[:, None] ** 2 + span[None, :] ** 2) <= radius_px**2


def _mrc_clean(mask: np.ndarray, radius_close: int, radius_open: int) -> np.ndarray:
    """Morphological close-then-open with disc structuring elements.

    The closing radius exceeds the opening radius because a notch
    narrower than ~2σ is physically unwritable at fixed dose (shoulder
    shots bleed ≥ ρ into it) — mask rule checks forbid exactly those.
    """
    from scipy.ndimage import binary_closing, binary_opening

    closed = binary_closing(mask, structure=_disc(radius_close))
    return binary_opening(closed, structure=_disc(radius_open))


def agb_suite(
    spec: FractureSpec = FractureSpec(), pitch: float = 1.0
) -> list[KnownOptimalShape]:
    """AGB-1 … AGB-5: aggregates of adjacent/aligned rectangles."""
    out = []
    for index, k in enumerate(AGB_OPTIMA, 1):
        rects = _aggregate_rects(seed=100 + index, count=k, spec=spec)
        out.append(_known_optimal_shape(rects, spec, pitch, f"AGB-{index}"))
    return out


def rgb_suite(
    spec: FractureSpec = FractureSpec(), pitch: float = 1.0
) -> list[KnownOptimalShape]:
    """RGB-1 … RGB-5: randomly scattered overlapping rectangles."""
    out = []
    for index, k in enumerate(RGB_OPTIMA, 1):
        rects = _random_rects(seed=200 + index, count=k, spec=spec)
        out.append(_known_optimal_shape(rects, spec, pitch, f"RGB-{index}"))
    return out


def _known_optimal_shape(
    rects: list[Rect], spec: FractureSpec, pitch: float, name: str
) -> KnownOptimalShape:
    """Simulate the K generator shots and take the ρ-contour as target."""
    bbox = rects[0]
    for rect in rects[1:]:
        bbox = bbox.union_bbox(rect)
    grid = PixelGrid.for_rect(bbox, pitch, margin=_MARGIN)
    imap = IntensityMap(grid, spec.sigma)
    for rect in rects:
        imap.add(rect)
    mask = _largest_component(imap.total >= spec.rho)
    shape = MaskShape.from_mask(mask, grid, name=name)
    _check_no_redundant_shot(rects, shape, spec, name)
    _check_witnesses(rects, shape, spec, name)
    return KnownOptimalShape(
        shape=shape, optimal_shots=len(rects), generator_shots=tuple(rects)
    )


def _check_witnesses(
    rects: list[Rect], shape: MaskShape, spec: FractureSpec, name: str
) -> None:
    """Generator guarantee: the K rect centres are an antirectangle set.

    If no valid shot can cover two generator-rect centres, any solution
    needs ≥ K shots — combined with the K-shot construction this makes K
    the optimum (up to the finite slide sampling of the coverability
    test; see ``repro.bench.bounds``).
    """
    import numpy as np

    from repro.bench.bounds import _pair_coverable, overdose_depth
    from repro.geometry.sat import SummedAreaTable

    pixels = shape.pixels(spec.gamma)
    off_sat = SummedAreaTable(pixels.off.astype(np.float64), shape.grid)
    depth = overdose_depth(spec) + shape.grid.pitch
    centers = [(r.center.x, r.center.y) for r in rects]
    for i in range(len(centers)):
        for j in range(i + 1, len(centers)):
            if _pair_coverable(off_sat, spec, depth, centers[i], centers[j]):
                raise RuntimeError(
                    f"{name}: one shot could cover generator rects {i} and "
                    f"{j} — construction count is not a valid optimum"
                )


def _check_no_redundant_shot(
    rects: list[Rect], shape: MaskShape, spec: FractureSpec, name: str
) -> None:
    """Generator sanity: every construction shot must be necessary.

    If dropping a shot still satisfies Eq. 4, the advertised optimum K is
    an overestimate and Table 3 normalization would be meaningless.
    Raises at generation time so a bad seed is caught immediately.
    """
    from repro.mask.constraints import check_solution

    for index in range(len(rects)):
        reduced = rects[:index] + rects[index + 1 :]
        report = check_solution(reduced, shape, spec)
        if report.total_failing == 0:
            raise RuntimeError(
                f"{name}: generator shot {index} is redundant — "
                "construction count is not a valid optimum"
            )


def _aggregate_rects(seed: int, count: int, spec: FractureSpec) -> list[Rect]:
    """Regular diagonal staircase of corner-overlapping rectangles (AGB).

    Consecutive rectangles overlap only at a small corner patch and are
    offset diagonally, so the bounding box of any two rectangles contains
    a large empty quadrant — no single valid shot can replace two of
    them, which is what makes the construction count K (approximately)
    optimal.  The zig-zag direction flips periodically to keep the
    aggregate compact.
    """
    rng = np.random.default_rng(seed)
    return _diagonal_chain(
        rng,
        count,
        spec,
        size_range=(int(spec.lmin * 3.5), int(spec.lmin * 6)),
        flip_period=4,
    )


def _random_rects(seed: int, count: int, spec: FractureSpec) -> list[Rect]:
    """Random diagonal walk of overlapping rectangles (RGB family).

    Same pairwise-uncoverable guarantee as AGB but with more size and
    direction randomness, producing the "wavy boundary" contours the
    paper singles out as hard.
    """
    rng = np.random.default_rng(seed)
    return _diagonal_chain(
        rng,
        count,
        spec,
        size_range=(int(spec.lmin * 3.5), int(spec.lmin * 6)),
        flip_period=0,  # random direction changes
    )


def _diagonal_chain(
    rng: np.random.Generator,
    count: int,
    spec: FractureSpec,
    size_range: tuple[int, int],
    flip_period: int,
) -> list[Rect]:
    """Chain ``count`` rectangles corner-to-corner along diagonals."""
    lmin = spec.lmin
    # The corner overlap trades junction smoothness against the
    # optimality guarantee: 8 nm keeps the ρ-contour necks printable
    # while the rect centres stay pairwise-uncoverable (checked below).
    overlap = 10.0
    w = float(rng.integers(*size_range))
    h = float(rng.integers(*size_range))
    rects = [Rect(0.0, 0.0, w, h)]
    dx_sign, dy_sign = 1.0, 1.0
    for index in range(1, count):
        base = rects[-1]
        if flip_period:
            if index % flip_period == 0:
                dx_sign = -dx_sign
        elif rng.random() < 0.35:
            if rng.random() < 0.5:
                dx_sign = -dx_sign
            else:
                dy_sign = -dy_sign
        w = float(rng.integers(*size_range))
        h = float(rng.integers(*size_range))
        # Anchor the new rectangle so it overlaps the previous one in a
        # small corner patch and extends diagonally away from it.
        if dx_sign > 0:
            x0 = base.xtr - overlap
        else:
            x0 = base.xbl + overlap - w
        if dy_sign > 0:
            y0 = base.ytr - overlap
        else:
            y0 = base.ybl + overlap - h
        x0, y0 = round(x0), round(y0)
        candidate = Rect(x0, y0, x0 + w, y0 + h)
        if any(
            r.contains_rect(candidate) or candidate.contains_rect(r) for r in rects
        ):
            # Containment would make a generator shot redundant; nudge
            # the size and retry once (deterministically) before giving
            # up on this step direction.
            candidate = Rect(x0, y0, x0 + w + lmin, y0 + h + lmin)
        rects.append(candidate)
    return rects


def _largest_component(mask: np.ndarray) -> np.ndarray:
    """Deprecated alias of :func:`repro.geometry.labeling.largest_component`.

    Kept so existing callers keep working; the implementation moved to
    the geometry layer, where non-bench code may depend on it without a
    ``* → bench`` layering inversion.
    """
    from repro.geometry.labeling import largest_component

    return largest_component(mask)


def sraf_suite(pitch: float = 1.0) -> list[MaskShape]:
    """Five sub-resolution assist feature (SRAF) clips.

    SRAFs are the skinny scatter bars ILT places around main features —
    the workload matching pursuit was originally proposed for [13].
    Each clip is a single narrow, slightly wavy bar (width ≈ 1.5–2.5
    L_min) with curved ends; small enough that one to three shots
    suffice, narrow enough that edge placement is everything.
    """
    recipes = [
        # (seed, orientation, length, width, bend amplitude)
        (51, "h", 160, 16, 3.0),
        (52, "v", 140, 20, 5.0),
        (53, "h", 200, 24, 8.0),
        (54, "v", 180, 18, 6.0),
        (55, "h", 120, 22, 4.0),
    ]
    shapes = []
    for index, (seed, orientation, length, width, bend) in enumerate(recipes, 1):
        mask, grid = _sraf_mask(seed, orientation, length, width, bend, pitch)
        shapes.append(MaskShape.from_mask(mask, grid, name=f"SRAF-{index}"))
    return shapes


def _sraf_mask(
    seed: int,
    orientation: str,
    length: int,
    width: int,
    bend: float,
    pitch: float,
) -> tuple[np.ndarray, PixelGrid]:
    """A gently bent bar traced on the pixel grid."""
    rng = np.random.default_rng(seed)
    pad = 45
    size = length + 2 * pad
    grid = PixelGrid(0.0, 0.0, pitch, size, size)
    axis = np.arange(length)
    # Smooth low-frequency bend of the bar's centreline.
    phase = rng.uniform(0.0, 2.0 * np.pi)
    center = size / 2.0 + bend * np.sin(2.0 * np.pi * axis / length + phase)
    mask = np.zeros(grid.shape, dtype=bool)
    half = width / 2.0
    for k, c in zip(axis, center):
        lo = int(round(c - half))
        hi = int(round(c + half))
        if orientation == "h":
            mask[lo:hi, pad + k] = True
        else:
            mask[pad + k, lo:hi] = True
    # Rounded ends, as printed SRAFs have.
    mask = _mrc_clean(mask, radius_close=4, radius_open=4)
    return _largest_component(mask), grid
