"""Regenerate the paper's illustrative figures from algorithm internals.

Figures 1–5 of the paper are explanatory drawings; each function here
produces the corresponding SVG from the *actual* data structures of this
implementation, so the figures double as debugging views:

* Figure 1 — RDP boundary approximation + extracted shot corner points.
* Figure 2 — corner rounding of a single shot and the L_th definition.
* Figure 3 — graph-coloring approximate fracturing, step by step.
* Figure 4 — a degenerate color class: minimum-size shot extended to the
  opposite target boundary.
* Figure 5 — mergeable vs non-mergeable aligned shot pairs.
"""

from __future__ import annotations

import math

from repro.bench.shapes import ilt_suite
from repro.ebeam.corner import compute_lth, corner_rounding_contour
from repro.ebeam.intensity_map import IntensityMap
from repro.fracture.corner_points import extract_corner_points
from repro.fracture.graph_color import GraphBuildConfig, build_compatibility_graph
from repro.fracture.placement import shot_from_class
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid
from repro.geometry.rdp import rdp_simplify
from repro.geometry.rect import Rect
from repro.graphlib.clique_cover import clique_partition
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape
from repro.viz.render import PALETTE, canvas_for_shape, draw_target, intensity_contour
from repro.viz.svg import SvgCanvas

_TYPE_COLORS = {
    "bl": "#4477aa",
    "br": "#ee6677",
    "tl": "#228833",
    "tr": "#aa3377",
}


def _demo_shape(spec: FractureSpec) -> MaskShape:
    """A small ILT clip used by the boundary-processing figures."""
    return ilt_suite()[0]


def figure1(spec: FractureSpec = FractureSpec()) -> str:
    """RDP approximation (dashed) and typed shot corner points."""
    shape = _demo_shape(spec)
    simplified = rdp_simplify(shape.polygon, spec.gamma)
    corner_points = extract_corner_points(simplified, spec.lth)
    canvas = canvas_for_shape(shape, scale=2.5)
    draw_target(canvas, shape)
    pts = [(p.x, p.y) for p in simplified.vertices]
    canvas.polyline(pts + [pts[0]], stroke="#cc3311", stroke_width=1.5, dash="6,3")
    for scp in corner_points:
        canvas.circle(
            scp.point.x, scp.point.y, radius_px=3.5,
            fill=_TYPE_COLORS[scp.ctype.value],
        )
    bbox = shape.polygon.bounding_box()
    canvas.text(
        bbox.xbl, bbox.ytr + 14.0,
        f"Fig.1: RDP ({len(shape.polygon)}->{len(simplified)} vertices), "
        f"{len(corner_points)} corner points",
        size_px=13.0,
    )
    return canvas.to_string()


def figure2(spec: FractureSpec = FractureSpec()) -> str:
    """Corner rounding of one shot and the longest 45° chord L_th."""
    shot = Rect(0.0, 0.0, 60.0, 60.0)
    grid = PixelGrid(-25.0, -25.0, spec.pitch, 110, 110)
    imap = IntensityMap(grid, spec.sigma)
    imap.add(shot)
    canvas = SvgCanvas(-25.0, -25.0, 85.0, 85.0, scale=5.0)
    canvas.rect(shot.xbl, shot.ybl, shot.xtr, shot.ytr, stroke="#555555", dash="4,3")
    for seg in intensity_contour(imap.total, grid, spec.rho):
        canvas.polyline(seg, stroke="#4477aa", stroke_width=1.6)
    # The 45° chord the rounded corner writes (anchored at the bottom-left
    # corner region): offset so the chord is tangent to the ρ-contour.
    lth = compute_lth(spec.sigma, spec.gamma, spec.rho)
    contour = corner_rounding_contour(spec.sigma, spec.rho)
    mid = contour[len(contour) // 2]
    c = mid[0] + mid[1]
    half = lth / 2.0
    x_mid = c / 2.0
    canvas.line(
        x_mid - half / math.sqrt(2.0), c - (x_mid - half / math.sqrt(2.0)),
        x_mid + half / math.sqrt(2.0), c - (x_mid + half / math.sqrt(2.0)),
        stroke="#cc3311", stroke_width=2.0,
    )
    canvas.text(-20.0, 78.0, f"Fig.2: corner rounding, Lth = {lth:.1f} nm", size_px=13.0)
    return canvas.to_string()


def figure3(spec: FractureSpec = FractureSpec()) -> str:
    """Corner points colored by clique, with the resulting initial shots."""
    shape = _demo_shape(spec)
    config = GraphBuildConfig()
    simplified = rdp_simplify(shape.polygon, spec.gamma)
    corner_points = extract_corner_points(simplified, spec.lth)
    graph = build_compatibility_graph(corner_points, shape, spec, config)
    cliques = clique_partition(graph, strategy=config.coloring_strategy)
    canvas = canvas_for_shape(shape, scale=2.5)
    draw_target(canvas, shape)
    for index, clique in enumerate(cliques):
        color = PALETTE[index % len(PALETTE)]
        shot = shot_from_class([corner_points[v] for v in clique], shape, spec.lmin)
        if shot is not None:
            canvas.rect(
                shot.xbl, shot.ybl, shot.xtr, shot.ytr,
                fill=color, stroke=color, opacity=0.20, stroke_width=1.2,
            )
        for v in clique:
            p = corner_points[v].point
            canvas.circle(p.x, p.y, radius_px=3.5, fill=color)
    bbox = shape.polygon.bounding_box()
    canvas.text(
        bbox.xbl, bbox.ytr + 14.0,
        f"Fig.3: {graph.n} corner points, {graph.edge_count()} edges, "
        f"{len(cliques)} cliques = shots",
        size_px=13.0,
    )
    return canvas.to_string()


def figure4(spec: FractureSpec = FractureSpec()) -> str:
    """Min-size shot from two same-color top corners, extended downward."""
    polygon = Polygon([(0, 0), (120, 0), (120, 70), (0, 70)])
    shape = MaskShape.from_polygon(polygon, margin=30.0, name="fig4")
    from repro.fracture.corner_points import CornerType, ShotCornerPoint
    from repro.geometry.point import Point

    tl = ShotCornerPoint(Point(40.0, 70.0), CornerType.TOP_LEFT)
    tr = ShotCornerPoint(Point(80.0, 70.0), CornerType.TOP_RIGHT)
    minimal = Rect(40.0, 70.0 - spec.lmin, 80.0, 70.0)
    extended = shot_from_class([tl, tr], shape, spec.lmin)
    canvas = canvas_for_shape(shape, scale=3.0)
    draw_target(canvas, shape)
    canvas.rect(*minimal.as_tuple(), stroke="#cc3311", dash="4,3", stroke_width=1.5)
    if extended is not None:
        canvas.rect(
            *extended.as_tuple(), stroke="#4477aa", stroke_width=1.8,
            fill="#4477aa", opacity=0.15,
        )
    for scp in (tl, tr):
        canvas.circle(scp.point.x, scp.point.y, radius_px=4.0, fill="#228833")
    canvas.text(0.0, 82.0, "Fig.4: min-size shot (dashed) extended to the "
                           "opposite boundary (solid)", size_px=12.0)
    return canvas.to_string()


def figure5(spec: FractureSpec = FractureSpec()) -> str:
    """Aligned shot pairs: one mergeable, one not (too much P_off)."""
    # Tall target: vertical extension keeps the merged shot inside.
    tall = Polygon([(0, 0), (50, 0), (50, 120), (0, 120)])
    # Notched target: merging the two end shots exposes the waist.
    waist = Polygon(
        [(70, 0), (120, 0), (120, 120), (70, 120), (70, 80), (85, 80),
         (85, 40), (70, 40)]
    )
    canvas = SvgCanvas(-10.0, -10.0, 135.0, 150.0, scale=3.0)
    for polygon in (tall, waist):
        canvas.polygon(
            [(p.x, p.y) for p in polygon.vertices],
            fill="#dddddd", stroke="#555555", opacity=0.9,
        )
    mergeable = [Rect(2, 2, 48, 50), Rect(3, 70, 47, 118)]
    for shot in mergeable:
        canvas.rect(*shot.as_tuple(), stroke="#4477aa", stroke_width=1.5)
    merged = mergeable[0].union_bbox(mergeable[1])
    canvas.rect(*merged.as_tuple(), stroke="#228833", dash="5,3", stroke_width=2.0)
    blocked = [Rect(88, 2, 118, 50), Rect(89, 70, 118, 118)]
    for shot in blocked:
        canvas.rect(*shot.as_tuple(), stroke="#cc3311", stroke_width=1.5)
    canvas.text(-5.0, 135.0, "Fig.5: left pair merges (>90% inside); right pair "
                             "would expose the notch", size_px=12.0)
    return canvas.to_string()


FIGURES = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}


def render_figure(number: int, spec: FractureSpec = FractureSpec()) -> str:
    try:
        fn = FIGURES[number]
    except KeyError:
        raise ValueError(f"paper has figures 1-5, not {number}") from None
    return fn(spec)
