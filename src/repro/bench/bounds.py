"""Heuristic shot-count bounds (stand-in for the ILP bounds of [16]).

The benchmarking work computes lower/upper bounds with an ILP that ran
for 12 hours on eight cores; Table 2 normalizes every heuristic's shot
count by the upper bound.  We provide cheap heuristic bounds with the
same role:

* **Lower bound** — a greedy *witness-pixel* (antirectangle) argument: a
  set of P_on pixels such that no two can be covered by one valid shot.
  A shot covering a P_off pixel at depth ≥ δ from all four shot edges
  overdoses it (its intensity is at least ``edge_profile(δ)²`` ≥ ρ for
  δ ≈ 0.4 σ), so a pair of P_on pixels is *uncoverable* when every
  placement of a shot containing both traps some P_off pixel that deep.
  Every fracturing solution needs one distinct shot per witness.
* **Upper bound** — the best feasible shot count over the provided
  method results (the paper's UB plays the same aggregator role).
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfinv

from repro.fracture.base import FractureResult
from repro.geometry.rect import Rect
from repro.geometry.sat import SummedAreaTable
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

#: Slide positions probed per axis when testing pair coverability.
_SLIDES = 5


def overdose_depth(spec: FractureSpec) -> float:
    """Depth inside a shot at which any pixel is provably printed.

    A pixel at depth δ from all four edges of a shot receives at least
    ``(0.5 (1 + erf(δ/σ)))²``; solving for ρ gives the depth beyond which
    covering a P_off pixel is always a violation.
    """
    target = float(np.sqrt(spec.rho))
    return spec.sigma * float(erfinv(2.0 * target - 1.0))


def lower_bound_shots(
    shape: MaskShape,
    spec: FractureSpec,
    sample_step: int = 4,
) -> int:
    """Greedy antirectangle lower bound (see module docstring).

    The greedy witness set depends on the scan order, so several sweep
    directions are tried and the largest witness set wins — every
    pairwise-uncoverable set is a valid bound.
    """
    pixels = shape.pixels(spec.gamma)
    ys_all, xs_all = np.nonzero(pixels.on)
    if len(ys_all) == 0:
        return 0
    grid = shape.grid
    off_sat = SummedAreaTable(pixels.off.astype(np.float64), grid)
    depth = overdose_depth(spec) + grid.pitch
    orderings = (
        np.lexsort((xs_all, ys_all)),
        np.lexsort((xs_all, ys_all))[::-1],
        np.lexsort((ys_all, xs_all)),
        np.lexsort((ys_all, xs_all))[::-1],
    )
    best = 1
    for order in orderings:
        ys, xs = ys_all[order][::sample_step], xs_all[order][::sample_step]
        witnesses: list[tuple[float, float]] = []
        for iy, ix in zip(ys, xs):
            px = grid.x0 + (ix + 0.5) * grid.pitch
            py = grid.y0 + (iy + 0.5) * grid.pitch
            if all(
                not _pair_coverable(off_sat, spec, depth, (px, py), w)
                for w in witnesses
            ):
                witnesses.append((px, py))
        best = max(best, len(witnesses))
    return best


def _pair_coverable(
    off_sat: SummedAreaTable,
    spec: FractureSpec,
    depth: float,
    a: tuple[float, float],
    b: tuple[float, float],
) -> bool:
    """Can one valid shot cover both points?

    Any shot containing both points contains a translate of their
    minimal bounding box (grown to L_min); the pair is declared
    uncoverable only when every probed slide position of that box traps
    a P_off pixel deeper than the overdose depth — which is sound up to
    the finite slide sampling.
    """
    x_lo, x_hi = sorted((a[0], b[0]))
    y_lo, y_hi = sorted((a[1], b[1]))
    width = max(x_hi - x_lo, spec.lmin)
    height = max(y_hi - y_lo, spec.lmin)
    x_slack = width - (x_hi - x_lo)
    y_slack = height - (y_hi - y_lo)
    for fx in np.linspace(0.0, 1.0, _SLIDES):
        for fy in np.linspace(0.0, 1.0, _SLIDES):
            x_start = x_hi - width + fx * x_slack if x_slack > 0 else x_lo
            y_start = y_hi - height + fy * y_slack if y_slack > 0 else y_lo
            core = Rect(
                x_start + depth,
                y_start + depth,
                max(x_start + width - depth, x_start + depth),
                max(y_start + height - depth, y_start + depth),
            )
            if off_sat.rect_sum(core) == 0.0:
                return True
    return False


def upper_bound_shots(results: list[FractureResult]) -> int | None:
    """Best feasible shot count across method results (None if all fail)."""
    feasible = [r.shot_count for r in results if r.feasible]
    return min(feasible) if feasible else None
