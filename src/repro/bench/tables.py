"""Plain-text renderings of the paper's Table 2 and Table 3."""

from __future__ import annotations

from repro.bench.runner import SuiteResult


def format_table2(suite: SuiteResult, methods: list[str] | None = None) -> str:
    """Shot count and runtime per ILT clip, LB/UB, normalized-sum row.

    Mirrors paper Table 2: one row per clip, per-method shot count and
    runtime, and the closing "Sum of Normalized Shot Count wrt Upper
    Bound" row.
    """
    methods = methods or suite.methods()
    header = ["Clip-ID", "LB/UB"]
    for m in methods:
        header += [f"{m} shots", f"{m} time"]
    rows = [header]
    for clip in suite.clips:
        lb = "-" if clip.lower_bound is None else str(clip.lower_bound)
        ub = "-" if clip.upper_bound is None else str(clip.upper_bound)
        row = [clip.shape_name, f"{lb}/{ub}"]
        for m in methods:
            result = clip.results.get(m)
            if result is None:
                row += ["-", "-"]
            else:
                fail = "" if result.feasible else f"*{result.report.total_failing}"
                row += [f"{result.shot_count}{fail}", f"{result.runtime_s:.1f}"]
        rows.append(row)
    summary = ["Sum norm.", ""]
    for m in methods:
        total = suite.sum_normalized(m)
        summary += ["-" if total is None else f"{total:.2f}", ""]
    rows.append(summary)
    note = "(*N marks N failing pixels — solution not CD-clean)"
    return _render(rows) + "\n" + note


def format_table3(suite: SuiteResult, methods: list[str] | None = None) -> str:
    """Shot count and runtime per known-optimal clip (AGB/RGB).

    Mirrors paper Table 3: the reference column is the construction
    optimum and the summary row normalizes by it.
    """
    methods = methods or suite.methods()
    header = ["Clip-ID", "Optimal"]
    for m in methods:
        header += [f"{m} shots", f"{m} time"]
    rows = [header]
    for clip in suite.clips:
        row = [clip.shape_name, str(clip.optimal if clip.optimal else "-")]
        for m in methods:
            result = clip.results.get(m)
            if result is None:
                row += ["-", "-"]
            else:
                fail = "" if result.feasible else f"*{result.report.total_failing}"
                row += [f"{result.shot_count}{fail}", f"{result.runtime_s:.1f}"]
        rows.append(row)
    summary = ["Sum norm.", f"{len(suite.clips):.0f}" if suite.clips else "-"]
    for m in methods:
        total = suite.sum_normalized(m)
        summary += ["-" if total is None else f"{total:.2f}", ""]
    rows.append(summary)
    note = "(*N marks N failing pixels — solution not CD-clean)"
    return _render(rows) + "\n" + note


def _render(rows: list[list[str]]) -> str:
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
