"""Run fracturing methods over benchmark suites and collect results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.bounds import lower_bound_shots, upper_bound_shots
from repro.bench.shapes import KnownOptimalShape
from repro.fracture.base import FractureResult, Fracturer
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape
from repro.obs import get_logger, get_recorder

logger = get_logger(__name__)


@dataclass(slots=True)
class ClipResult:
    """All method results for one clip, plus its bounds/reference."""

    shape_name: str
    results: dict[str, FractureResult]
    lower_bound: int | None = None
    upper_bound: int | None = None
    optimal: int | None = None

    def normalized_shot_count(self, method: str) -> float | None:
        """Shot count divided by the normalization reference.

        Table 2 normalizes by the upper bound, Table 3 by the known
        optimum; whichever is available is used (optimal wins).
        """
        reference = self.optimal if self.optimal is not None else self.upper_bound
        if reference in (None, 0) or method not in self.results:
            return None
        return self.results[method].shot_count / reference


@dataclass(slots=True)
class SuiteResult:
    """Results of a full suite run."""

    clips: list[ClipResult] = field(default_factory=list)

    def methods(self) -> list[str]:
        seen: dict[str, None] = {}
        for clip in self.clips:
            for name in clip.results:
                seen.setdefault(name)
        return list(seen)

    def sum_normalized(self, method: str) -> float | None:
        """Sum of normalized shot counts (the paper's summary row)."""
        values = [clip.normalized_shot_count(method) for clip in self.clips]
        if any(v is None for v in values) or not values:
            return None
        return float(sum(values))

    def total_shots(self, method: str) -> int:
        return sum(
            clip.results[method].shot_count
            for clip in self.clips
            if method in clip.results
        )

    def total_runtime(self, method: str) -> float:
        return sum(
            clip.results[method].runtime_s
            for clip in self.clips
            if method in clip.results
        )


def run_suite(
    shapes: Sequence[MaskShape | KnownOptimalShape],
    fracturers: Sequence[Fracturer],
    spec: FractureSpec = FractureSpec(),
    compute_bounds: bool = False,
    verbose: bool = False,
) -> SuiteResult:
    """Fracture every clip with every method.

    ``shapes`` may mix plain :class:`MaskShape` (ILT clips — bounds come
    from :mod:`repro.bench.bounds` when ``compute_bounds`` is set) and
    :class:`KnownOptimalShape` (AGB/RGB clips — the construction K is the
    normalization reference).
    """
    obs = get_recorder()
    suite = SuiteResult()
    for item in shapes:
        if isinstance(item, KnownOptimalShape):
            shape = item.shape
            optimal = item.optimal_shots
        else:
            shape = item
            optimal = None
        clip = ClipResult(shape_name=shape.name, results={}, optimal=optimal)
        with obs.span("bench.clip", clip=shape.name):
            for fracturer in fracturers:
                result = fracturer.fracture(shape, spec)
                clip.results[fracturer.name] = result
                if verbose:
                    logger.info("%s", result.summary())
            if optimal is None:
                if compute_bounds:
                    with obs.span("bench.bounds"):
                        clip.lower_bound = lower_bound_shots(shape, spec)
                clip.upper_bound = upper_bound_shots(
                    list(clip.results.values())
                )
        obs.incr("bench.clips")
        suite.clips.append(clip)
    return suite
