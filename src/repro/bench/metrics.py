"""Solution quality metrics beyond shot count.

Shot count is the paper's headline metric, but mask shops also track how
a fracturing solution uses the writer: overlap (overlapping shots expose
resist twice — fine for dose, relevant for charging), sliver counts, the
spread of shot sizes, and the projected write time.  These metrics feed
the `compare_methods` example and the ops benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ebeam.writer import VsbWriterModel
from repro.geometry.rect import Rect, total_union_area
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@dataclass(frozen=True, slots=True)
class SolutionMetrics:
    """Aggregate statistics of one fracturing solution."""

    shot_count: int
    total_shot_area: float
    union_area: float
    target_area: float
    min_shot_side: float
    max_shot_side: float
    sliver_count: int
    write_time_s: float

    @property
    def overlap_ratio(self) -> float:
        """Σ shot areas / union area — 1.0 means no overlap at all."""
        if self.union_area == 0.0:
            return 0.0
        return self.total_shot_area / self.union_area

    @property
    def coverage_ratio(self) -> float:
        """Union of shots / target area (>1: shots overhang the target)."""
        if self.target_area == 0.0:
            return 0.0
        return self.union_area / self.target_area


def solution_metrics(
    shots: list[Rect],
    shape: MaskShape,
    spec: FractureSpec,
    writer: VsbWriterModel = VsbWriterModel(),
) -> SolutionMetrics:
    """Compute :class:`SolutionMetrics` for a shot list."""
    if shots:
        sides = [side for s in shots for side in (s.width, s.height)]
        min_side = min(sides)
        max_side = max(sides)
    else:
        min_side = max_side = 0.0
    slivers = sum(1 for s in shots if not s.meets_min_size(spec.lmin - 1e-9))
    return SolutionMetrics(
        shot_count=len(shots),
        total_shot_area=sum(s.area for s in shots),
        union_area=total_union_area(shots),
        target_area=shape.area,
        min_shot_side=min_side,
        max_shot_side=max_side,
        sliver_count=slivers,
        write_time_s=writer.write_time_seconds(len(shots)),
    )
