"""Bounded priority job queue: higher priority first, FIFO within.

A tiny heap wrapper rather than ``asyncio.PriorityQueue`` because the
service needs three things the stdlib queue does not give cleanly:

* **strict FIFO within a priority level** — entries carry a monotonic
  submission sequence so two equal-priority jobs never reorder (heapq
  alone is not stable);
* **backpressure as an error, not a block** — ``push`` raises
  :class:`QueueFull` when the bounded depth is reached, which the
  server turns into a ``queue_full`` protocol error the client can see
  and retry, instead of silently parking the connection;
* **lazy cancellation** — ``remove`` marks an entry dead in O(1) and
  ``pop`` skips dead entries, so cancelling a queued job never needs a
  heap rebuild.

The queue stores job ids only; the server owns the id → record map.
All methods run on the daemon's event-loop thread, so no lock.
"""

from __future__ import annotations

import heapq
import itertools

__all__ = ["PriorityJobQueue", "QueueFull"]


class QueueFull(Exception):
    """The bounded queue rejected a submission (backpressure)."""

    def __init__(self, depth: int):
        super().__init__(f"job queue is full ({depth} queued)")
        self.depth = depth


class PriorityJobQueue:
    """Heap of ``(-priority, seq, job_id)`` with lazy removal."""

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, str]] = []
        self._live: set[str] = set()
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._live

    def next_seq(self) -> int:
        """Allocate a submission sequence number (monotonic)."""
        return next(self._seq)

    def advance_seq(self, floor: int) -> None:
        """Never hand out sequence numbers at or below ``floor``.

        Restart recovery re-pushes recovered jobs with their *original*
        sequence numbers so the pre-crash FIFO order survives; advancing
        the counter past the highest recovered seq keeps post-restart
        submissions ordered after them.
        """
        current = next(self._seq)
        if floor >= current:
            self._seq = itertools.count(floor + 1)
        else:
            self._seq = itertools.count(current)

    def push(self, job_id: str, priority: int, seq: int) -> None:
        """Enqueue; :class:`QueueFull` at the depth bound.

        Higher ``priority`` values pop first; ties pop in ``seq`` order.
        """
        if job_id in self._live:
            raise ValueError(f"{job_id} is already queued")
        if len(self._live) >= self.max_depth:
            raise QueueFull(len(self._live))
        heapq.heappush(self._heap, (-priority, seq, job_id))
        self._live.add(job_id)

    def pop(self) -> str | None:
        """Highest-priority live job id, or ``None`` when empty."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._live:
                self._live.discard(job_id)
                return job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Lazily remove a queued job (cancellation); False if absent."""
        if job_id not in self._live:
            return False
        self._live.discard(job_id)
        return True

    def snapshot(self) -> list[str]:
        """Live job ids in pop order (non-destructive; for ``stats``)."""
        return [
            job_id
            for _, _, job_id in sorted(self._heap)
            if job_id in self._live
        ]
