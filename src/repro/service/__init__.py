"""``repro.service`` — fracture-as-a-service: a long-lived job daemon.

PRs 1–5 built every hard piece of a service as library code: a
streaming JSONL event bus, worker heartbeats with stall detection,
checkpoint/resume journals, retry/degradation ladders.  This package
composes them behind a persistent asyncio daemon so a batch MDP
workload stops paying process startup and cold caches per clip:

* :class:`FractureService` (:mod:`repro.service.server`) — accepts
  concurrent job submissions over a Unix-domain socket, runs them on a
  managed worker pool behind a bounded priority queue (FIFO within
  priority, backpressure when full), and survives restarts: queued and
  in-flight jobs are recovered from the state directory and resumed
  from their checkpoint journals bit-identically.
* :class:`ServiceClient` (:mod:`repro.service.client`) — the thin
  synchronous client behind ``repro job submit/status/result/cancel``.
* :class:`WarmCaches` (:mod:`repro.service.caches`) — daemon-lifetime
  shared state: the default erf LUT, the keyed 1-D profile bank and a
  content-addressed result cache, so the second submission of a layout
  costs a hash lookup instead of a refinement loop.

Every job owns a directory under ``<state>/jobs/<id>/`` holding its
manifest (``job.json``), live telemetry stream (``stream.jsonl``,
viewable with ``trace tail <job-id> --follow``), checkpoint journals
and the final ``result.json``.
"""

from repro.service.caches import ResultCache, WarmCaches
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JobPaths,
    JobRecord,
    JobState,
    job_id_like,
    resolve_stream_path,
)
from repro.service.queue import PriorityJobQueue, QueueFull
from repro.service.server import FractureService

__all__ = [
    "FractureService",
    "JobPaths",
    "JobRecord",
    "JobState",
    "PriorityJobQueue",
    "QueueFull",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "WarmCaches",
    "job_id_like",
    "resolve_stream_path",
]
