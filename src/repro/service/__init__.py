"""``repro.service`` — fracture-as-a-service: a long-lived job daemon.

PRs 1–5 built every hard piece of a service as library code: a
streaming JSONL event bus, worker heartbeats with stall detection,
checkpoint/resume journals, retry/degradation ladders.  This package
composes them behind a persistent asyncio daemon so a batch MDP
workload stops paying process startup and cold caches per clip:

* :class:`FractureService` (:mod:`repro.service.server`) — accepts
  concurrent job submissions over a Unix-domain socket, runs them on a
  managed worker pool behind a bounded priority queue (FIFO within
  priority, backpressure when full), and survives restarts: queued and
  in-flight jobs are recovered from the state directory and resumed
  from their checkpoint journals bit-identically.
* :class:`ServiceClient` (:mod:`repro.service.client`) — the thin
  synchronous client behind ``repro job submit/status/result/cancel``.
* :class:`WarmCaches` (:mod:`repro.service.caches`) — daemon-lifetime
  shared state: the default erf LUT, the keyed 1-D profile bank and a
  content-addressed result cache, so the second submission of a layout
  costs a hash lookup instead of a refinement loop.

Every job owns a directory under ``<state>/jobs/<id>/`` holding its
manifest (``job.json``), live telemetry stream (``stream.jsonl``,
viewable with ``trace tail <job-id> --follow``), checkpoint journals
and the final ``result.json``.

The daemon does not trust its clients: :mod:`repro.service.guard`
bounds what a submission may ask for (:class:`ServiceLimits`,
``job_rejected`` responses), rate-limits per client, enforces per-job
wall/RSS budgets via a watchdog and guards every durable write behind
a disk-space floor; :mod:`repro.service.chaos` is the seeded fault
harness (daemon SIGKILL, disk-full shim, byte corruption, stalled
clients, submit floods) that proves it.
"""

from repro.service.caches import ResultCache, WarmCaches
from repro.service.chaos import ChaosPlan
from repro.service.client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.guard import (
    AdmissionError,
    JobOverBudget,
    JobWatchdog,
    ServiceLimits,
    validate_admission,
)
from repro.service.jobs import (
    JobPaths,
    JobRecord,
    JobState,
    job_fingerprint,
    job_id_like,
    resolve_stream_path,
)
from repro.service.queue import PriorityJobQueue, QueueFull
from repro.service.server import FractureService

__all__ = [
    "AdmissionError",
    "ChaosPlan",
    "CircuitBreaker",
    "FractureService",
    "JobOverBudget",
    "JobPaths",
    "JobRecord",
    "JobState",
    "JobWatchdog",
    "PriorityJobQueue",
    "QueueFull",
    "ResultCache",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceLimits",
    "WarmCaches",
    "job_fingerprint",
    "job_id_like",
    "resolve_stream_path",
    "validate_admission",
]
