"""Deterministic chaos harness for the fracture daemon.

Fault injection for the *service* layer, the way
:mod:`repro.fracture.runtime` already does it for the tiled runtime:
every fault is seeded, so a failing chaos run replays bit-identically
from its seed.  The harness knows five faults — the ones the hardening
work defends against:

``kill_daemon``      SIGKILL mid-operation (no atexit, no cleanup);
                     recovery must resume bit-identically from
                     journals.
``disk_full``        free-space shim via
                     :func:`repro.obs.set_disk_free_override` (or the
                     ``REPRO_CHAOS_DISK_FREE`` env var for subprocess
                     daemons); guarded writers must fail typed, never
                     torn.
``corrupt_cache``    flip bytes in an on-disk cache entry / journal
``corrupt_journal``  line; readers must quarantine or skip, never
                     crash or serve garbage.
``stall_client``     hold a half-written request line open; the read
                     deadline must reclaim the handler.
``flood``            submit far past the rate limit; healthy clients
                     must keep landing jobs.

:class:`ChaosPlan` turns a seed into a deterministic schedule of those
faults; the pytest fixture in ``tests/service/test_chaos.py`` and the
gating ``service-chaos`` CI job drive it.  Helpers are synchronous and
dependency-free so they also work against subprocess daemons.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.resources import DISK_FREE_ENV, set_disk_free_override

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosPlan",
    "DISK_FREE_ENV",
    "FaultEvent",
    "corrupt_bytes",
    "disk_full",
    "flood_submits",
    "stalled_request",
    "truncate_tail",
    "wait_until",
]

CHAOS_ACTIONS = (
    "kill_daemon",
    "disk_full",
    "corrupt_cache",
    "corrupt_journal",
    "stall_client",
    "flood",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what to inject and at which workload step."""

    action: str
    at_step: int
    detail: dict[str, Any] = field(default_factory=dict)


class ChaosPlan:
    """A seeded, reproducible schedule of daemon-level faults.

    The same ``(seed, steps, actions)`` always yields the same event
    list — print the seed in the failure message and any run can be
    replayed exactly.  ``rng`` is exposed for fault *parameters* (byte
    offsets, hold durations) so those derive from the same seed.
    """

    def __init__(
        self,
        seed: int,
        steps: int = 8,
        actions: tuple[str, ...] = CHAOS_ACTIONS,
    ):
        for action in actions:
            if action not in CHAOS_ACTIONS:
                raise ValueError(f"unknown chaos action {action!r}")
        self.seed = seed
        self.steps = steps
        self.rng = random.Random(seed)
        self._events = tuple(
            FaultEvent(action=self.rng.choice(actions), at_step=step)
            for step in range(steps)
        )

    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __repr__(self) -> str:  # shows up in pytest failure output
        return f"ChaosPlan(seed={self.seed}, steps={self.steps})"


# -- fault primitives --------------------------------------------------------


def corrupt_bytes(
    path: str | Path, seed: int, count: int = 8
) -> list[int]:
    """Flip ``count`` bytes of ``path`` at seed-determined offsets.

    Returns the offsets touched (for the failure message).  XOR with
    0xFF guarantees every touched byte actually changes, so "corruption
    survived undetected" can never be a flaky no-op.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return []
    rng = random.Random(seed)
    offsets = sorted(
        rng.sample(range(len(data)), min(count, len(data)))
    )
    for offset in offsets:
        data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return offsets


def truncate_tail(path: str | Path, seed: int) -> int:
    """Cut a seed-determined tail off ``path`` (a torn-write stand-in).

    Keeps at least one byte and cuts at least one; returns the new
    size.  Models a crash mid-append: the head of the file is intact,
    the last record is torn.
    """
    path = Path(path)
    size = path.stat().st_size
    if size < 2:
        return size
    keep = random.Random(seed).randrange(1, size)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


class disk_full:
    """Context manager: pretend the filesystem has ``free_bytes`` left.

    In-process shim over :func:`repro.obs.set_disk_free_override`; for
    subprocess daemons export ``{DISK_FREE_ENV}=<bytes>`` in the child
    environment instead.  Restores the real ``statvfs`` view on exit.
    """

    def __init__(self, free_bytes: int):
        self.free_bytes = int(free_bytes)

    def __enter__(self) -> "disk_full":
        set_disk_free_override(self.free_bytes)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        set_disk_free_override(None)


class stalled_request:
    """Hold a half-written request line open against the daemon.

    Connects, sends the first ``cut`` bytes of an encoded request
    *without* the terminating newline, then sits on the open socket —
    the adversarial mid-frame stall the read deadline exists for.
    ``response()`` then waits for whatever the daemon does: a typed
    ``read_timeout`` error (deadline fired) or EOF (handler reclaimed).
    """

    def __init__(
        self,
        socket_path: str | Path,
        payload: dict[str, Any] | None = None,
        cut: int | None = None,
        timeout_s: float = 30.0,
    ):
        blob = json.dumps(payload if payload is not None else {"op": "ping"})
        encoded = blob.encode("utf-8")  # no newline: the frame stays torn
        self.partial = encoded[: cut if cut is not None else len(encoded) // 2]
        self.socket_path = str(socket_path)
        self.timeout_s = timeout_s
        self.sock: socket.socket | None = None

    def __enter__(self) -> "stalled_request":
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout_s)
        self.sock.connect(self.socket_path)
        self.sock.sendall(self.partial)
        return self

    def response(self) -> bytes:
        """Block until the daemon answers or hangs up; returns raw bytes."""
        assert self.sock is not None
        chunks: list[bytes] = []
        while True:
            chunk = self.sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                return b"".join(chunks)

    def __exit__(self, *exc_info: Any) -> None:
        if self.sock is not None:
            self.sock.close()
            self.sock = None


def flood_submits(
    submit: Callable[[int], Any], count: int
) -> dict[str, int]:
    """Fire ``count`` submissions back-to-back; tally outcomes by code.

    ``submit(i)`` performs one submission (raising ``ServiceError`` on
    rejection); the return value maps ``"ok"`` and each error code to
    its occurrence count, e.g. ``{"ok": 20, "rate_limited": 80}``.
    """
    from repro.service.client import ServiceError

    tally: dict[str, int] = {}
    for i in range(count):
        try:
            submit(i)
        except ServiceError as error:
            tally[error.code] = tally.get(error.code, 0) + 1
        else:
            tally["ok"] = tally.get("ok", 0) + 1
    return tally


def wait_until(
    predicate: Callable[[], bool],
    timeout_s: float = 20.0,
    poll_s: float = 0.05,
) -> bool:
    """Poll ``predicate`` until true or ``timeout_s``; returns success."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()
