"""Defense-in-depth for the fracture daemon: admission, budgets, disk.

The daemon of PR 6 trusts its clients: any parseable submission is
enqueued, any admitted job runs until it finishes, and every write
assumes the disk has room.  That is fine on a workstation socket and
fatal under untrusted traffic.  This module is the guard layer the
server threads through every request:

* **Admission control** — :class:`ServiceLimits` bounds everything a
  client can make the daemon do (line size, clip count, vertex count,
  coordinate magnitude, spec ranges, window/worker/priority ranges),
  and :func:`validate_admission` turns a violation into a typed
  :class:`AdmissionError` the server answers as a ``job_rejected``
  response — *before* a queue slot, a job directory, or a worker
  thread is spent on it.
* **Rate limiting** — :class:`ClientRateLimiter` is a per-client token
  bucket (keyed on the client-declared id, anonymous traffic shares
  one bucket) with a fair-share cap on queued jobs per client, layered
  on top of the queue's bounded-depth backpressure.
* **Resource governance** — :class:`JobWatchdog` enforces per-job
  wall-clock and RSS budgets from the existing per-job heartbeat files
  (:mod:`repro.obs.resources`); an over-budget job is cancelled within
  one watchdog interval and surfaces as a typed ``over_budget``
  failure — or, when ``degrade_over_budget`` is set and the job asked
  for an expensive method, is requeued once on the deterministic
  ``partition`` baseline (PR 4's degradation ladder, service-level).
* **Disk guard** — :func:`evict_cache_lru` frees an on-disk
  :class:`~repro.fracture.cache.FractureCache` store LRU-by-mtime when
  free space falls under the floor; the checkpoint journal and result
  writers call :func:`repro.obs.ensure_disk_space` so a full disk
  fails the affected job loudly instead of leaving torn files.

Everything here is synchronous and event-loop-agnostic; the server owns
the scheduling (the watchdog runs as an asyncio task calling
:meth:`JobWatchdog.tick`), and tests drive every piece directly.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable

from repro.fracture.cache import evict_lru

__all__ = [
    "AdmissionError",
    "ClientRateLimiter",
    "JobOverBudget",
    "JobWatchdog",
    "ServiceLimits",
    "TokenBucket",
    "evict_cache_lru",
    "validate_admission",
]


class AdmissionError(ValueError):
    """A submission refused by the admission validator (typed).

    ``reason`` is a stable machine slug (``too_many_clips``,
    ``clip_too_complex``, ``coords_out_of_range``, ...); the message is
    the human half.  The server answers these with a ``job_rejected``
    response carrying both.
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


class JobOverBudget(Exception):
    """A running job exceeded its wall-clock or RSS budget."""

    def __init__(self, job_id: str, reason: str, detail: str):
        super().__init__(f"{job_id} over budget ({reason}): {detail}")
        self.job_id = job_id
        self.reason = reason  # "wall" | "rss"
        self.detail = detail


#: Per-field sane ranges for client-supplied spec overrides.  All spec
#: fields are physical lengths/ratios: zero or negative values would
#: divide-by-zero or spin the refinement loop, and absurdly large ones
#: allocate absurd grids.
SPEC_RANGES: dict[str, tuple[float, float]] = {
    "sigma": (1e-3, 1e4),
    "gamma": (0.0, 1e4),
    "pitch": (1e-3, 1e5),
    "rho": (1e-6, 1.0),
    "lmin": (0.0, 1e6),
}


@dataclass
class ServiceLimits:
    """Everything the daemon will let one client / one job consume.

    ``None`` disables an individual guard; the defaults bound a hostile
    client without getting in the way of the benchmark suite.  Use
    :meth:`validated` after hand-construction — the CLI funnels every
    ``repro serve --...`` flag through it so nonsense (negative
    budgets, zero timeouts) is rejected at argparse level with a clear
    message instead of surfacing as weird daemon behaviour.
    """

    # -- admission: request shape bounds ------------------------------------
    max_line_bytes: int = 32 * 1024 * 1024
    max_clips: int = 1024
    max_clip_vertices: int = 100_000
    max_total_vertices: int = 1_000_000
    max_abs_coord: float = 1e9
    max_tile_workers: int = 64
    max_window_nm: float = 1e7
    priority_min: int = -100
    priority_max: int = 100
    # -- connection hygiene --------------------------------------------------
    read_deadline_s: float | None = 30.0
    idle_timeout_s: float | None = 300.0
    # -- rate limiting / fair share ------------------------------------------
    rate_per_s: float | None = None  # tokens per second per client
    rate_burst: int = 20
    queue_share: float | None = None  # max fraction of queue per client
    # -- per-job budgets -----------------------------------------------------
    job_wall_budget_s: float | None = None
    job_rss_budget_bytes: int | None = None
    watchdog_interval_s: float = 1.0
    degrade_over_budget: bool = False
    # -- disk ----------------------------------------------------------------
    disk_floor_bytes: int | None = None

    def validated(self) -> "ServiceLimits":
        """Self, after rejecting impossible values with clear messages."""
        positive = [
            "max_line_bytes", "max_clips", "max_clip_vertices",
            "max_total_vertices", "max_abs_coord", "max_tile_workers",
            "max_window_nm", "watchdog_interval_s",
        ]
        for name in positive:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        optional_positive = [
            "read_deadline_s", "idle_timeout_s", "rate_per_s",
            "job_wall_budget_s", "job_rss_budget_bytes",
        ]
        for name in optional_positive:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{name} must be positive (or unset), got {value}"
                )
        if self.rate_burst < 1:
            raise ValueError(
                f"rate_burst must be at least 1, got {self.rate_burst}"
            )
        if self.queue_share is not None and not 0.0 < self.queue_share <= 1.0:
            raise ValueError(
                f"queue_share must be in (0, 1], got {self.queue_share}"
            )
        if self.priority_min > self.priority_max:
            raise ValueError(
                f"priority_min {self.priority_min} exceeds "
                f"priority_max {self.priority_max}"
            )
        if self.disk_floor_bytes is not None and self.disk_floor_bytes < 0:
            raise ValueError(
                f"disk_floor_bytes must be non-negative, "
                f"got {self.disk_floor_bytes}"
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _reject(message: str, reason: str) -> AdmissionError:
    return AdmissionError(message, reason)


def validate_admission(
    spec: dict[str, Any], limits: ServiceLimits
) -> dict[str, Any]:
    """Bounds-check an already-*shape*-validated submission spec.

    Runs after :func:`repro.service.jobs.validate_submission` (which
    owns structural validation and defaulting) and raises a typed
    :class:`AdmissionError` when the well-formed request asks for more
    than the daemon's limits allow.  Returns the spec unchanged on
    success so the server can chain the two validators.
    """
    clips = spec["clips"]
    if len(clips) > limits.max_clips:
        raise _reject(
            f"too many clips: {len(clips)} > limit {limits.max_clips}",
            "too_many_clips",
        )
    total_vertices = 0
    for name, verts in clips.items():
        if len(verts) > limits.max_clip_vertices:
            raise _reject(
                f"clip {name!r}: {len(verts)} vertices > limit "
                f"{limits.max_clip_vertices}",
                "clip_too_complex",
            )
        total_vertices += len(verts)
        for x, y in verts:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise _reject(
                    f"clip {name!r}: non-finite coordinate",
                    "coords_out_of_range",
                )
            if abs(x) > limits.max_abs_coord or abs(y) > limits.max_abs_coord:
                raise _reject(
                    f"clip {name!r}: |coordinate| > {limits.max_abs_coord}",
                    "coords_out_of_range",
                )
    if total_vertices > limits.max_total_vertices:
        raise _reject(
            f"job totals {total_vertices} vertices > limit "
            f"{limits.max_total_vertices}",
            "too_many_vertices",
        )
    for key, value in spec.get("spec", {}).items():
        lo, hi = SPEC_RANGES.get(key, (-math.inf, math.inf))
        if not math.isfinite(value) or not lo <= value <= hi:
            raise _reject(
                f"spec field {key}={value} outside sane range "
                f"[{lo}, {hi}]",
                "spec_out_of_range",
            )
    window = spec.get("window_nm")
    if window is not None and not (
        math.isfinite(window) and 0 < window <= limits.max_window_nm
    ):
        raise _reject(
            f"window_nm={window} outside (0, {limits.max_window_nm}]",
            "window_out_of_range",
        )
    if spec["tile_workers"] > limits.max_tile_workers:
        raise _reject(
            f"tile_workers={spec['tile_workers']} > limit "
            f"{limits.max_tile_workers}",
            "too_many_tile_workers",
        )
    if not limits.priority_min <= spec["priority"] <= limits.priority_max:
        raise _reject(
            f"priority={spec['priority']} outside "
            f"[{limits.priority_min}, {limits.priority_max}]",
            "priority_out_of_range",
        )
    return spec


# -- rate limiting -----------------------------------------------------------


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: int):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = time.monotonic()

    def allow(self, now: float | None = None) -> bool:
        now = time.monotonic() if now is None else now
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ClientRateLimiter:
    """Per-client token buckets with a bounded client table.

    Clients identify themselves with a free-form ``client_id`` on the
    submit request; anonymous submissions share the ``""`` bucket, so a
    flood that does not even bother to claim an identity is throttled
    collectively.  The table is bounded (LRU eviction of the
    longest-untouched bucket) so an attacker cycling ids cannot grow
    daemon memory.
    """

    def __init__(self, rate: float, burst: int, max_clients: int = 1024):
        self.rate = float(rate)
        self.burst = int(burst)
        self.max_clients = max_clients
        self._buckets: dict[str, TokenBucket] = {}

    def __len__(self) -> int:
        return len(self._buckets)

    def allow(self, client_id: str, now: float | None = None) -> bool:
        bucket = self._buckets.pop(client_id, None)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            while len(self._buckets) >= self.max_clients:
                oldest = next(iter(self._buckets))
                del self._buckets[oldest]
        self._buckets[client_id] = bucket  # re-insert = touch (LRU order)
        return bucket.allow(now)


# -- per-job budgets ---------------------------------------------------------


class JobWatchdog:
    """Wall-clock / RSS budget enforcement over running jobs.

    The server gives the watchdog a view of the running set (callables,
    so no shared mutable state is captured) and an ``over_budget``
    callback; :meth:`tick` is invoked by an asyncio loop every
    ``limits.watchdog_interval_s`` — and directly by tests with a fake
    ``now``.  RSS comes from the per-job heartbeat file the executor
    already publishes (``hb-<job-id>.json``), so a wedged job that
    stops cooperating is still measured.
    """

    def __init__(
        self,
        limits: ServiceLimits,
        heartbeats_dir: str | Path,
        running: Callable[[], dict[str, float]],
        over_budget: Callable[[JobOverBudget], None],
    ):
        self.limits = limits
        self.heartbeats_dir = Path(heartbeats_dir)
        self._running = running  # job_id -> started_unix
        self._over_budget = over_budget
        self._flagged: set[str] = set()

    @property
    def enabled(self) -> bool:
        return (
            self.limits.job_wall_budget_s is not None
            or self.limits.job_rss_budget_bytes is not None
        )

    def forget(self, job_id: str) -> None:
        """Drop the flagged marker once a job leaves the running set."""
        self._flagged.discard(job_id)

    def _job_rss(self, job_id: str) -> int | None:
        path = self.heartbeats_dir / f"hb-{job_id}.json"
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        rss = record.get("rss_bytes")
        return int(rss) if isinstance(rss, (int, float)) else None

    def tick(self, now: float | None = None) -> list[JobOverBudget]:
        """One enforcement pass; returns the violations it reported."""
        now = time.time() if now is None else now
        wall_budget = self.limits.job_wall_budget_s
        rss_budget = self.limits.job_rss_budget_bytes
        violations: list[JobOverBudget] = []
        for job_id, started_unix in self._running().items():
            if job_id in self._flagged:
                continue
            verdict: JobOverBudget | None = None
            if wall_budget is not None and started_unix is not None:
                wall = now - started_unix
                if wall > wall_budget:
                    verdict = JobOverBudget(
                        job_id, "wall",
                        f"ran {wall:.1f}s > budget {wall_budget:.1f}s",
                    )
            if verdict is None and rss_budget is not None:
                rss = self._job_rss(job_id)
                if rss is not None and rss > rss_budget:
                    verdict = JobOverBudget(
                        job_id, "rss",
                        f"rss {rss} bytes > budget {rss_budget}",
                    )
            if verdict is not None:
                self._flagged.add(job_id)
                violations.append(verdict)
                self._over_budget(verdict)
        return violations


# -- disk guard --------------------------------------------------------------

#: LRU-by-mtime eviction for on-disk cache stores — the implementation
#: lives with :class:`~repro.fracture.cache.FractureCache` (library
#: level, shared with ``--fracture-cache`` CLI runs); re-exported here
#: because the daemon's disk housekeeping is a guard concern.
evict_cache_lru = evict_lru
