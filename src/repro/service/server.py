"""The fracture daemon: asyncio front end, threaded fracturing back end.

:class:`FractureService` is a single-process, single-event-loop daemon:

* **Front end** — a Unix-domain socket server speaking the JSON-lines
  protocol of :mod:`repro.service.protocol`.  Every connection is one
  coroutine; all daemon state (job map, queue, running set) is touched
  only on the event-loop thread, so there are no locks on the control
  plane.
* **Back end** — a small ``ThreadPoolExecutor``.  Each admitted job
  runs :func:`repro.service.executor.execute_job` on a worker thread
  with a thread-scoped recorder, the shared warm caches, and a
  :class:`~repro.service.executor.JobControl` whose events the control
  plane flips for cancel / shutdown.
* **Durability** — every job state transition is persisted to the
  job's ``job.json`` *before* it takes effect in memory.  On startup
  the daemon scans ``<state>/jobs/*/job.json``: settled jobs are
  indexed for ``status``/``result``, queued jobs re-enter the queue
  with their original (priority, seq) so pre-crash FIFO order
  survives, and jobs found ``running`` (the daemon died under them)
  are requeued with ``resume`` — their checkpoint journals replay the
  settled tiles bit-identically.

Shutdown modes: ``drain`` stops admissions and finishes running jobs;
``interrupt`` (the SIGTERM/SIGINT default) additionally flips the
stop event so running jobs checkpoint at the next tile boundary and
go back to ``queued`` with ``resume`` set.  Either way queued jobs
stay queued on disk for the next daemon.

A stale ``daemon.json`` (pid no longer alive — SIGKILL, OOM) is
reclaimed automatically; a live one refuses the second daemon.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable

from repro.obs import (
    DiskFullError,
    pid_alive,
    sample_resources,
    summarize_heartbeats,
)
from repro.obs.metrics import MetricSample, render_prometheus
from repro.obs.trace import TraceContext, mint_trace
from repro.service.caches import WarmCaches
from repro.service.executor import (
    JOB_HEARTBEAT_INTERVAL_S,
    JobCancelled,
    JobControl,
    JobInterrupted,
    execute_job,
)
from repro.service.guard import (
    AdmissionError,
    ClientRateLimiter,
    JobOverBudget,
    JobWatchdog,
    ServiceLimits,
    validate_admission,
)
from repro.service.jobs import (
    JobPaths,
    JobRecord,
    JobState,
    job_fingerprint,
    new_job_id,
    validate_submission,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
)
from repro.service.queue import PriorityJobQueue, QueueFull

__all__ = ["DEFAULT_STATE_DIR", "FractureService", "daemon_info"]

DEFAULT_STATE_DIR = ".repro-service"


class _IdleTimeout(Exception):
    """No request started within ``idle_timeout_s`` (quiet close)."""


class _ReadTimeout(Exception):
    """A started request stalled past ``read_deadline_s`` (torn frame)."""


def daemon_info(state_dir: str | Path) -> dict[str, Any] | None:
    """The ``daemon.json`` of a *live* daemon under ``state_dir``.

    Returns ``None`` when there is no daemon file, it is unreadable, or
    the recorded pid is dead (a stale file from a killed daemon).
    """
    path = Path(state_dir) / "daemon.json"
    try:
        info = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(info, dict) or not pid_alive(int(info.get("pid", 0))):
        return None
    return info


class FractureService:
    """See module docstring.  All public state lives on the loop thread.

    ``job_runner`` is injectable for tests: anything with the signature
    of :func:`~repro.service.executor.execute_job` — stub runners let
    the queue/lifecycle tests exercise the control plane in
    milliseconds without fracturing anything.
    """

    def __init__(
        self,
        state_dir: str | Path = DEFAULT_STATE_DIR,
        *,
        workers: int = 2,
        max_queue_depth: int = 64,
        caches: WarmCaches | None = None,
        job_runner: Callable[..., dict[str, Any]] | None = None,
        stall_clip_s: float = 120.0,
        limits: ServiceLimits | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.state_dir = Path(state_dir)
        self.limits = (limits if limits is not None else ServiceLimits())
        self.limits.validated()
        # A running job whose current clip exceeds this age is reported
        # as ``slow_task`` by the stats op: wedged, not merely slow.
        self.stall_clip_s = float(stall_clip_s)
        self.workers = workers
        self.socket_path = self.state_dir / "daemon.sock"
        self.daemon_json = self.state_dir / "daemon.json"
        self.caches = caches if caches is not None else WarmCaches()
        self.job_runner = job_runner if job_runner is not None else execute_job
        self.queue = PriorityJobQueue(max_depth=max_queue_depth)
        self.jobs: dict[str, JobRecord] = {}
        self.running: set[str] = set()
        self.controls: dict[str, JobControl] = {}
        self.started_unix = time.time()
        self._settled: dict[str, asyncio.Event] = {}
        self._tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopping = False
        self._stop_threads = None  # threading.Event, shared by JobControls
        self._shutdown_mode: str | None = None
        self._shutdown_requested: asyncio.Event | None = None
        self.recovered: dict[str, int] = {"queued": 0, "resumed": 0}
        # -- guard state ------------------------------------------------------
        self.guard_counters: dict[str, int] = {
            "rejected": 0, "rate_limited": 0, "fair_share_deferred": 0,
            "deduplicated": 0, "read_timeouts": 0, "idle_closed": 0,
            "over_budget": 0, "disk_full": 0, "degraded": 0,
        }
        self.rate_limiter = (
            ClientRateLimiter(self.limits.rate_per_s, self.limits.rate_burst)
            if self.limits.rate_per_s is not None else None
        )
        self.watchdog = JobWatchdog(
            self.limits,
            self.state_dir / "heartbeats",
            running=self._running_started,
            over_budget=self._on_over_budget,
        )
        #: request fingerprint -> job_id for idempotent resubmission;
        #: rebuilt from job records on recovery.
        self._by_fingerprint: dict[str, str] = {}
        #: client_id -> live queued-job count (fair-share accounting).
        self._queued_by_client: dict[str, int] = {}
        #: priority -> submit-to-settled latency summary
        #: (count/sum/min/max), fed by ``_run_one`` and exposed by the
        #: ``metrics`` op as ``repro_service_latency_seconds``.
        self._latency_by_priority: dict[int, dict[str, float]] = {}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Claim the state directory, recover jobs, open the socket."""
        import threading

        info = daemon_info(self.state_dir)
        if info is not None:
            raise RuntimeError(
                f"a daemon is already running (pid {info['pid']}) "
                f"on {self.state_dir}"
            )
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "jobs").mkdir(exist_ok=True)
        self.socket_path.unlink(missing_ok=True)  # stale socket reclaim
        self._stop_threads = threading.Event()
        self._shutdown_requested = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="fracture-job"
        )
        self.caches.install()
        self._recover_jobs()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path),
            limit=min(MAX_LINE_BYTES, self.limits.max_line_bytes),
        )
        self.started_unix = time.time()
        self.daemon_json.write_text(json.dumps({
            "schema": PROTOCOL_SCHEMA,
            "pid": os.getpid(),
            "socket": str(self.socket_path),
            "started_unix": self.started_unix,
        }, indent=1))
        self._install_signal_handlers()
        if self.watchdog.enabled:
            task = asyncio.get_running_loop().create_task(
                self._watchdog_loop()
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self._pump()

    def _install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → interrupt-mode shutdown (best effort).

        ``add_signal_handler`` only works on a main-thread loop; tests
        run daemons on side threads, so failures are silently accepted
        (the test drives shutdown through the protocol instead).
        """
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.request_shutdown, "interrupt"
                )
            except (NotImplementedError, RuntimeError, ValueError):
                return

    def _recover_jobs(self) -> None:
        """Rebuild the job map and queue from ``<state>/jobs/*/job.json``."""
        max_seq = -1
        recovered: list[JobRecord] = []
        for job_json in sorted(self.state_dir.glob("jobs/*/job.json")):
            try:
                record = JobRecord.load(JobPaths(job_json.parent))
            except (OSError, ValueError, KeyError):
                continue  # torn write of a crashed daemon; job dir remains
            self.jobs[record.job_id] = record
            max_seq = max(max_seq, record.seq)
            if record.request_fp and not (
                record.state.settled and record.state is not JobState.DONE
            ):
                # Rebuild the idempotency index for live/done jobs; a
                # failed or cancelled job should not absorb a resubmit.
                self._by_fingerprint[record.request_fp] = record.job_id
            if record.state is JobState.QUEUED:
                recovered.append(record)
                self.recovered["queued"] += 1
            elif record.state is JobState.RUNNING:
                # The previous daemon died mid-job.  Its checkpoint
                # journal is intact (fsync per tile), so requeue with
                # resume; the next attempt replays settled tiles.
                record.state = JobState.QUEUED
                record.resume = True
                record.started_unix = None
                record.save(JobPaths(job_json.parent))
                recovered.append(record)
                self.recovered["resumed"] += 1
        self.queue.advance_seq(max_seq)
        # Original (priority, seq) order — pre-crash FIFO survives.
        for record in sorted(recovered, key=lambda r: (-r.priority, r.seq)):
            self.queue.push(record.job_id, record.priority, record.seq)
            self._track_queued(record, +1)

    async def run_until_shutdown(self) -> None:
        """Serve until a signal or ``shutdown`` op, then stop cleanly."""
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.stop(self._shutdown_mode or "interrupt")

    def request_shutdown(self, mode: str = "interrupt") -> None:
        """Flag shutdown from a signal handler or protocol op."""
        self._shutdown_mode = mode
        self._stopping = True
        if mode == "interrupt" and self._stop_threads is not None:
            self._stop_threads.set()
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def stop(self, mode: str = "interrupt") -> None:
        """Stop the daemon: ``drain`` finishes running jobs, ``interrupt``
        checkpoints and requeues them.  Queued jobs stay queued on disk."""
        self._stopping = True
        if mode == "interrupt" and self._stop_threads is not None:
            self._stop_threads.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Hang up on idle connections so their handler coroutines exit
        # cleanly before the loop closes (a blocked readline sees EOF);
        # cancel any still parked in a long server-side ``wait`` op.
        for writer in list(self._connections):
            writer.close()
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=2.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.caches.uninstall()
        self.socket_path.unlink(missing_ok=True)
        self.daemon_json.unlink(missing_ok=True)

    # -- scheduling ---------------------------------------------------------

    def _track_queued(self, record: JobRecord, delta: int) -> None:
        """Maintain the per-client queued-job count (fair share)."""
        count = self._queued_by_client.get(record.client_id, 0) + delta
        if count > 0:
            self._queued_by_client[record.client_id] = count
        else:
            self._queued_by_client.pop(record.client_id, None)

    def _pump(self) -> None:
        """Start queued jobs while worker capacity remains."""
        if self._stopping:
            return
        while len(self.running) < self.workers:
            job_id = self.queue.pop()
            if job_id is None:
                return
            record = self.jobs[job_id]
            self._track_queued(record, -1)
            record.state = JobState.RUNNING
            record.started_unix = time.time()
            record.attempts += 1
            record.save(self._paths(job_id))
            control = JobControl(stop=self._stop_threads, limits=self.limits)
            self.controls[job_id] = control
            self.running.add(job_id)
            task = asyncio.get_running_loop().create_task(
                self._run_one(record, control)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_one(self, record: JobRecord, control: JobControl) -> None:
        loop = asyncio.get_running_loop()
        paths = self._paths(record.job_id)
        settled = True
        try:
            payload = await loop.run_in_executor(
                self._executor,
                self.job_runner, record, paths, self.caches, control,
            )
            record.state = JobState.DONE
            record.summary = dict(payload.get("totals", {}))
        except JobCancelled:
            if control.over_budget is not None:
                settled = self._settle_over_budget(record, control)
            else:
                record.state = JobState.CANCELLED
        except JobInterrupted:
            # Back to the queue with resume; the *next* daemon (or a
            # later pump, if this was a lone cancelled-stop) replays
            # the checkpoints.  Not settled: waiters keep waiting.
            record.state = JobState.QUEUED
            record.resume = True
            record.started_unix = None
            settled = False
        except DiskFullError as error:
            # The disk guard refused a write (checkpoint / result /
            # cache): typed failure, no torn files on disk.
            record.state = JobState.FAILED
            record.error = str(error)
            record.error_code = "disk_full"
            self.guard_counters["disk_full"] += 1
        except Exception as error:  # job bug or bad geometry — never fatal
            record.state = JobState.FAILED
            record.error = f"{type(error).__name__}: {error}"
        if settled:
            record.finished_unix = time.time()
            self._observe_latency(record)
        record.save(paths)
        self.running.discard(record.job_id)
        self.controls.pop(record.job_id, None)
        self.watchdog.forget(record.job_id)
        if settled:
            if record.request_fp and record.state is not JobState.DONE:
                # A failed/cancelled job must not absorb resubmissions.
                self._by_fingerprint.pop(record.request_fp, None)
            self._settled_event(record.job_id).set()
        self._pump()

    def _settle_over_budget(
        self, record: JobRecord, control: JobControl
    ) -> bool:
        """Map a watchdog kill onto the record; returns ``settled``.

        Default: typed ``over_budget`` failure.  With
        ``degrade_over_budget`` set and the job on a non-baseline
        method, the job is instead requeued *once* on the deterministic
        ``partition`` baseline (fresh run: the old method's checkpoints
        do not apply to the new one).
        """
        self.guard_counters["over_budget"] += 1
        reason = control.over_budget
        degradable = (
            self.limits.degrade_over_budget
            and record.spec.get("method") != "partition"
            and "degraded_from" not in record.spec
        )
        if degradable:
            try:
                self.queue.push(record.job_id, record.priority, record.seq)
            except QueueFull:
                degradable = False  # no room to retry: fail typed
        if degradable:
            record.spec["degraded_from"] = record.spec["method"]
            record.spec["method"] = "partition"
            record.state = JobState.QUEUED
            record.resume = False
            record.started_unix = None
            record.error = (
                f"over budget ({reason}); degraded to partition baseline"
            )
            self.guard_counters["degraded"] += 1
            self._track_queued(record, +1)
            return False
        record.state = JobState.FAILED
        record.error = f"cancelled by watchdog: over budget ({reason})"
        record.error_code = "over_budget"
        return True

    def _observe_latency(self, record: JobRecord) -> None:
        """Fold one settled job into the per-priority latency summary."""
        latency = record.latency_s
        if latency is None:
            return
        summary = self._latency_by_priority.setdefault(
            record.priority,
            {"count": 0.0, "sum": 0.0, "min": latency, "max": latency},
        )
        summary["count"] += 1.0
        summary["sum"] += latency
        summary["min"] = min(summary["min"], latency)
        summary["max"] = max(summary["max"], latency)

    def _running_started(self) -> dict[str, float]:
        """Watchdog view: running job ids with their start times."""
        return {
            job_id: self.jobs[job_id].started_unix or self.started_unix
            for job_id in self.running
        }

    def _on_over_budget(self, violation: JobOverBudget) -> None:
        """Watchdog callback: flag and cancel the offending job only."""
        control = self.controls.get(violation.job_id)
        if control is not None and control.over_budget is None:
            control.over_budget = violation.reason
            control.cancel.set()

    async def _watchdog_loop(self) -> None:
        """Budget enforcement pass every ``watchdog_interval_s``."""
        while not self._stopping:
            try:
                self.watchdog.tick()
            except Exception:  # never let enforcement kill the daemon
                pass
            await asyncio.sleep(self.limits.watchdog_interval_s)

    def _paths(self, job_id: str) -> JobPaths:
        return JobPaths.for_job(self.state_dir, job_id)

    def _settled_event(self, job_id: str) -> asyncio.Event:
        event = self._settled.get(job_id)
        if event is None:
            event = asyncio.Event()
            self._settled[job_id] = event
            if self.jobs[job_id].state.settled:
                event.set()
        return event

    # -- protocol front end -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await self._read_request_line(reader)
                except _IdleTimeout:
                    # Parked connection with no request in flight:
                    # reclaim the handler without a protocol error.
                    self.guard_counters["idle_closed"] += 1
                    break
                except _ReadTimeout:
                    # Torn frame: bytes arrived, then the client
                    # stalled mid-line past the read deadline.
                    self.guard_counters["read_timeouts"] += 1
                    writer.write(encode_line(error_response(
                        "read deadline exceeded mid-request",
                        "bad_request", reason="read_timeout")))
                    await writer.drain()
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(error_response(
                        "request line too long", "bad_request")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = decode_line(line)
                except ProtocolError as error:
                    response = error_response(str(error), "bad_request")
                else:
                    response = await self._dispatch(request)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request_line(self, reader: asyncio.StreamReader) -> bytes:
        """One request line under the connection-hygiene timeouts.

        Two-stage read: the *first byte* may take up to
        ``idle_timeout_s`` (a parked-but-healthy client), but once a
        request has started arriving the *rest of the line* must land
        within ``read_deadline_s`` — a client that stalls mid-frame
        cannot pin a handler coroutine indefinitely.  Either timeout
        disabled (``None``) waits forever, preserving pre-guard
        behaviour.
        """
        if self.limits.idle_timeout_s is not None:
            try:
                first = await asyncio.wait_for(
                    reader.read(1), self.limits.idle_timeout_s
                )
            except asyncio.TimeoutError:
                raise _IdleTimeout() from None
        else:
            first = await reader.read(1)
        if not first or first == b"\n":
            return first  # EOF, or a bare keepalive newline
        if self.limits.read_deadline_s is not None:
            try:
                rest = await asyncio.wait_for(
                    reader.readline(), self.limits.read_deadline_s
                )
            except asyncio.TimeoutError:
                raise _ReadTimeout() from None
        else:
            rest = await reader.readline()
        return first + rest

    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op not in OPS:
            return error_response(f"unknown op {op!r}", "unknown_op")
        handler = getattr(self, f"_op_{op}")
        try:
            return await handler(request)
        except Exception as error:  # daemon must survive any request
            return error_response(
                f"{type(error).__name__}: {error}", "internal"
            )

    def _get_job(self, request: dict[str, Any]) -> JobRecord:
        job_id = request.get("job_id")
        record = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if record is None:
            raise KeyError(job_id)
        return record

    async def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return ok_response(
            schema=PROTOCOL_SCHEMA,
            pid=os.getpid(),
            uptime_s=time.time() - self.started_unix,
            state_dir=str(self.state_dir),
        )

    async def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._stopping:
            return error_response(
                "daemon is shutting down", "shutting_down"
            )
        client_id = str(request.get("client_id", "") or "")
        # Trace context rides at the request top level (the job payload
        # is whitelisted).  Untrusted input: a malformed context is
        # dropped and a fresh trace minted — observability never
        # rejects work.
        trace = TraceContext.from_dict(request.get("trace"))
        if trace is None:
            trace = mint_trace()
        # Cheapest guard first: a flood is shed before any validation,
        # queue slot, or job directory is spent on it.
        if self.rate_limiter is not None and not self.rate_limiter.allow(
            client_id
        ):
            self.guard_counters["rate_limited"] += 1
            return error_response(
                f"client {client_id or '<anonymous>'} exceeded "
                f"{self.limits.rate_per_s}/s submit rate",
                "rate_limited", reason="token_bucket",
            )
        try:
            spec = validate_submission(request.get("job"))
        except ValueError as error:
            return error_response(str(error), "bad_request")
        try:
            validate_admission(spec, self.limits)
        except AdmissionError as rejected:
            self.guard_counters["rejected"] += 1
            return error_response(
                str(rejected), "job_rejected", reason=rejected.reason
            )
        # Idempotent resubmission: a client that lost the ack retries
        # with the same content fingerprint and gets the original job
        # back instead of double-running it.  Only an *explicit*
        # ``request_fp`` dedupes — identical payloads without one are
        # distinct jobs by design.
        fingerprint = str(request.get("request_fp", "") or "")
        if fingerprint:
            existing = self.jobs.get(self._by_fingerprint.get(fingerprint, ""))
            if existing is not None:
                self.guard_counters["deduplicated"] += 1
                return ok_response(
                    job_id=existing.job_id,
                    state=existing.state.value,
                    queued=len(self.queue),
                    stream=str(self._paths(existing.job_id).stream),
                    deduplicated=True,
                    trace_id=(existing.trace or {}).get("trace_id"),
                )
        if self.limits.queue_share is not None:
            cap = max(
                1, int(self.limits.queue_share * self.queue.max_depth)
            )
            if self._queued_by_client.get(client_id, 0) >= cap:
                self.guard_counters["fair_share_deferred"] += 1
                return error_response(
                    f"client {client_id or '<anonymous>'} already holds "
                    f"{cap} queued jobs (fair share of depth "
                    f"{self.queue.max_depth})",
                    "rate_limited", reason="fair_share",
                )
        record = JobRecord(
            job_id=new_job_id(),
            spec=spec,
            priority=spec["priority"],
            seq=self.queue.next_seq(),
            request_fp=fingerprint
            or job_fingerprint(spec, exclude=("name", "priority")),
            client_id=client_id,
            trace=trace.to_dict(),
        )
        try:
            self.queue.push(record.job_id, record.priority, record.seq)
        except QueueFull as full:
            return error_response(str(full), "queue_full")
        # Persist before acknowledging: an acked job survives a crash.
        record.save(self._paths(record.job_id))
        self.jobs[record.job_id] = record
        self._track_queued(record, +1)
        if fingerprint:
            self._by_fingerprint[fingerprint] = record.job_id
        self._pump()
        return ok_response(
            job_id=record.job_id,
            state=record.state.value,
            queued=len(self.queue),
            stream=str(self._paths(record.job_id).stream),
            trace_id=trace.trace_id,
        )

    async def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        try:
            record = self._get_job(request)
        except KeyError:
            return error_response("no such job", "unknown_job")
        return ok_response(job=record.public_view())

    async def _op_list(self, request: dict[str, Any]) -> dict[str, Any]:
        records = sorted(
            self.jobs.values(), key=lambda r: r.seq, reverse=True
        )
        return ok_response(jobs=[r.public_view() for r in records])

    async def _op_result(self, request: dict[str, Any]) -> dict[str, Any]:
        try:
            record = self._get_job(request)
        except KeyError:
            return error_response("no such job", "unknown_job")
        if record.state is not JobState.DONE:
            detail = f" ({record.error})" if record.error else ""
            return error_response(
                f"job is {record.state.value}{detail}", "not_done"
            )
        paths = self._paths(record.job_id)
        payload = json.loads(paths.result_json.read_text("utf-8"))
        return ok_response(result=payload)

    async def _op_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        try:
            record = self._get_job(request)
        except KeyError:
            return error_response("no such job", "unknown_job")
        if record.state is JobState.QUEUED and self.queue.remove(record.job_id):
            self._track_queued(record, -1)
            if record.request_fp:
                self._by_fingerprint.pop(record.request_fp, None)
            record.state = JobState.CANCELLED
            record.finished_unix = time.time()
            record.save(self._paths(record.job_id))
            self._settled_event(record.job_id).set()
            return ok_response(job_id=record.job_id, state=record.state.value)
        if record.state is JobState.RUNNING:
            control = self.controls.get(record.job_id)
            if control is not None:
                control.cancel.set()
            # Still 'running' until the worker reaches a stop point.
            return ok_response(
                job_id=record.job_id, state=record.state.value,
                cancelling=True,
            )
        return ok_response(job_id=record.job_id, state=record.state.value)

    async def _op_wait(self, request: dict[str, Any]) -> dict[str, Any]:
        try:
            record = self._get_job(request)
        except KeyError:
            return error_response("no such job", "unknown_job")
        timeout_s = request.get("timeout_s", 60.0)
        event = self._settled_event(record.job_id)
        timed_out = False
        try:
            await asyncio.wait_for(event.wait(), timeout=float(timeout_s))
        except asyncio.TimeoutError:
            timed_out = True
        return ok_response(job=record.public_view(), timed_out=timed_out)

    async def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        by_state: dict[str, int] = {}
        for record in self.jobs.values():
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        return ok_response(
            uptime_s=time.time() - self.started_unix,
            queued=len(self.queue),
            queue_order=self.queue.snapshot(),
            running=sorted(self.running),
            workers=self.workers,
            jobs_by_state=by_state,
            recovered=dict(self.recovered),
            caches=self.caches.stats(),
            resources=sample_resources(),
            heartbeats=summarize_heartbeats(
                self.state_dir / "heartbeats",
                stall_after_s=5.0 * JOB_HEARTBEAT_INTERVAL_S,
                slow_task_after_s=self.stall_clip_s,
            ),
            guard={
                "limits": self.limits.to_dict(),
                "counters": dict(self.guard_counters),
                "watchdog_enabled": self.watchdog.enabled,
                "rate_limited_clients": (
                    0 if self.rate_limiter is None else len(self.rate_limiter)
                ),
            },
        )

    async def _op_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        """Daemon gauges as Prometheus exposition text.

        The same numbers ``stats`` returns as JSON, flattened into the
        ``repro_*`` metric families of :mod:`repro.obs.metrics` — plus
        the per-priority submit-to-settled latency summaries only this
        op exposes.  ``{"text": ...}`` parses with
        :func:`repro.obs.metrics.parse_prometheus` (CI asserts this).
        """
        samples: list[MetricSample] = [
            MetricSample("service.uptime_seconds",
                         time.time() - self.started_unix, type="gauge"),
            MetricSample("service.queue_depth", len(self.queue),
                         type="gauge"),
            MetricSample("service.running_jobs", len(self.running),
                         type="gauge"),
            MetricSample("service.workers", self.workers, type="gauge"),
        ]
        by_state: dict[str, int] = {}
        for record in self.jobs.values():
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        for state, count in sorted(by_state.items()):
            samples.append(MetricSample(
                "service.jobs", count, labels={"state": state}, type="gauge"
            ))
        for name, count in sorted(self.guard_counters.items()):
            samples.append(MetricSample(
                f"service.guard.{name}_total", count, type="counter"
            ))
        for name, value in sorted(self.caches.counters().items()):
            samples.append(MetricSample(f"{name}_total", value,
                                        type="counter"))
        for priority, summary in sorted(self._latency_by_priority.items()):
            labels = {"priority": str(priority)}
            samples.append(MetricSample(
                "service.latency_seconds_count", summary["count"],
                labels=labels, type="counter",
            ))
            samples.append(MetricSample(
                "service.latency_seconds_sum", summary["sum"],
                labels=labels, type="counter",
            ))
            samples.append(MetricSample(
                "service.latency_seconds_min", summary["min"],
                labels=labels, type="gauge",
            ))
            samples.append(MetricSample(
                "service.latency_seconds_max", summary["max"],
                labels=labels, type="gauge",
            ))
        beats = summarize_heartbeats(
            self.state_dir / "heartbeats",
            stall_after_s=5.0 * JOB_HEARTBEAT_INTERVAL_S,
            slow_task_after_s=self.stall_clip_s,
        )
        samples.append(MetricSample(
            "service.heartbeats_alive", beats.get("alive", 0), type="gauge"
        ))
        samples.append(MetricSample(
            "service.heartbeats_stalled", beats.get("stalled", 0),
            type="gauge",
        ))
        resources = sample_resources()
        for key in ("rss_bytes", "cpu_s"):
            value = resources.get(key)
            if isinstance(value, (int, float)):
                samples.append(MetricSample(
                    f"service.{key}", value, type="gauge"
                ))
        return ok_response(text=render_prometheus(samples))

    async def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        mode = request.get("mode", "interrupt")
        if mode not in ("drain", "interrupt"):
            return error_response(
                "shutdown mode must be 'drain' or 'interrupt'", "bad_request"
            )
        # Acknowledge first; the connection handler flushes the reply
        # before the server socket closes underneath it.
        asyncio.get_running_loop().call_soon(self.request_shutdown, mode)
        return ok_response(mode=mode, running=len(self.running))


# Re-exported for callers that only need to know whether a daemon is up
# without importing the asyncio machinery.
def socket_path_for(state_dir: str | Path) -> Path:
    return Path(state_dir) / "daemon.sock"
