"""Wire protocol of the fracture service: JSON lines over a local socket.

One request per line, one response per line, UTF-8 JSON.  A request is
``{"op": <name>, ...fields}``; a response is ``{"ok": true, ...}`` or
``{"ok": false, "error": <message>, "code": <machine code>}``.  The
transport is a Unix-domain socket inside the daemon's state directory,
so filesystem permissions are the access control and no port can leak
or collide.

Operations (``OPS``):

==============  ========================================================
``ping``        liveness + daemon identity (pid, uptime, schema)
``submit``      enqueue a job; returns ``job_id`` (``queue_full`` /
                ``shutting_down`` errors are the backpressure surface)
``status``      one job's full record
``list``        summaries of all known jobs (newest first)
``result``      a finished job's result payload
``cancel``      cancel a queued job or request stop of a running one
``wait``        block (server side, with timeout) until a job settles
``stats``       daemon-level gauges: queue depth, running, warm-cache
                hit rates, RSS/CPU of the daemon process
``metrics``     the same gauges plus latency histograms rendered as
                Prometheus exposition text (``{"text": ...}``) for
                scrapers — see :mod:`repro.obs.metrics`
``shutdown``    stop the daemon (``"drain"`` finishes running jobs,
                ``"interrupt"`` checkpoints and requeues them)
==============  ========================================================

Error codes: ``bad_request``, ``unknown_op``, ``unknown_job``,
``queue_full``, ``not_done``, ``shutting_down``, ``internal`` — plus
the guard layer's typed rejections: ``job_rejected`` (admission
bounds: oversized/degenerate geometry, out-of-range spec/priority/
window/workers, with a machine ``reason`` slug), ``rate_limited``
(per-client token bucket or fair-share queue cap) and, on job
*records* rather than responses, ``over_budget`` / ``disk_full``
failure codes set by the watchdog and the disk guard.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_SCHEMA",
    "REJECTION_CODES",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
]

PROTOCOL_SCHEMA = "repro.service/v1"

OPS = (
    "ping",
    "submit",
    "status",
    "list",
    "result",
    "cancel",
    "wait",
    "stats",
    "metrics",
    "shutdown",
)

#: Hard per-line bound: a submission carries clip vertices inline, which
#: is kilobytes for realistic clips; 32 MiB leaves headroom for very
#: large clip batches while still bounding a runaway/hostile writer.
#: ``ServiceLimits.max_line_bytes`` can lower (never raise) this per
#: daemon.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Error codes a *well-formed* request can earn from the guard layer.
#: Clients treat these as permanent for the request as sent (retrying
#: the identical payload cannot succeed), unlike ``queue_full`` /
#: ``rate_limited`` / ``no_daemon``, which are transient.
REJECTION_CODES = ("job_rejected", "bad_request", "unknown_op")


class ProtocolError(ValueError):
    """A malformed request or response line."""


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol message as a single newline-terminated JSON line."""
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol line; :class:`ProtocolError` when malformed."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("protocol message must be a JSON object")
    return payload


def ok_response(**fields: Any) -> dict[str, Any]:
    return {"ok": True, **fields}


def error_response(
    message: str, code: str = "bad_request", **fields: Any
) -> dict[str, Any]:
    """Error payload; ``fields`` carries typed detail (e.g. the guard
    layer's machine ``reason`` slug on ``job_rejected`` responses)."""
    return {"ok": False, "error": message, "code": code, **fields}
