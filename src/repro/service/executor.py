"""Job execution: one job, one worker thread, isolated telemetry.

:func:`execute_job` is the bridge between the asyncio server and the
synchronous fracturing library.  It runs inside a thread-pool worker
and composes the pieces the earlier PRs built:

* a per-job :class:`~repro.obs.TelemetryRecorder` installed via
  ``thread_recording`` — thread-scoped, so concurrent jobs never mix
  spans or counters — streaming live to the job's ``stream.jsonl``
  (append mode on resumed attempts: one stream tells the whole story);
* the shared :class:`~repro.service.caches.WarmCaches` — each clip is
  first looked up in the content-addressed result cache (a hit skips
  fracture *and* verification: the stored verdict was computed from
  scratch on identical inputs), and every ``IntensityMap`` built on a
  miss attaches to the warm profile bank automatically;
* the fault-tolerant tiled runtime — windowed jobs get a checkpoint
  journal under the job directory and a ``stop_check`` wired to the
  daemon's shutdown/cancel events, so SIGTERM checkpoints mid-clip and
  the resumed attempt replays settled tiles bit-identically.

Cancellation and interruption surface as typed exceptions
(:class:`JobCancelled`, :class:`JobInterrupted`) so the server can map
them onto the job state machine without string matching.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

from repro.fracture.cache import (
    fingerprint_polygon,
    result_to_payload,
    translate_shots,
)
from repro.fracture.runtime import RunInterrupted, RuntimePolicy
from repro.fracture.windowed import WindowedFracturer
from repro.geometry.point import Point
from repro.kernels import kernels_manifest
from repro.geometry.polygon import Polygon
from repro.mask.constraints import FractureSpec
from repro.mask.io import rect_from_list, rect_to_list, spec_from_dict, spec_to_dict
from repro.mask.shape import MaskShape
from repro.methods import make_fracturer
from repro.obs import (
    HeartbeatWriter,
    TelemetryRecorder,
    TelemetryStream,
    ensure_disk_space,
    thread_recording,
)
from repro.service.caches import WarmCaches
from repro.service.jobs import JobPaths, JobRecord

__all__ = [
    "JOB_HEARTBEAT_INTERVAL_S",
    "JobCancelled",
    "JobControl",
    "JobInterrupted",
    "execute_job",
]

#: Per-job heartbeat publish interval; the daemon's ``stats`` op treats
#: a file older than a few intervals as ``no_heartbeat``.
JOB_HEARTBEAT_INTERVAL_S = 2.0


class JobCancelled(Exception):
    """The job was cancelled by a client while running."""


class JobInterrupted(Exception):
    """The daemon is shutting down; the job checkpointed and can resume."""


class JobControl:
    """Stop flags the server shares with a running job's thread.

    ``cancel`` targets one job (client ``cancel`` op); ``stop`` is the
    daemon-wide shutdown flag (SIGTERM with interrupt semantics).  Both
    are polled by the tiled runtime between tile settlements and by the
    executor between clips, so reaction latency is one tile / one clip.

    ``limits`` carries the daemon's :class:`ServiceLimits` (or ``None``
    outside a guarded daemon) into the worker thread — the executor
    reads the disk floor from it.  ``over_budget`` is set by the
    server's watchdog *before* it flips ``cancel``, so the server can
    tell a budget kill (typed ``over_budget`` failure, optionally
    degraded and requeued) from a client cancellation.
    """

    def __init__(
        self,
        stop: threading.Event | None = None,
        limits: "ServiceLimits | None" = None,  # noqa: F821 — lazy type
    ):
        self.cancel = threading.Event()
        self.stop = stop if stop is not None else threading.Event()
        self.limits = limits
        self.over_budget: str | None = None

    def should_stop(self) -> bool:
        return self.cancel.is_set() or self.stop.is_set()

    def raise_if_stopped(self) -> None:
        if self.cancel.is_set():
            raise JobCancelled()
        if self.stop.is_set():
            raise JobInterrupted()

    @property
    def disk_floor_bytes(self) -> int | None:
        return self.limits.disk_floor_bytes if self.limits is not None else None


def _build_spec(fields: dict[str, float]) -> FractureSpec:
    base = spec_to_dict(FractureSpec())
    base.update(fields)
    return spec_from_dict(base)


def _make_runner(
    job: dict[str, Any],
    paths: JobPaths,
    resume: bool,
    control: JobControl,
    trace: dict[str, Any] | None = None,
):
    """Instantiate the fracturer a job asked for (windowed when sized)."""
    inner = make_fracturer(job["method"])
    window_nm = job.get("window_nm")
    if window_nm is None:
        return inner
    runtime = RuntimePolicy(
        checkpoint_dir=paths.checkpoint_dir if job.get("checkpoint") else None,
        resume=resume,
        stop_check=control.should_stop,
        disk_floor_bytes=control.disk_floor_bytes,
        trace=trace,
    )
    return WindowedFracturer(
        inner,
        window_nm=float(window_nm),
        workers=int(job.get("tile_workers", 1)),
        runtime=runtime,
    )


def _atomic_write_json(path, payload: dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def execute_job(
    record: JobRecord,
    paths: JobPaths,
    caches: WarmCaches | None = None,
    control: JobControl | None = None,
) -> dict[str, Any]:
    """Run one job to completion; returns the ``result.json`` payload.

    Raises :class:`JobCancelled` / :class:`JobInterrupted` when stopped
    (telemetry stream detached, checkpoints flushed) and propagates any
    other exception as a job failure after closing the stream with
    ``status="error"``.
    """
    control = control if control is not None else JobControl()
    job = record.spec
    paths.ensure()
    resume = bool(record.resume)
    stream = TelemetryStream(paths.stream, append=resume)
    recorder = TelemetryRecorder(
        manifest={
            "job_id": record.job_id,
            "attempt": record.attempts,
            "resume": resume,
            "method": job["method"],
            "priority": record.priority,
            "kernels": kernels_manifest(),
        },
        stream=stream,
        trace=record.trace,
    )
    # Per-job heartbeat: the writer's daemon thread keeps publishing
    # even when the work loop wedges inside one clip, so the daemon's
    # ``stats`` op can tell a *stuck* job (fresh beat, ancient task)
    # from a *dead* one (stale file).  Unlinked on every exit path —
    # a lingering file means the executor thread itself died.
    heartbeat = HeartbeatWriter(
        paths.heartbeats_dir,
        interval_s=JOB_HEARTBEAT_INTERVAL_S,
        name=record.job_id,
        meta={
            "job_id": record.job_id,
            "attempt": record.attempts,
            **(
                {"trace_id": record.trace["trace_id"]}
                if record.trace and record.trace.get("trace_id")
                else {}
            ),
        },
    ).start()
    status = "error"
    try:
        with thread_recording(recorder):
            payload = _run_clips(
                record, paths, caches, control, recorder, heartbeat
            )
        status = "ok"
        return payload
    except JobCancelled:
        status = "cancelled"
        raise
    except JobInterrupted:
        status = "interrupted"
        raise
    finally:
        heartbeat.stop(unlink=True)
        recorder.emit_metrics()
        if status == "interrupted":
            # The resumed attempt appends to this stream; the terminal
            # record must come from the attempt that finishes the job.
            stream.emit({"type": "event", "name": "job_interrupted"})
            stream.detach()
        else:
            stream.close(status)
        _atomic_write_json(paths.telemetry_json, recorder.export())


def _run_clips(
    record: JobRecord,
    paths: JobPaths,
    caches: WarmCaches | None,
    control: JobControl,
    recorder: TelemetryRecorder,
    heartbeat: HeartbeatWriter | None = None,
) -> dict[str, Any]:
    job = record.spec
    spec = _build_spec(job.get("spec", {}))
    use_cache = caches is not None and job.get("use_result_cache", True)
    runner = _make_runner(
        job, paths, bool(record.resume), control,
        trace=recorder.manifest.get("trace"),
    )
    recorder.event(
        "job_start",
        job_id=record.job_id,
        attempt=record.attempts,
        resume=bool(record.resume),
        clips=len(job["clips"]),
        method=job["method"],
    )
    clips_out: dict[str, dict[str, Any]] = {}
    started = time.perf_counter()
    for name in sorted(job["clips"]):
        control.raise_if_stopped()
        vertices = job["clips"][name]
        polygon = Polygon(Point(x, y) for x, y in vertices)
        # Canonical (translation-normalized) fingerprint: the resolved
        # spec and registry method name match the library's cache keys
        # exactly, so a clip fractured by an `mdp --fracture-cache` run
        # warms the daemon and vice versa — and a *translated* clip of
        # known geometry hits too, served by exact shot translation.
        fingerprint, offset = fingerprint_polygon(
            polygon, spec, job["method"], job.get("window_nm")
        )
        cached = caches.results.get(fingerprint) if use_cache else None
        if cached is not None:
            stored = cached.get("frame", [0.0, 0.0])
            shots = translate_shots(
                [rect_from_list(v) for v in cached["shots"]],
                offset[0] - float(stored[0]),
                offset[1] - float(stored[1]),
            )
            recorder.incr("cache.result.hits")
            recorder.event("clip_done", clip=name, cached=True,
                           shots=cached["shot_count"])
            clips_out[name] = {
                "shots": [rect_to_list(s) for s in shots],
                "shot_count": cached["shot_count"],
                "feasible": cached["feasible"],
                "failing_px": cached["failing_px"],
                "runtime_s": cached["runtime_s"],
                "extra": cached.get("extra", {}),
                "cached": True,
            }
            continue
        if use_cache:
            recorder.incr("cache.result.misses")
        recorder.event("clip_start", clip=name, cached=False)
        if heartbeat is not None:
            heartbeat.set_task(name, record.attempts)
        shape = MaskShape.from_polygon(
            polygon, pitch=spec.pitch, margin=spec.grid_margin, name=name
        )
        try:
            result = runner.fracture(shape, spec)
        except RunInterrupted as stopped:
            # The tiled runtime stops for either flag; map back to the
            # one that fired (cancel wins: it is job-specific intent).
            recorder.event(
                "clip_interrupted", clip=name,
                tiles_done=stopped.done, tiles_total=stopped.total,
            )
            control.raise_if_stopped()
            raise  # stop_check stale trip with no flag set: real error
        stored_payload = result_to_payload(result, frame=offset)
        if use_cache:
            caches.results.put(fingerprint, stored_payload)
        clip_payload = {
            key: stored_payload[key]
            for key in (
                "shots", "shot_count", "feasible", "failing_px",
                "runtime_s", "extra",
            )
        }
        recorder.event("clip_done", clip=name, cached=False,
                       shots=result.shot_count, feasible=result.feasible)
        clips_out[name] = {**clip_payload, "cached": False}
    if heartbeat is not None:
        heartbeat.clear_task()
    wall_s = time.perf_counter() - started
    if caches is not None:
        stats = caches.stats()
        recorder.gauge("cache.profile.layouts", stats["profile"]["layouts"])
        recorder.gauge("cache.profile.profiles", stats["profile"]["profiles"])
        recorder.gauge("cache.result.entries", stats["result"]["entries"])
        # Surface the full unified cache stats in the run manifest too,
        # so offline trace/metrics tooling sees the same numbers the
        # daemon's ``stats`` op reports.
        recorder.manifest["caches"] = stats
    payload = {
        "schema": "repro.service.result/v1",
        "job_id": record.job_id,
        "name": job.get("name", ""),
        "method": job["method"],
        "spec": spec_to_dict(spec),
        "window_nm": job.get("window_nm"),
        "attempts": record.attempts,
        "resumed": bool(record.resume),
        "wall_s": wall_s,
        "clips": clips_out,
        "totals": {
            "clips": len(clips_out),
            "shots": sum(c["shot_count"] for c in clips_out.values()),
            "feasible": all(c["feasible"] for c in clips_out.values()),
            "cached_clips": sum(1 for c in clips_out.values() if c["cached"]),
        },
    }
    # Refuse to start the result write when the disk floor is breached:
    # DiskFullError propagates as a typed job failure and the atomic
    # tmp+replace below never leaves a torn result.json behind.
    ensure_disk_space(paths.root, control.disk_floor_bytes)
    _atomic_write_json(paths.result_json, payload)
    return payload
