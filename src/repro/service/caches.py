"""Daemon-lifetime warm state shared across jobs.

The entire economic argument for a resident daemon is that batch MDP
workloads resubmit near-identical work: the same clip re-fractured
after a parameter nudge, the same layout at a different priority, or a
verbatim retry after a client crash.  Three layers of warmth, cheapest
check first:

1. **Result cache** — the library-level content-addressed
   :class:`~repro.fracture.cache.FractureCache` (promoted out of this
   module in the hierarchy PR; ``ResultCache`` is the historical name).
   The sha256 of (canonical clip vertices, spec, method, window) maps
   to the finished shot list plus its frame, so a resubmission — even a
   *translated* one — costs one hash, skipping both fracture and
   verification (the stored feasibility verdict was computed from
   scratch on identical canonical geometry the first time).  With
   ``persist_dir`` set, entries survive daemon restarts on disk.
2. **Profile bank** (:class:`~repro.ebeam.intensity_map.ProfileBank`)
   — keyed 1-D edge profiles shared by every ``IntensityMap`` over the
   same (grid, σ, LUT).  A changed spec misses the result cache but a
   re-fractured layout still reuses every profile the previous run
   computed.
3. **Default LUT** (:func:`repro.ebeam.lut.default_lut`) — built once
   per process, shared by all jobs (thread-safe double-checked build).

:class:`WarmCaches` owns layers 1–2, installs the bank process-wide on
daemon startup, and answers the hit/miss counters that every job's
telemetry and the ``stats`` op expose.

``fingerprint_request`` is an alias of
:func:`repro.fracture.cache.canonical_fingerprint` — the single
fingerprint function in the tree, so service and library hashes can
never drift.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.ebeam.intensity_map import ProfileBank, set_profile_bank
from repro.fracture.cache import FractureCache, canonical_fingerprint

__all__ = ["ResultCache", "WarmCaches", "fingerprint_request"]

#: Historical service names for the promoted library primitives.
ResultCache = FractureCache
fingerprint_request = canonical_fingerprint


class WarmCaches:
    """The daemon's shared warm state: result cache + profile bank.

    ``install()`` publishes the profile bank process-wide so every
    ``IntensityMap`` built by any job thread attaches to it;
    ``uninstall()`` detaches (tests use this to restore isolation).
    ``persist_dir`` turns the result cache into an on-disk store shared
    across daemon restarts (and with ``--fracture-cache`` CLI runs).
    """

    def __init__(
        self,
        *,
        result_entries: int = 256,
        profile_layouts: int = 64,
        persist_dir: str | Path | None = None,
        min_free_bytes: int | None = None,
    ):
        self.results = FractureCache(
            max_entries=result_entries, persist_dir=persist_dir,
            min_free_bytes=min_free_bytes,
        )
        self.profiles = ProfileBank(max_caches=profile_layouts)
        self._installed = False

    def install(self) -> "WarmCaches":
        set_profile_bank(self.profiles)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            set_profile_bank(None)
            self._installed = False

    def __enter__(self) -> "WarmCaches":
        return self.install()

    def __exit__(self, *exc: object) -> bool:
        self.uninstall()
        return False

    def stats(self) -> dict[str, Any]:
        """Gauges for the ``stats`` op and per-job telemetry.

        Keys follow the unified cache telemetry namespace — the same
        ``cache.<name>.*`` families the recorder counters use
        (``cache.result.hits``, ``cache.profile.hits``, …) — so the
        ``stats`` op, the ``metrics`` exposition and per-run manifests
        all agree on naming.
        """
        return {
            "result": self.results.stats(),
            "profile": {
                "layouts": self.profiles.layouts,
                "profiles": self.profiles.profiles,
                "attaches": self.profiles.attach_count,
                "warm_attaches": self.profiles.warm_attach_count,
            },
        }

    def counters(self) -> dict[str, float]:
        """The same stats flattened to dotted ``cache.<name>.<key>`` keys."""
        flat: dict[str, float] = {}
        for cache_name, stats in self.stats().items():
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    flat[f"cache.{cache_name}.{key}"] = value
        return flat
