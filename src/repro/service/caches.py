"""Daemon-lifetime warm state shared across jobs.

The entire economic argument for a resident daemon is that batch MDP
workloads resubmit near-identical work: the same clip re-fractured
after a parameter nudge, the same layout at a different priority, or a
verbatim retry after a client crash.  Three layers of warmth, cheapest
check first:

1. **Result cache** (:class:`ResultCache`) — content-addressed: the
   sha256 of (clip vertices, spec, method, window) maps to the finished
   shot list.  A verbatim resubmission costs one hash, skipping both
   fracture and verification (the stored feasibility verdict was
   computed from scratch the first time and the inputs are identical).
2. **Profile bank** (:class:`~repro.ebeam.intensity_map.ProfileBank`)
   — keyed 1-D edge profiles shared by every ``IntensityMap`` over the
   same (grid, σ, LUT).  A changed spec misses the result cache but a
   re-fractured layout still reuses every profile the previous run
   computed.
3. **Default LUT** (:func:`repro.ebeam.lut.default_lut`) — built once
   per process, shared by all jobs (thread-safe double-checked build).

:class:`WarmCaches` owns layers 1–2, installs the bank process-wide on
daemon startup, and answers the hit/miss counters that every job's
telemetry and the ``stats`` op expose.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any

from repro.ebeam.intensity_map import ProfileBank, set_profile_bank

__all__ = ["ResultCache", "WarmCaches", "fingerprint_request"]


def fingerprint_request(
    clip_vertices: list[list[float]],
    spec: dict[str, float],
    method: str,
    window_nm: float | None,
) -> str:
    """Content address of one clip-level fracture request.

    Everything that can change the shot list is in the key; everything
    that cannot (priority, telemetry, worker count — the tiled merge is
    worker-count-invariant) is out, so the cache hits exactly when a
    recomputation would be bit-identical.
    """
    payload = {
        "v": 1,
        "clip": clip_vertices,
        "spec": {k: spec[k] for k in sorted(spec)},
        "method": method,
        "window_nm": window_nm,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded in-memory map: request fingerprint → finished result.

    Entries store plain JSON-able payloads (shot coordinate lists plus
    the feasibility summary), not live objects, so a hit can be served
    straight into ``result.json`` without touching numpy.  FIFO-ish
    bound: when full, the oldest insertion is evicted (dict preserves
    insertion order).  Thread-safe — job threads read while the next
    job's thread writes.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def put(self, fingerprint: str, payload: dict[str, Any]) -> None:
        with self._lock:
            if fingerprint in self._entries:
                return
            while len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[fingerprint] = payload

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class WarmCaches:
    """The daemon's shared warm state: result cache + profile bank.

    ``install()`` publishes the profile bank process-wide so every
    ``IntensityMap`` built by any job thread attaches to it;
    ``uninstall()`` detaches (tests use this to restore isolation).
    """

    def __init__(
        self, *, result_entries: int = 256, profile_layouts: int = 64
    ):
        self.results = ResultCache(max_entries=result_entries)
        self.profiles = ProfileBank(max_caches=profile_layouts)
        self._installed = False

    def install(self) -> "WarmCaches":
        set_profile_bank(self.profiles)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            set_profile_bank(None)
            self._installed = False

    def __enter__(self) -> "WarmCaches":
        return self.install()

    def __exit__(self, *exc: object) -> bool:
        self.uninstall()
        return False

    def stats(self) -> dict[str, Any]:
        """Gauges for the ``stats`` op and per-job telemetry."""
        return {
            "result_cache": self.results.stats(),
            "profile_bank": {
                "layouts": self.profiles.layouts,
                "profiles": self.profiles.profiles,
                "attaches": self.profiles.attach_count,
                "warm_attaches": self.profiles.warm_attach_count,
            },
        }
