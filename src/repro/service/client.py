"""Thin synchronous client of the fracture daemon.

One blocking request/response per call over the daemon's Unix socket
(connection per request: the daemon is local, connects are ~50 µs, and
statelessness means a daemon restart never strands a client socket).
Protocol errors come back as :class:`ServiceError` carrying the
machine-readable ``code`` (``queue_full``, ``unknown_job``, …) so
callers can branch without parsing messages.

This is the layer behind ``repro job submit/status/...`` and the
service benchmark; tests use it directly against in-process daemons.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any

from repro.service.jobs import JobPaths
from repro.service.protocol import MAX_LINE_BYTES, decode_line, encode_line

__all__ = ["ServiceClient", "ServiceError", "wait_for_daemon"]


class ServiceError(RuntimeError):
    """An error response from the daemon (or a dead daemon socket)."""

    def __init__(self, message: str, code: str = "internal"):
        super().__init__(message)
        self.code = code


class ServiceClient:
    """Blocking client bound to one daemon state directory."""

    def __init__(
        self, state_dir: str | Path = ".repro-service",
        *, timeout_s: float = 120.0,
    ):
        self.state_dir = Path(state_dir)
        self.socket_path = self.state_dir / "daemon.sock"
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request → the daemon's ``ok`` payload; raises on errors."""
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout_s)
                sock.connect(str(self.socket_path))
                sock.sendall(encode_line(payload))
                line = self._read_line(sock)
        except (OSError, socket.timeout) as error:
            raise ServiceError(
                f"no daemon at {self.socket_path}: {error}", "no_daemon"
            ) from None
        response = decode_line(line)
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "unknown error")),
                str(response.get("code", "internal")),
            )
        return response

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n") or total > MAX_LINE_BYTES:
                break
        return b"".join(chunks)

    # -- operations ---------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        clips: dict[str, list[list[float]]],
        *,
        name: str = "",
        method: str = "ours",
        priority: int = 0,
        window_nm: float | None = None,
        tile_workers: int = 1,
        spec: dict[str, float] | None = None,
        use_result_cache: bool = True,
        checkpoint: bool = True,
    ) -> str:
        """Enqueue a job; returns its id (``ServiceError`` on backpressure)."""
        response = self.request({"op": "submit", "job": {
            "name": name,
            "clips": clips,
            "method": method,
            "priority": priority,
            "window_nm": window_nm,
            "tile_workers": tile_workers,
            "spec": spec or {},
            "use_result_cache": use_result_cache,
            "checkpoint": checkpoint,
        }})
        return response["job_id"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})["job"]

    def list_jobs(self) -> list[dict[str, Any]]:
        return self.request({"op": "list"})["jobs"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "result", "job_id": job_id})["result"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def wait(self, job_id: str, timeout_s: float = 60.0) -> dict[str, Any]:
        """Block until the job settles (server-side wait); returns status."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out waiting for {job_id}", "timeout"
                )
            # Chunked server-side waits: each survives a daemon restart
            # window because the reconnect happens per request.
            chunk = min(remaining, 10.0)
            try:
                response = self.request(
                    {"op": "wait", "job_id": job_id, "timeout_s": chunk}
                )
            except ServiceError as error:
                if error.code == "no_daemon":
                    time.sleep(0.1)
                    continue
                raise
            if not response.get("timed_out"):
                return response["job"]

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self, mode: str = "interrupt") -> dict[str, Any]:
        return self.request({"op": "shutdown", "mode": mode})

    # -- conveniences -------------------------------------------------------

    def stream_path(self, job_id: str) -> Path:
        return JobPaths.for_job(self.state_dir, job_id).stream


def wait_for_daemon(
    state_dir: str | Path, timeout_s: float = 20.0, poll_s: float = 0.05
) -> ServiceClient:
    """Poll until a daemon answers ``ping`` on ``state_dir``; returns a
    client.  Used by the CLI (after forking ``repro serve``), the smoke
    test and the benchmark."""
    client = ServiceClient(state_dir)
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            client.ping()
            return client
        except ServiceError:
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"no daemon came up on {state_dir} "
                    f"within {timeout_s:.0f}s", "no_daemon",
                ) from None
            time.sleep(poll_s)
