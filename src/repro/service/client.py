"""Thin synchronous client of the fracture daemon.

One blocking request/response per call over the daemon's Unix socket
(connection per request: the daemon is local, connects are ~50 µs, and
statelessness means a daemon restart never strands a client socket).
Protocol errors come back as :class:`ServiceError` carrying the
machine-readable ``code`` (``queue_full``, ``unknown_job``, …) so
callers can branch without parsing messages.

Transport failures are *typed* and survivable: a dead socket is
``no_daemon``, a connection dropped mid-response is
``connection_dropped`` — never a bare ``ProtocolError`` — and the
socket is closed on every path, success or not.  On top of that sit
the resilience pieces for flaky daemons:

* :class:`RetryPolicy` — capped exponential backoff with jitter,
  applied only to transport failures (an error *response* means the
  daemon is healthy and is raised immediately);
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  transport failures the client fails fast (``circuit_open``) without
  touching the socket, probing again (half-open) after
  ``reset_after_s``;
* idempotent resubmission — :meth:`ServiceClient.submit` attaches a
  content fingerprint (``request_fp``) so a retry after a lost ack
  returns the already-enqueued job instead of double-running it.

This is the layer behind ``repro job submit/status/...`` and the
service benchmark; tests use it directly against in-process daemons.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.trace import TraceContext, mint_trace
from repro.service.jobs import JobPaths, job_fingerprint
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_line,
)

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "wait_for_daemon",
]

#: Transport-level failure codes: the request may never have reached
#: the daemon (or the response was lost), so retrying is safe for
#: idempotent requests and counted by the circuit breaker.
TRANSIENT_CODES = ("no_daemon", "connection_dropped")


class ServiceError(RuntimeError):
    """An error response from the daemon (or a dead daemon socket)."""

    def __init__(self, message: str, code: str = "internal"):
        super().__init__(message)
        self.code = code


@dataclass
class RetryPolicy:
    """Capped exponential backoff with full jitter for transport retries."""

    attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5  # fraction of the delay randomized away

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (0-based, after a failure)."""
        capped = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        return capped * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """Half-open circuit breaker over consecutive transport failures.

    Closed → open after ``failure_threshold`` consecutive failures;
    open → half-open after ``reset_after_s`` (one probe request is let
    through); the probe's outcome closes or re-opens the circuit.
    While open, :meth:`allow` returns ``False`` and the client raises
    ``circuit_open`` without touching the socket — a dead daemon costs
    a dict lookup, not a connect timeout, per call.
    """

    def __init__(
        self, failure_threshold: int = 5, reset_after_s: float = 0.25
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_after_s = float(reset_after_s)
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        return "half_open" if self._probing else "open"

    def allow(self, now: float | None = None) -> bool:
        if self._opened_at is None:
            return True
        now = time.monotonic() if now is None else now
        if not self._probing and now - self._opened_at >= self.reset_after_s:
            self._probing = True  # half-open: admit one probe
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self, now: float | None = None) -> None:
        self._failures += 1
        if self._probing or self._failures >= self.failure_threshold:
            self._opened_at = time.monotonic() if now is None else now
            self._probing = False


class ServiceClient:
    """Blocking client bound to one daemon state directory."""

    def __init__(
        self, state_dir: str | Path = ".repro-service",
        *, timeout_s: float = 120.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        client_id: str = "",
    ):
        self.state_dir = Path(state_dir)
        self.socket_path = self.state_dir / "daemon.sock"
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.client_id = client_id
        #: trace id accepted by the daemon for the most recent submit.
        self.last_trace_id: str | None = None
        self._rng = random.Random()

    # -- transport ----------------------------------------------------------

    def request(
        self, payload: dict[str, Any], *, retryable: bool = True
    ) -> dict[str, Any]:
        """One request → the daemon's ``ok`` payload; raises on errors.

        Transport failures retry per :class:`RetryPolicy` when
        ``retryable`` (every built-in operation is — ``submit`` because
        it carries an idempotency fingerprint); error *responses* raise
        immediately with their protocol code.
        """
        attempts = max(1, self.retry.attempts) if retryable else 1
        last: ServiceError | None = None
        for attempt in range(attempts):
            if not self.breaker.allow():
                raise ServiceError(
                    f"circuit open for {self.socket_path} after repeated "
                    f"transport failures", "circuit_open",
                )
            try:
                response = self._roundtrip(payload)
            except ServiceError as error:
                if error.code not in TRANSIENT_CODES:
                    # The daemon answered: transport is healthy.
                    self.breaker.record_success()
                    raise
                self.breaker.record_failure()
                last = error
                if attempt + 1 < attempts:
                    time.sleep(self.retry.delay_s(attempt, self._rng))
                continue
            self.breaker.record_success()
            if not response.get("ok"):
                raise ServiceError(
                    str(response.get("error", "unknown error")),
                    str(response.get("code", "internal")),
                )
            return response
        assert last is not None
        raise last

    def _roundtrip(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One connect/send/read/decode cycle with typed failures.

        The socket is closed on *every* path — including decode
        failures and unexpected exceptions — so a flaky daemon can
        never leak client file descriptors.
        """
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(str(self.socket_path))
                sock.sendall(encode_line(payload))
                line = self._read_line(sock)
            except (OSError, socket.timeout) as error:
                raise ServiceError(
                    f"no daemon at {self.socket_path}: {error}", "no_daemon"
                ) from None
        finally:
            sock.close()
        if not line.endswith(b"\n"):
            # EOF before the newline: the daemon died (or hung up) with
            # our response in flight.  Typed so callers and the retry
            # loop can branch; distinct from "never connected".
            raise ServiceError(
                f"daemon at {self.socket_path} dropped the connection "
                f"mid-response ({len(line)} bytes read)",
                "connection_dropped",
            )
        try:
            response = decode_line(line)
        except ProtocolError as error:
            raise ServiceError(
                f"undecodable response from {self.socket_path}: {error}",
                "connection_dropped",
            ) from None
        return response

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n") or total > MAX_LINE_BYTES:
                break
        return b"".join(chunks)

    # -- operations ---------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        clips: dict[str, list[list[float]]],
        *,
        name: str = "",
        method: str = "ours",
        priority: int = 0,
        window_nm: float | None = None,
        tile_workers: int = 1,
        spec: dict[str, float] | None = None,
        use_result_cache: bool = True,
        checkpoint: bool = True,
        idempotent: bool = True,
        trace: TraceContext | dict[str, Any] | None = None,
    ) -> str:
        """Enqueue a job; returns its id (``ServiceError`` on backpressure).

        With ``idempotent`` (the default) the request carries a content
        fingerprint: a transport-level retry after a lost ack — or an
        explicit resubmission of the same payload — returns the
        already-enqueued job's id instead of double-running it.  Pass
        ``idempotent=False`` to force a distinct job for an identical
        payload.

        ``trace`` carries the submitter's :class:`TraceContext` (or its
        dict form); when omitted a fresh one is minted, so every
        submission is traceable.  The accepted trace id comes back in
        :attr:`last_trace_id` and stamps the job record, every stream
        line, heartbeat and checkpoint of every attempt.
        """
        job = {
            "name": name,
            "clips": clips,
            "method": method,
            "priority": priority,
            "window_nm": window_nm,
            "tile_workers": tile_workers,
            "spec": spec or {},
            "use_result_cache": use_result_cache,
            "checkpoint": checkpoint,
        }
        payload: dict[str, Any] = {"op": "submit", "job": job}
        if trace is None:
            trace = mint_trace()
        payload["trace"] = (
            trace.to_dict() if isinstance(trace, TraceContext) else dict(trace)
        )
        if self.client_id:
            payload["client_id"] = self.client_id
        if idempotent:
            payload["request_fp"] = job_fingerprint(job)
        response = self.request(payload, retryable=idempotent)
        self.last_trace_id = response.get(
            "trace_id", payload["trace"].get("trace_id")
        )
        return response["job_id"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})["job"]

    def list_jobs(self) -> list[dict[str, Any]]:
        return self.request({"op": "list"})["jobs"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "result", "job_id": job_id})["result"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def wait(self, job_id: str, timeout_s: float = 60.0) -> dict[str, Any]:
        """Block until the job settles (server-side wait); returns status."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out waiting for {job_id}", "timeout"
                )
            # Chunked server-side waits: each survives a daemon restart
            # window because the reconnect happens per request.
            chunk = min(remaining, 10.0)
            try:
                response = self.request(
                    {"op": "wait", "job_id": job_id, "timeout_s": chunk}
                )
            except ServiceError as error:
                if error.code in (*TRANSIENT_CODES, "circuit_open"):
                    time.sleep(0.1)
                    continue
                raise
            if not response.get("timed_out"):
                return response["job"]

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def metrics(self) -> str:
        """The daemon's Prometheus exposition text (``metrics`` op)."""
        return self.request({"op": "metrics"})["text"]

    def shutdown(self, mode: str = "interrupt") -> dict[str, Any]:
        return self.request({"op": "shutdown", "mode": mode})

    # -- conveniences -------------------------------------------------------

    def stream_path(self, job_id: str) -> Path:
        return JobPaths.for_job(self.state_dir, job_id).stream


def wait_for_daemon(
    state_dir: str | Path, timeout_s: float = 20.0, poll_s: float = 0.05
) -> ServiceClient:
    """Poll until a daemon answers ``ping`` on ``state_dir``; returns a
    client.  Used by the CLI (after forking ``repro serve``), the smoke
    test and the benchmark."""
    client = ServiceClient(state_dir)
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            client.ping()
            return client
        except ServiceError:
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"no daemon came up on {state_dir} "
                    f"within {timeout_s:.0f}s", "no_daemon",
                ) from None
            time.sleep(poll_s)
