"""Job model of the fracture service: spec, lifecycle, on-disk layout.

A *job* is one MDP batch: a set of named clips fractured under one spec
with one method, submitted at a priority.  Its lifecycle is a strict
state machine::

    queued ──> running ──> done
      │           │  ├──> failed
      │           │  └──> cancelled
      │           └──> queued      (interrupted by daemon shutdown —
      └──> cancelled                requeued with resume)

Every transition is persisted atomically to the job's ``job.json``
(tmp + rename) before it is acknowledged, so a killed daemon recovers
the exact queue on restart: ``queued`` jobs re-enter the queue in their
original (priority, submission) order and ``running`` jobs are requeued
with ``resume`` set — their checkpoint journals replay the completed
tiles bit-identically.

On-disk layout (one directory per job, the unit CI uploads as the job
manifest artifact)::

    <state>/jobs/<job-id>/
        job.json        spec + state + timestamps (atomic rewrites)
        stream.jsonl    live telemetry (trace tail <job-id> --follow)
        result.json     shot lists + counters, written on completion
        telemetry.json  full recorder payload (spans/metrics)
        ckpt/           per-shape tile checkpoint journals
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import re
import secrets
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "JOB_ID_RE",
    "JobPaths",
    "JobRecord",
    "JobState",
    "job_fingerprint",
    "job_id_like",
    "new_job_id",
    "resolve_stream_path",
    "validate_submission",
]


class JobState(str, enum.Enum):
    """Lifecycle states; the str base keeps JSON round-trips trivial."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def settled(self) -> bool:
        """No further transitions possible."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: job ids look like ``job-3f9a2c41``; also accepted anywhere a stream
#: path is, so ``trace tail job-3f9a2c41`` needs no special flag.
JOB_ID_RE = re.compile(r"^job-[0-9a-f]{8}$")


def new_job_id() -> str:
    return f"job-{secrets.token_hex(4)}"


def job_id_like(text: str) -> bool:
    return bool(JOB_ID_RE.match(text))


@dataclass
class JobPaths:
    """Filesystem layout of one job under the daemon state directory."""

    root: Path

    @classmethod
    def for_job(cls, state_dir: str | Path, job_id: str) -> "JobPaths":
        return cls(Path(state_dir) / "jobs" / job_id)

    @property
    def job_json(self) -> Path:
        return self.root / "job.json"

    @property
    def stream(self) -> Path:
        return self.root / "stream.jsonl"

    @property
    def result_json(self) -> Path:
        return self.root / "result.json"

    @property
    def telemetry_json(self) -> Path:
        return self.root / "telemetry.json"

    @property
    def checkpoint_dir(self) -> Path:
        return self.root / "ckpt"

    @property
    def heartbeats_dir(self) -> Path:
        """Shared per-job heartbeat directory (``state_dir/heartbeats``).

        One level above ``jobs/``: the daemon's ``stats`` op reads the
        whole directory to flag wedged jobs without knowing their ids.
        """
        return self.root.parent.parent / "heartbeats"

    def ensure(self) -> "JobPaths":
        self.root.mkdir(parents=True, exist_ok=True)
        return self


def resolve_stream_path(
    target: str, state_dir: str | Path | None = None
) -> Path:
    """Resolve a ``trace tail`` target: a file path or a job id.

    A ``job-xxxxxxxx`` token resolves to the job's stream inside
    ``state_dir`` (default ``.repro-service``); anything else is taken
    as a literal path.  An existing file always wins, so a file that
    happens to be *named* like a job id still tails as a file.
    """
    literal = Path(target)
    if literal.exists() or not job_id_like(target):
        return literal
    base = Path(state_dir) if state_dir is not None else Path(".repro-service")
    return JobPaths.for_job(base, target).stream


_SUBMIT_DEFAULTS: dict[str, Any] = {
    "name": "",
    "method": "ours",
    "priority": 0,
    "window_nm": None,
    "tile_workers": 1,
    "use_result_cache": True,
    "checkpoint": True,
    "spec": {},
}


def validate_submission(job: dict[str, Any]) -> dict[str, Any]:
    """Normalize and validate a raw submission payload.

    Returns a complete spec dict (defaults filled) or raises
    ``ValueError`` with a client-presentable message.  Clips travel
    inline — ``{"clips": {name: [[x, y], ...]}}`` — so the daemon never
    depends on the client's filesystem.
    """
    if not isinstance(job, dict):
        raise ValueError("job must be an object")
    clips = job.get("clips")
    if not isinstance(clips, dict) or not clips:
        raise ValueError("job needs a non-empty 'clips' mapping")
    for name, verts in clips.items():
        if not isinstance(name, str) or not name:
            raise ValueError("clip names must be non-empty strings")
        if not isinstance(verts, list) or len(verts) < 3:
            raise ValueError(f"clip {name!r}: need at least 3 vertices")
        for v in verts:
            if (
                not isinstance(v, (list, tuple))
                or len(v) != 2
                or not all(isinstance(c, (int, float)) for c in v)
            ):
                raise ValueError(f"clip {name!r}: vertices must be [x, y] pairs")
    out = {**_SUBMIT_DEFAULTS, **{k: job[k] for k in job if k in _SUBMIT_DEFAULTS}}
    out["clips"] = {
        name: [[float(x), float(y)] for x, y in verts]
        for name, verts in clips.items()
    }
    if not isinstance(out["method"], str):
        raise ValueError("'method' must be a string")
    try:
        out["priority"] = int(out["priority"])
    except (TypeError, ValueError):
        raise ValueError("'priority' must be an integer") from None
    if out["window_nm"] is not None:
        try:
            out["window_nm"] = float(out["window_nm"])
        except (TypeError, ValueError):
            raise ValueError("'window_nm' must be a number") from None
        if out["window_nm"] <= 0:
            raise ValueError("'window_nm' must be positive")
    try:
        out["tile_workers"] = int(out["tile_workers"])
    except (TypeError, ValueError):
        raise ValueError("'tile_workers' must be an integer") from None
    if out["tile_workers"] < 1:
        raise ValueError("'tile_workers' must be at least 1")
    spec = out["spec"]
    if not isinstance(spec, dict):
        raise ValueError("'spec' must be an object of FractureSpec fields")
    allowed = {"sigma", "gamma", "pitch", "rho", "lmin"}
    unknown = set(spec) - allowed
    if unknown:
        raise ValueError(f"unknown spec fields: {sorted(unknown)}")
    out["spec"] = {k: float(v) for k, v in spec.items()}
    out["use_result_cache"] = bool(out["use_result_cache"])
    out["checkpoint"] = bool(out["checkpoint"])
    out["name"] = str(out["name"] or "")
    return out


def job_fingerprint(
    spec: dict[str, Any], exclude: tuple[str, ...] = ()
) -> str:
    """Content address of one submission payload (stable sha256).

    The job-level sibling of
    :func:`repro.fracture.cache.canonical_fingerprint`, used to key
    idempotent resubmission: a client that retries a submit after a
    dropped response sends the same fingerprint, and the daemon answers
    with the already-enqueued job instead of double-running it.  The
    client hashes its *whole* payload (two submissions differing only
    in name or priority are distinct jobs); the daemon's record-keeping
    fallback passes ``exclude=("name", "priority")`` to address content
    alone.
    """
    keyed = {k: spec[k] for k in sorted(spec) if k not in exclude}
    blob = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JobRecord:
    """One job's full, persistable state."""

    job_id: str
    spec: dict[str, Any]  # validated submission payload
    priority: int = 0
    seq: int = 0  # submission order; FIFO tiebreak within priority
    state: JobState = JobState.QUEUED
    attempts: int = 0  # execution attempts (restarts bump this)
    resume: bool = False  # next attempt should replay checkpoints
    error: str | None = None
    #: machine-readable failure class (``over_budget``, ``disk_full``);
    #: ``None`` for generic failures — clients branch without parsing.
    error_code: str | None = None
    #: content fingerprint for idempotent resubmission (may be empty
    #: for pre-guard records; recovery indexes only non-empty values).
    request_fp: str = ""
    #: client-declared identity for rate limiting / fair share
    #: (anonymous submissions share ``""``); persisted so fair-share
    #: accounting of recovered queued jobs survives a restart.
    client_id: str = ""
    #: trace context (``{"trace_id", "span_id", ...}``) correlating this
    #: job with the submitting client's trace; persisted so the same
    #: trace_id stamps every attempt, including post-restart resumes.
    trace: dict[str, Any] | None = None
    submitted_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    summary: dict[str, Any] = field(default_factory=dict)

    # -- derived ------------------------------------------------------------

    @property
    def queue_wait_s(self) -> float | None:
        if self.started_unix is None:
            return None
        return max(0.0, self.started_unix - self.submitted_unix)

    @property
    def run_wall_s(self) -> float | None:
        if self.started_unix is None or self.finished_unix is None:
            return None
        return max(0.0, self.finished_unix - self.started_unix)

    @property
    def latency_s(self) -> float | None:
        """Submit-to-settled latency — the service-level number."""
        if self.finished_unix is None:
            return None
        return max(0.0, self.finished_unix - self.submitted_unix)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.service.job/v1",
            "job_id": self.job_id,
            "spec": self.spec,
            "priority": self.priority,
            "seq": self.seq,
            "state": self.state.value,
            "attempts": self.attempts,
            "resume": self.resume,
            "error": self.error,
            "error_code": self.error_code,
            "request_fp": self.request_fp,
            "client_id": self.client_id,
            "trace": self.trace,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(data["job_id"]),
            spec=dict(data["spec"]),
            priority=int(data.get("priority", 0)),
            seq=int(data.get("seq", 0)),
            state=JobState(data.get("state", "queued")),
            attempts=int(data.get("attempts", 0)),
            resume=bool(data.get("resume", False)),
            error=data.get("error"),
            error_code=data.get("error_code"),
            request_fp=str(data.get("request_fp", "") or ""),
            client_id=str(data.get("client_id", "") or ""),
            trace=dict(data["trace"]) if data.get("trace") else None,
            submitted_unix=float(data.get("submitted_unix", 0.0)),
            started_unix=data.get("started_unix"),
            finished_unix=data.get("finished_unix"),
            summary=dict(data.get("summary") or {}),
        )

    def public_view(self) -> dict[str, Any]:
        """What ``status`` / ``list`` return: record minus clip geometry.

        Clip vertex lists dominate the payload size and the caller
        already has them; strip them but keep every knob and metric.
        """
        view = self.to_dict()
        spec = dict(view["spec"])
        clips = spec.pop("clips", {})
        spec["clip_names"] = sorted(clips)
        view["spec"] = spec
        view["queue_wait_s"] = self.queue_wait_s
        view["run_wall_s"] = self.run_wall_s
        view["latency_s"] = self.latency_s
        return view

    # -- persistence --------------------------------------------------------

    def save(self, paths: JobPaths) -> None:
        """Atomically persist the record (tmp + fsync + rename)."""
        paths.ensure()
        blob = json.dumps(self.to_dict(), indent=1)
        tmp = paths.job_json.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, paths.job_json)

    @classmethod
    def load(cls, paths: JobPaths) -> "JobRecord":
        return cls.from_dict(json.loads(paths.job_json.read_text("utf-8")))
