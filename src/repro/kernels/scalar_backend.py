"""Scalar oracle backend: the original pure-Python/per-label paths.

Selecting ``--kernels scalar`` routes every hot spot through the code
the vectorized kernels are gated against: the per-pixel raster
union–find labeling, the per-label ``np.nonzero`` bounding-box scan,
the per-candidate pricing loop, and the full-grid stitch cost field.
Equivalence tests run both backends and require identical results.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backend import KernelBackend


class ScalarBackend(KernelBackend):
    name = "scalar"
    fused_pricing = False
    crop_stitch_field = False

    def label_components(self, mask: np.ndarray) -> tuple[np.ndarray, int]:
        from repro.geometry.labeling import label_components_scalar

        return label_components_scalar(mask)

    def component_stats(
        self, labels: np.ndarray, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        present, counts, ymins, ymaxs, xmins, xmaxs = [], [], [], [], [], []
        for label in range(1, count + 1):
            ys, xs = np.nonzero(labels == label)
            if len(ys) == 0:
                continue
            present.append(label)
            counts.append(len(ys))
            ymins.append(int(ys.min()))
            ymaxs.append(int(ys.max()))
            xmins.append(int(xs.min()))
            xmaxs.append(int(xs.max()))
        as_array = lambda seq: np.asarray(seq, dtype=np.int64)  # noqa: E731
        return (
            as_array(present),
            as_array(counts),
            as_array(ymins),
            as_array(ymaxs),
            as_array(xmins),
            as_array(xmaxs),
        )

    def describe(self) -> dict[str, str]:
        return {
            "labeling": "python_union_find",
            "pricing": "loop",
            "stitch_field": "full",
        }
