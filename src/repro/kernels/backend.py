"""Array-backend contract for the vectorized hot-spot kernels.

A :class:`KernelBackend` bundles the three kernels the profiles from the
pricing/tiling PRs identified as the remaining wall time, behind one
seam so alternative array stacks (CuPy, a future Cython build) can slot
in without touching call sites:

``label_components``
    Connected-component labeling of a boolean mask.  The contract is
    *exact*: labels AND numbering must match the pure-Python raster
    union–find oracle (components numbered in raster-scan order of
    their first pixel) because tile extraction, AddShot, and the GSC
    baseline all consume the ordering.

``component_stats``
    Per-component bounding boxes + pixel counts from a label array, in
    one pass.

``clamped_band_sums``
    The signed-clamp Eq. 5 scoring of a whole batch of candidate edge
    moves — the fused gather/scatter replacement for the per-candidate
    Python loop of the batched pricing engine.  Per-candidate sums must
    use NumPy's pairwise reduction over the candidate's contour band in
    C order so results stay bit-identical to the scalar oracle.

Capability flags (``fused_pricing``, ``crop_stitch_field``) let a
backend opt out of a kernel; call sites then fall back to the scalar
path, which doubles as the oracle in equivalence tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class BackendUnavailable(RuntimeError):
    """The requested kernel backend cannot run in this environment."""


class KernelBackend:
    """Base class: capability flags + the three kernel entry points."""

    #: Registry name; subclasses override.
    name = "base"
    #: When True, ``RefinementState.price_edge_moves`` routes the batch
    #: through :meth:`clamped_band_sums` instead of the Python loop.
    fused_pricing = False
    #: When True, a region-restricted ``RefinementState`` crops its
    #: per-iteration cost/active fields to the active-mask bounding box.
    crop_stitch_field = False
    #: Mean cropped band size (pixels per candidate) up to which the
    #: fused gather/scatter kernel beats in-place slice scoring; batches
    #: with bulkier bands are scored per candidate.  ``None`` means
    #: always fuse (accelerator backends, where one kernel launch beats
    #: any per-candidate loop regardless of band size).
    fused_band_limit: int | None = 512

    def label_components(self, mask: np.ndarray) -> tuple[np.ndarray, int]:
        raise NotImplementedError

    def component_stats(
        self, labels: np.ndarray, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stats for the labels present in ``labels``.

        Returns ``(present, counts, ymin, ymax, xmin, xmax)`` — parallel
        arrays over the labels that actually occur (ascending label
        order); absent labels in ``1..count`` are simply not listed.
        """
        raise NotImplementedError

    def clamped_band_sums(
        self,
        row_vals: np.ndarray,
        col_vals: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        y0: np.ndarray,
        x0: np.ndarray,
        col_off: np.ndarray,
        sign: np.ndarray,
        base: np.ndarray,
    ) -> np.ndarray:
        """Batch Eq. 5 clamped scoring of separable contour bands.

        Candidate ``i`` covers the window ``rows[i] × cols[i]`` anchored
        at pixel ``(y0[i], x0[i])``; its patch is the outer product of a
        per-row factor slice (``rows[i]`` entries of ``row_vals``, laid
        out candidate-major) and a per-column factor slice (``cols[i]``
        entries of ``col_vals`` starting at ``col_off[i]``).  Returns
        ``sum(max(sign*patch + base, 0))`` per candidate, bit-identical
        to scoring each patch alone.
        """
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """Kernel-variant record for manifests and telemetry."""
        return {
            "labeling": "none",
            "pricing": "fused" if self.fused_pricing else "loop",
            "stitch_field": "cropped" if self.crop_stitch_field else "full",
        }
