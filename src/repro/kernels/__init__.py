"""repro.kernels — array-backend seam for the vectorized hot spots.

The three kernels that dominate refine/stitch wall time (signed-clamp
batch pricing, connected-component labeling, the per-iteration stitch
cost field) dispatch through a process-global :class:`KernelBackend`
selected here.  ``numpy`` (the vectorized default) and ``scalar`` (the
original per-pixel/per-candidate oracle paths) ship with the repo; the
gated ``cupy`` backend shows how an accelerator variant slots in.

Selection, in precedence order:

* ``set_backend("scalar")`` / the ``use_backend("scalar")`` context
  manager (tests, benchmarks);
* the ``--kernels`` CLI flag (which calls :func:`set_backend`);
* the ``REPRO_KERNELS`` environment variable;
* the built-in default, ``numpy``.

Backends register lazily: ``register_backend(name, factory)`` stores a
zero-argument factory, so importing :mod:`repro.kernels` never imports
cupy (or even the numpy backend module) until a backend is first used.
The active backend and its kernel variants are recorded in run
manifests via :func:`kernels_manifest` and surfaced as ``kernels.*``
telemetry by the kernels themselves.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from repro.kernels.backend import BackendUnavailable, KernelBackend

__all__ = [
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "kernels_manifest",
    "register_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "numpy"
ENV_VAR = "REPRO_KERNELS"

_REGISTRY: dict[str, Callable[[], KernelBackend]] = {}
_LOCK = threading.Lock()
_ACTIVE: KernelBackend | None = None


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    with _LOCK:
        _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    with _LOCK:
        return sorted(_REGISTRY)


def _resolve(name: str) -> KernelBackend:
    try:
        with _LOCK:
            factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    backend = factory()
    if not isinstance(backend, KernelBackend):
        raise TypeError(
            f"backend factory {name!r} returned {type(backend).__name__}, "
            "expected a KernelBackend"
        )
    return backend


def get_backend() -> KernelBackend:
    """The active backend, resolving ``$REPRO_KERNELS`` on first use."""
    global _ACTIVE
    backend = _ACTIVE
    if backend is None:
        backend = _resolve(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
        with _LOCK:
            if _ACTIVE is None:
                _ACTIVE = backend
            backend = _ACTIVE
    return backend


def set_backend(backend: str | KernelBackend) -> KernelBackend:
    """Install ``backend`` (by name or instance) process-wide."""
    global _ACTIVE
    resolved = _resolve(backend) if isinstance(backend, str) else backend
    with _LOCK:
        _ACTIVE = resolved
    return resolved


class use_backend:
    """Context manager scoping a backend selection (restores on exit)."""

    def __init__(self, backend: str | KernelBackend) -> None:
        self._backend = backend
        self._saved: KernelBackend | None = None

    def __enter__(self) -> KernelBackend:
        global _ACTIVE
        with _LOCK:
            self._saved = _ACTIVE
        return set_backend(self._backend)

    def __exit__(self, *exc: Any) -> None:
        global _ACTIVE
        with _LOCK:
            _ACTIVE = self._saved


def kernels_manifest() -> dict[str, Any]:
    """Manifest/telemetry record of the active backend and variants."""
    backend = get_backend()
    return {"backend": backend.name, "variants": backend.describe()}


def _numpy_factory() -> KernelBackend:
    from repro.kernels.numpy_backend import NumpyBackend

    return NumpyBackend()


def _scalar_factory() -> KernelBackend:
    from repro.kernels.scalar_backend import ScalarBackend

    return ScalarBackend()


def _cupy_factory() -> KernelBackend:
    from repro.kernels.cupy_backend import CupyBackend

    return CupyBackend()


register_backend("numpy", _numpy_factory)
register_backend("scalar", _scalar_factory)
register_backend("cupy", _cupy_factory)
