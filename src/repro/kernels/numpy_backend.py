"""Default vectorized kernel backend (NumPy + scipy.sparse run merge).

Everything here is plain ``numpy`` index arithmetic over contiguous
buffers — the layout a CuPy or Cython port can take verbatim.  The two
exactness contracts that shape the implementation:

* ``label_components`` must reproduce the raster union–find numbering
  bit-for-bit.  Runs are emitted in raster order, so the smallest run
  id in a component sits at the component's raster-first pixel; the
  final remap sorts components by that id, which is exactly the
  numbering the per-pixel oracle produces.
* ``clamped_band_sums`` must produce per-candidate costs bit-identical
  to scoring each candidate's band alone.  The elementwise pipeline
  (outer product, sign gather, base gather, clamp) runs fused over the
  whole batch, but each candidate's final reduction is a contiguous
  C-order ``.sum()`` so NumPy's pairwise summation blocks match the
  per-candidate oracle exactly.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backend import KernelBackend
from repro.obs import get_recorder

try:  # scipy is a hard repo dependency (repro.ebeam), but stay graceful
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components
except ImportError:  # pragma: no cover - scipy is a hard repo dep
    coo_matrix = None
    connected_components = None


def _merge_run_graph(n_runs: int, edges_a: np.ndarray, edges_b: np.ndarray) -> np.ndarray:
    """Component id per run for the undirected run-overlap graph."""
    if coo_matrix is None:  # pragma: no cover
        return _merge_run_graph_python(n_runs, edges_a, edges_b)
    graph = coo_matrix(
        (np.ones(edges_a.size, dtype=np.int8), (edges_a, edges_b)),
        shape=(n_runs, n_runs),
    )
    _, comp = connected_components(graph, directed=False)
    return comp


def _merge_run_graph_python(
    n_runs: int, edges_a: np.ndarray, edges_b: np.ndarray
) -> np.ndarray:  # pragma: no cover - exercised only without scipy
    parent = list(range(n_runs))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for a, b in zip(edges_a.tolist(), edges_b.tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    return np.array([find(i) for i in range(n_runs)], dtype=np.intp)


class NumpyBackend(KernelBackend):
    name = "numpy"
    fused_pricing = True
    crop_stitch_field = True

    def label_components(self, mask: np.ndarray) -> tuple[np.ndarray, int]:
        mask = np.ascontiguousarray(mask, dtype=bool)
        ny, nx = mask.shape
        labels = np.zeros((ny, nx), dtype=np.int32)
        if mask.size == 0 or not mask.any():
            return labels, 0
        get_recorder().incr("kernels.label_calls")
        # Run-length encode every row at once.  With a False guard
        # column on each side, +1 transitions mark run starts and -1
        # transitions mark (exclusive) run ends; np.nonzero yields both
        # in raster order, so starts[i]/ends[i] pair up globally.
        padded = np.zeros((ny, nx + 2), dtype=np.int8)
        padded[:, 1:-1] = mask
        step = np.diff(padded, axis=1)
        run_rows, starts = np.nonzero(step == 1)
        ends = np.nonzero(step == -1)[1]
        n_runs = run_rows.size
        # 4-connectivity: a run in row r joins every run in row r-1
        # whose column interval overlaps.  Runs within a row are
        # disjoint and sorted, so with row-composite keys the overlap
        # set is one contiguous slice found by two searchsorted calls
        # over all row pairs at once.
        span = nx + 2
        key_start = run_rows.astype(np.int64) * span + starts
        key_end = run_rows.astype(np.int64) * span + ends
        lo = np.searchsorted(key_end, key_start - span, side="right")
        hi = np.searchsorted(key_start, key_end - span, side="left")
        degree = hi - lo
        cur = np.repeat(np.arange(n_runs), degree)
        prev = np.arange(degree.sum()) - np.repeat(
            np.cumsum(degree) - degree, degree
        ) + np.repeat(lo, degree)
        comp = _merge_run_graph(n_runs, cur, prev)
        # Canonical numbering: components ordered by their smallest run
        # id = raster order of each component's first pixel, matching
        # the per-pixel union–find oracle exactly.
        first_run = np.full(int(comp.max()) + 1, n_runs, dtype=np.int64)
        np.minimum.at(first_run, comp, np.arange(n_runs))
        remap = np.empty(first_run.size, dtype=np.int32)
        remap[np.argsort(first_run, kind="stable")] = np.arange(
            1, first_run.size + 1, dtype=np.int32
        )
        run_label = remap[comp]
        # Paint: runs cover exactly the True pixels in raster order.
        labels[mask] = np.repeat(run_label, ends - starts)
        return labels, int(first_run.size)

    def component_stats(
        self, labels: np.ndarray, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        ys, xs = np.nonzero(labels)
        empty = np.empty(0, dtype=np.int64)
        if ys.size == 0:
            return (empty,) * 6
        lab = labels[ys, xs]
        order = np.argsort(lab, kind="stable")
        lab_sorted = lab[order]
        seg_starts = np.flatnonzero(
            np.diff(lab_sorted, prepend=lab_sorted[0] - 1)
        )
        present = lab_sorted[seg_starts].astype(np.int64)
        counts = np.diff(np.append(seg_starts, lab_sorted.size))
        ys_g, xs_g = ys[order], xs[order]
        # Stable sort keeps raster order inside each label segment, so
        # rows are non-decreasing per segment: min/max are the ends.
        seg_ends = np.append(seg_starts[1:], lab_sorted.size) - 1
        ymin, ymax = ys_g[seg_starts], ys_g[seg_ends]
        xmin = np.minimum.reduceat(xs_g, seg_starts)
        xmax = np.maximum.reduceat(xs_g, seg_starts)
        return present, counts, ymin, ymax, xmin, xmax

    def clamped_band_sums(
        self,
        row_vals: np.ndarray,
        col_vals: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        y0: np.ndarray,
        x0: np.ndarray,
        col_off: np.ndarray,
        sign: np.ndarray,
        base: np.ndarray,
    ) -> np.ndarray:
        n_cand = rows.shape[0]
        out = np.zeros(n_cand, dtype=np.float64)
        if n_cand == 0 or row_vals.size == 0:
            return out
        nx = sign.shape[1]
        # One block per (candidate, row); blocks are candidate-major so
        # block b's row factor is simply row_vals[b].
        block_len = np.repeat(cols, rows)
        row_in_cand = np.arange(row_vals.size) - np.repeat(
            np.cumsum(rows) - rows, rows
        )
        block_flat0 = (np.repeat(y0, rows) + row_in_cand) * nx + np.repeat(x0, rows)
        block_col0 = np.repeat(col_off, rows)
        # Per-element offsets within each block via a segmented arange.
        total = int(block_len.sum())
        within = np.arange(total) - np.repeat(
            np.cumsum(block_len) - block_len, block_len
        )
        flat_idx = np.repeat(block_flat0, block_len) + within
        col_idx = np.repeat(block_col0, block_len) + within
        # Fused Eq. 5: patch = row⊗col, then sign-gather, base-gather,
        # clamp — identical elementwise sequence to the per-candidate
        # loop, over one contiguous buffer.
        vals = np.repeat(row_vals, block_len)
        vals *= col_vals[col_idx]
        vals *= sign.ravel()[flat_idx]
        vals += base.ravel()[flat_idx]
        np.maximum(vals, 0.0, out=vals)
        # Per-candidate pairwise sums over contiguous C-order slices:
        # bit-identical to summing each candidate's (rows, cols) patch.
        counts = rows * cols
        seg = np.cumsum(counts) - counts
        for i in range(n_cand):
            out[i] = vals[seg[i] : seg[i] + counts[i]].sum()
        obs = get_recorder()
        obs.incr("kernels.fused_batches")
        obs.incr("kernels.fused_candidates", n_cand)
        return out

    def describe(self) -> dict[str, str]:
        return {
            "labeling": "run_length_row_merge",
            "pricing": "fused_gather_scatter",
            "stitch_field": "bbox_cropped",
        }
