"""Experimental CuPy backend (gated: requires an installed cupy).

The kernels in :mod:`repro.kernels.numpy_backend` are deliberately
written as contiguous index arithmetic so the same code runs under
CuPy's NumPy-compatible API.  This backend mirrors the fused pricing
pipeline on the GPU and falls back to the NumPy implementations for
labeling (whose run merge is latency- not bandwidth-bound).

Caveat: GPU reductions are not pairwise-identical to NumPy's, so this
backend is *not* oracle-gated bit-identical — it is excluded from the
equivalence gates and exists to keep the seam honest (a second array
module exercising the contract).  Selecting it without cupy installed
raises :class:`~repro.kernels.backend.BackendUnavailable` with an
actionable message rather than an ImportError deep in a hot loop.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backend import BackendUnavailable
from repro.kernels.numpy_backend import NumpyBackend


class CupyBackend(NumpyBackend):
    name = "cupy"
    # Pricing sums on GPU are not pairwise-identical; keep the
    # bit-exact paths for anything consumed by determinism contracts.
    fused_pricing = True
    crop_stitch_field = True
    fused_band_limit = None

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailable(
                "kernel backend 'cupy' requires the cupy package; "
                "install cupy-cuda* or select --kernels numpy"
            ) from exc
        self._cp = cupy

    def clamped_band_sums(  # pragma: no cover - requires a GPU
        self,
        row_vals: np.ndarray,
        col_vals: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        y0: np.ndarray,
        x0: np.ndarray,
        col_off: np.ndarray,
        sign: np.ndarray,
        base: np.ndarray,
    ) -> np.ndarray:
        cp = self._cp
        n_cand = rows.shape[0]
        if n_cand == 0 or row_vals.size == 0:
            return np.zeros(n_cand, dtype=np.float64)
        nx = sign.shape[1]
        rows_d = cp.asarray(rows)
        cols_d = cp.asarray(cols)
        block_len = cp.repeat(cp.asarray(cols), rows_d.get().tolist())
        row_in_cand = cp.arange(row_vals.size) - cp.repeat(
            cp.cumsum(rows_d) - rows_d, rows_d.get().tolist()
        )
        block_flat0 = (
            cp.repeat(cp.asarray(y0), rows_d.get().tolist()) + row_in_cand
        ) * nx + cp.repeat(cp.asarray(x0), rows_d.get().tolist())
        block_col0 = cp.repeat(cp.asarray(col_off), rows_d.get().tolist())
        lens = block_len.get().tolist()
        total = int(block_len.sum().get())
        within = cp.arange(total) - cp.repeat(
            cp.cumsum(block_len) - block_len, lens
        )
        flat_idx = cp.repeat(block_flat0, lens) + within
        col_idx = cp.repeat(block_col0, lens) + within
        vals = cp.repeat(cp.asarray(row_vals), lens)
        vals *= cp.asarray(col_vals)[col_idx]
        vals *= cp.asarray(sign).ravel()[flat_idx]
        vals += cp.asarray(base).ravel()[flat_idx]
        cp.maximum(vals, 0.0, out=vals)
        counts = rows_d * cols_d
        seg = cp.cumsum(counts) - counts
        out = cp.zeros(n_cand, dtype=cp.float64)
        cp.add.reduceat(vals, seg, out=out)
        return cp.asnumpy(out)

    def describe(self) -> dict[str, str]:
        info = super().describe()
        info["pricing"] = "fused_gather_scatter_cupy"
        return info
