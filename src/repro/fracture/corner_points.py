"""Shot corner point extraction (paper §3, Fig. 1).

After RDP simplification, the boundary of the target is walked segment by
segment.  Every point where a shot corner must sit is recorded together
with its *type* — which corner of a rectangular shot it is:

* a horizontal/vertical segment is written by a single shot edge, so its
  two endpoints become corner points, pushed ``L_th/√2`` outward *along*
  the segment so corner rounding does not clip the segment ends;
* a diagonal segment is written by corner rounding, so corner points are
  strung along it every ``L_th`` and pushed ``L_th/√2`` perpendicular to
  it, outside the shape;
* segments shorter than ``L_th`` are skipped — the rounding of the
  neighbouring segments' corner points covers them.

Finally, same-type corner points closer than ``L_th`` are clustered.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class CornerType(enum.Enum):
    """Which corner of a rectangular shot a corner point pins down."""

    BOTTOM_LEFT = "bl"
    BOTTOM_RIGHT = "br"
    TOP_LEFT = "tl"
    TOP_RIGHT = "tr"

    @property
    def is_left(self) -> bool:
        return self in (CornerType.BOTTOM_LEFT, CornerType.TOP_LEFT)

    @property
    def is_bottom(self) -> bool:
        return self in (CornerType.BOTTOM_LEFT, CornerType.BOTTOM_RIGHT)

    @property
    def diagonal_opposite(self) -> "CornerType":
        return {
            CornerType.BOTTOM_LEFT: CornerType.TOP_RIGHT,
            CornerType.TOP_RIGHT: CornerType.BOTTOM_LEFT,
            CornerType.BOTTOM_RIGHT: CornerType.TOP_LEFT,
            CornerType.TOP_LEFT: CornerType.BOTTOM_RIGHT,
        }[self]


def corner_type_from_normal(nx: float, ny: float) -> CornerType:
    """Corner type whose rounding matches an outward normal direction.

    A boundary segment with outward normal in, say, the (-x, +y) quadrant
    is created by the rounding of a *top-left* shot corner.
    """
    vertical = "top" if ny > 0.0 else "bottom"
    horizontal = "left" if nx < 0.0 else "right"
    return {
        ("bottom", "left"): CornerType.BOTTOM_LEFT,
        ("bottom", "right"): CornerType.BOTTOM_RIGHT,
        ("top", "left"): CornerType.TOP_LEFT,
        ("top", "right"): CornerType.TOP_RIGHT,
    }[(vertical, horizontal)]


@dataclass(frozen=True, slots=True)
class ShotCornerPoint:
    """A required shot corner: location + which corner of the shot it is.

    ``segment_index`` records which boundary segment spawned the point
    (−1 when synthetic): clustering only merges points from *different*
    segments, so the evenly spaced series along one diagonal segment is
    never collapsed, while duplicate corners contributed by two segments
    meeting at a convex corner are.
    """

    point: Point
    ctype: CornerType
    segment_index: int = -1

    def distance_to(self, other: "ShotCornerPoint") -> float:
        return self.point.distance_to(other.point)


_AXIS_TOL = 1e-9


def extract_corner_points(polygon: Polygon, lth: float) -> list[ShotCornerPoint]:
    """Walk the simplified boundary and emit typed shot corner points.

    ``polygon`` must already be RDP-simplified (``V_M^s``); ``lth`` is the
    corner-rounding threshold from :func:`repro.ebeam.corner.compute_lth`.
    The polygon is CCW, so the outward normal of a segment with direction
    ``d`` is ``(d.y, -d.x)``.
    """
    if lth <= 0.0:
        raise ValueError("lth must be positive")
    shift = lth / math.sqrt(2.0)
    points: list[ShotCornerPoint] = []
    for segment_index, (vk, vk1) in enumerate(polygon.edges()):
        seg = vk1 - vk
        length = seg.norm()
        if length < lth:
            continue  # neighbouring corner points approximately cover it
        d = seg * (1.0 / length)
        n = Point(d.y, -d.x)  # outward normal (interior is on the left)
        if abs(d.x) <= _AXIS_TOL or abs(d.y) <= _AXIS_TOL:
            new_points = _axis_segment_points(vk, vk1, d, n, shift)
        else:
            new_points = _diagonal_segment_points(vk, vk1, d, n, length, lth, shift)
        points.extend(
            ShotCornerPoint(p.point, p.ctype, segment_index) for p in new_points
        )
    return cluster_corner_points(points, lth)


def _axis_segment_points(
    vk: Point, vk1: Point, d: Point, n: Point, shift: float
) -> list[ShotCornerPoint]:
    """Endpoints of an axis-parallel segment, pushed outward along it."""
    p_start = vk - d * shift
    p_end = vk1 + d * shift
    out: list[ShotCornerPoint] = []
    if abs(d.x) <= _AXIS_TOL:  # vertical segment: left/right from the normal
        horizontal = "left" if n.x < 0.0 else "right"
        for p in (p_start, p_end):
            vertical = "bottom" if p.y == min(p_start.y, p_end.y) else "top"
            out.append(ShotCornerPoint(p, _type_of(vertical, horizontal)))
    else:  # horizontal segment: top/bottom from the normal
        vertical = "bottom" if n.y < 0.0 else "top"
        for p in (p_start, p_end):
            horizontal = "left" if p.x == min(p_start.x, p_end.x) else "right"
            out.append(ShotCornerPoint(p, _type_of(vertical, horizontal)))
    return out


def _diagonal_segment_points(
    vk: Point,
    vk1: Point,
    d: Point,
    n: Point,
    length: float,
    lth: float,
    shift: float,
) -> list[ShotCornerPoint]:
    """Corner points strung along a diagonal segment every ~1.15 L_th.

    The spacing stays safely above the clustering threshold (1.05 L_th)
    so a series is never collapsed; refinement absorbs the slightly
    sparser corner coverage."""
    ctype = corner_type_from_normal(n.x, n.y)
    count = max(1, int(length // (1.15 * lth)))
    spacing = length / count
    out = []
    for i in range(count):
        t = (i + 0.5) * spacing
        p = vk + d * t + n * shift
        out.append(ShotCornerPoint(p, ctype))
    return out


def _type_of(vertical: str, horizontal: str) -> CornerType:
    return {
        ("bottom", "left"): CornerType.BOTTOM_LEFT,
        ("bottom", "right"): CornerType.BOTTOM_RIGHT,
        ("top", "left"): CornerType.TOP_LEFT,
        ("top", "right"): CornerType.TOP_RIGHT,
    }[(vertical, horizontal)]


def cluster_corner_points(
    points: list[ShotCornerPoint], lth: float
) -> list[ShotCornerPoint]:
    """Merge same-type corner points closer than ``L_th`` (paper §3).

    Single-link clustering per corner type; each cluster is replaced by
    its centroid.  Keeps the corner point set — the graph's vertex set —
    small and free of near-duplicates.  Points spawned by the *same*
    boundary segment never merge: the evenly spaced series along one
    diagonal segment is intentional, not duplication.
    """
    by_type: dict[CornerType, list[ShotCornerPoint]] = {}
    for scp in points:
        by_type.setdefault(scp.ctype, []).append(scp)
    merged: list[ShotCornerPoint] = []
    for ctype, group in by_type.items():
        n = len(group)
        parent = list(range(n))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        # Two same-type points generated at a common convex corner by the
        # two incident axis segments sit exactly L_th apart (shift·√2), so
        # the threshold needs a little slack above L_th.
        threshold = lth * 1.05
        for i in range(n):
            for j in range(i + 1, n):
                same_segment = (
                    group[i].segment_index >= 0
                    and group[i].segment_index == group[j].segment_index
                )
                if same_segment:
                    continue
                if group[i].distance_to(group[j]) <= threshold:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[max(ri, rj)] = min(ri, rj)
        clusters: dict[int, list[Point]] = {}
        for i in range(n):
            clusters.setdefault(find(i), []).append(group[i].point)
        for members in clusters.values():
            centroid = Point(
                sum(p.x for p in members) / len(members),
                sum(p.y for p in members) / len(members),
            )
            merged.append(ShotCornerPoint(centroid, ctype))
    merged.sort(key=lambda scp: (scp.point.x, scp.point.y, scp.ctype.value))
    return merged
