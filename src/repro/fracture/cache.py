"""Content-addressed fracture result cache — one cache, three layers.

The service's warm result cache (PR 6) proved the economics: batch MDP
traffic resubmits near-identical work, and a verbatim resubmission
should cost one hash.  This module promotes that cache out of
:mod:`repro.service` into the library so the same object (and the same
key format) backs

* :class:`~repro.mask.mdp.MdpPipeline` — repeated clips inside one
  batch run hit across shapes,
* the hierarchy layer (:mod:`repro.mask.hierarchy`) — the thousandth
  placement of a cell costs a lookup plus a translation,
* the windowed/tiled executor — re-runs of a windowed layout reuse the
  finished result wholesale, and
* the service's :class:`~repro.service.caches.WarmCaches` — which now
  holds a :class:`FractureCache` under its historical ``ResultCache``
  name.

**Key.**  :func:`canonical_fingerprint` is the single fingerprint
function for every layer (the service delegates to it), hashing the
version-tagged JSON of (clip vertices, spec, method, window).
:func:`fingerprint_polygon` feeds it *canonical* geometry — the
translation-normalized, ordering-canonical vertex loop from
:func:`repro.geometry.polygon.canonical_form` — so a clip and its
translate share one entry.

**Frames.**  Entries remember the frame offset the stored shots were
produced in (``payload["frame"]``, the canonical→stored translation).
A hit for geometry at a different offset translates the stored shots by
the offset *difference*; translation is exact for exactly representable
coordinates, so instantiated shots are bit-identical to fracturing in
place — and a verbatim resubmission (offset difference zero) replays the
stored shots untouched.

**Reports.**  A cached entry carries the feasibility digest (failing
pixel counts, Eq. 5 cost, undersize shots), not the per-pixel arrays —
enough to rebuild a :class:`~repro.mask.constraints.FailureReport` with
exact counts via its count overrides, without re-verification.

**Persistence.**  With ``persist_dir`` set, every entry is also written
as ``<fingerprint>.json`` (atomic rename), and memory misses fall
through to disk; a corrupt or torn file reads as a miss *once* and is
quarantined (renamed ``<fingerprint>.json.bad``, counted by
``corrupt_quarantined``) so the slot can be refilled.  A warm daemon
restart — or a second CLI run pointed at the same ``--fracture-cache``
directory — starts with the whole previous run's results.  With
``min_free_bytes`` set, writes that would breach the free-space floor
first evict old entries LRU-by-mtime (:func:`evict_lru`) and are
skipped when the floor still cannot be met.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.geometry.polygon import Polygon, canonical_form
from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport, FractureSpec
from repro.mask.io import rect_from_list, rect_to_list, spec_to_dict
from repro.obs.resources import disk_free_bytes


def evict_lru(
    directory: str | Path,
    floor_bytes: int,
    pattern: str = "*.json",
) -> int:
    """Evict files LRU-by-mtime until free space clears ``floor_bytes``.

    Returns the number of files removed.  Unlinked bytes are credited
    against the deficit rather than re-queried, so eviction converges
    deterministically even when free space is shimmed (chaos tests) or
    statvfs lags the unlink.  When everything matching ``pattern`` is
    gone and the floor still cannot be met, the caller decides whether
    to fail loudly (journal/result writes) or skip quietly (best-effort
    cache puts).
    """
    directory = Path(directory)
    free = disk_free_bytes(directory)
    if free is None or free >= floor_bytes:
        return 0
    deficit = floor_bytes - free
    try:
        entries = sorted(
            directory.glob(pattern), key=lambda p: p.stat().st_mtime
        )
    except OSError:
        return 0
    removed = 0
    reclaimed = 0
    for path in entries:
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            continue
        removed += 1
        reclaimed += size
        if reclaimed >= deficit:
            break
    return removed

__all__ = [
    "FractureCache",
    "canonical_fingerprint",
    "evict_lru",
    "fingerprint_polygon",
    "result_to_payload",
    "result_from_payload",
    "translate_shots",
]


def _spec_dict(spec: FractureSpec | dict[str, float]) -> dict[str, float]:
    if isinstance(spec, FractureSpec):
        return spec_to_dict(spec)
    return spec


def canonical_fingerprint(
    clip_vertices: list[list[float]] | tuple[tuple[float, float], ...],
    spec: FractureSpec | dict[str, float],
    method: str,
    window_nm: float | None,
) -> str:
    """Content address of one clip-level fracture request.

    Everything that can change the shot list is in the key; everything
    that cannot (priority, telemetry, worker count — the tiled merge is
    worker-count-invariant) is out, so the cache hits exactly when a
    recomputation would be bit-identical.  This is the only fingerprint
    function in the tree — the service's ``fingerprint_request`` is an
    alias — so library and service hashes can never drift.
    """
    spec = _spec_dict(spec)
    # `c + 0.0` coerces integer coordinates to floats and collapses -0.0
    # to 0.0, so 60 vs 60.0 (or a mirror-produced negative zero) cannot
    # split what is numerically one geometry into two hashes.
    payload = {
        "v": 1,
        "clip": [[c + 0.0 for c in v] for v in clip_vertices],
        "spec": {k: spec[k] for k in sorted(spec)},
        "method": method,
        "window_nm": window_nm + 0.0 if window_nm is not None else None,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint_polygon(
    polygon: Polygon,
    spec: FractureSpec | dict[str, float],
    method: str,
    window_nm: float | None = None,
) -> tuple[str, tuple[float, float]]:
    """Placement-invariant fingerprint of a target polygon.

    Returns ``(fingerprint, offset)``: the fingerprint of the polygon's
    canonical (translation-normalized) vertex loop, plus the offset that
    places the canonical loop back at the polygon (``polygon =
    canonical + offset``).  Two exact translates of the same geometry —
    including the same loop entered at a different start vertex or
    winding — share the fingerprint and differ only in offset.
    """
    vertices, offset = canonical_form(polygon)
    return canonical_fingerprint(vertices, spec, method, window_nm), offset


# -- payload conversion ------------------------------------------------------


def result_to_payload(
    result: "FractureResult",  # noqa: F821 — lazy import, see below
    frame: tuple[float, float] = (0.0, 0.0),
) -> dict[str, Any]:
    """JSON-able cache entry for a finished fracture result.

    ``frame`` is the canonical→stored offset: the translation that maps
    the canonical geometry onto the instance these shots were produced
    for.  Flat keys match the service's historical ``result.json``
    payload; ``frame`` and the ``report`` digest are additive.
    """
    report = result.report
    return {
        "shots": [rect_to_list(s) for s in result.shots],
        "shot_count": result.shot_count,
        "feasible": result.feasible,
        "failing_px": report.total_failing,
        "runtime_s": result.runtime_s,
        "extra": dict(result.extra),
        "frame": [frame[0], frame[1]],
        "method": result.method,
        "report": {
            "cost": report.cost,
            "count_on": report.count_on,
            "count_off": report.count_off,
            "undersize_shots": report.undersize_shots,
        },
    }


_EMPTY_MASK = np.zeros((0, 0), dtype=bool)


def _digest_report(payload: dict[str, Any]) -> FailureReport:
    """Rebuild a report from the cached digest (exact counts, no arrays)."""
    digest = payload.get("report")
    if digest is None:
        # Pre-digest service payload: only the aggregate count survives.
        failing = int(payload.get("failing_px", 0))
        return FailureReport(
            fail_on=_EMPTY_MASK,
            fail_off=_EMPTY_MASK,
            cost=0.0,
            undersize_shots=0,
            _count_on=failing,
            _count_off=0,
        )
    return FailureReport(
        fail_on=_EMPTY_MASK,
        fail_off=_EMPTY_MASK,
        cost=float(digest["cost"]),
        undersize_shots=int(digest["undersize_shots"]),
        _count_on=int(digest["count_on"]),
        _count_off=int(digest["count_off"]),
    )


def translate_shots(
    shots: list[Rect], dx: float, dy: float
) -> list[Rect]:
    """Shots shifted by an exact translation (identity short-circuits)."""
    if dx == 0.0 and dy == 0.0:
        return list(shots)
    return [
        Rect(s.xbl + dx, s.ybl + dy, s.xtr + dx, s.ytr + dy) for s in shots
    ]


def result_from_payload(
    payload: dict[str, Any],
    shape_name: str,
    frame: tuple[float, float] = (0.0, 0.0),
    lookup_s: float = 0.0,
) -> "FractureResult":  # noqa: F821
    """Instantiate a cached entry as a :class:`FractureResult`.

    ``frame`` is the canonical→requested offset; stored shots are
    translated by the difference from the stored frame (zero for a
    verbatim resubmission, so the replay is untouched).  ``runtime_s``
    is the lookup time — the honest cost of serving this instance — and
    the original fracture time survives as ``extra["cached_runtime_s"]``.
    """
    from repro.fracture.base import FractureResult

    stored = payload.get("frame", [0.0, 0.0])
    dx = frame[0] - float(stored[0])
    dy = frame[1] - float(stored[1])
    shots = translate_shots(
        [rect_from_list(v) for v in payload["shots"]], dx, dy
    )
    extra = dict(payload.get("extra", {}))
    extra["cache_hit"] = True
    extra["cached_runtime_s"] = float(payload.get("runtime_s", 0.0))
    return FractureResult(
        method=payload.get("method", "cached"),
        shape_name=shape_name,
        shots=shots,
        runtime_s=lookup_s,
        report=_digest_report(payload),
        extra=extra,
    )


# -- the cache ---------------------------------------------------------------


class FractureCache:
    """Bounded in-memory map: request fingerprint → finished result.

    Entries store plain JSON-able payloads (shot coordinate lists plus
    the feasibility digest), not live objects, so a hit can be served
    straight into ``result.json`` without touching numpy.  FIFO-ish
    bound: when full, the oldest insertion is evicted (dict preserves
    insertion order).  Thread-safe — job threads read while the next
    job's thread writes.

    With ``persist_dir`` the cache is also content-addressed on disk
    (one ``<fingerprint>.json`` per entry, written atomically); memory
    misses fall through to disk, and disk hits are pulled back into
    memory.  Unreadable files are treated as misses, never as errors.
    """

    def __init__(
        self,
        max_entries: int = 256,
        persist_dir: str | Path | None = None,
        min_free_bytes: int | None = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if min_free_bytes is not None and min_free_bytes < 0:
            raise ValueError("min_free_bytes must be non-negative")
        self.max_entries = max_entries
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
        #: Disk floor: before persisting an entry, free space below this
        #: first triggers LRU-by-mtime eviction of old entries, and if
        #: the floor still cannot be met the write is skipped (persistence
        #: is best effort; the in-memory entry stands).
        self.min_free_bytes = min_free_bytes
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt_quarantined = 0
        self.disk_evictions = 0
        self.disk_write_skips = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        # An *empty* cache must not read as "no cache": a warm disk store
        # can back a cold memory map, and `if cache:` call sites would
        # silently bypass it.
        return True

    # -- raw fingerprint interface (service-compatible) ----------------------

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self.hits += 1
                return entry
            entry = self._read_disk(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self.disk_hits += 1
            self._insert(fingerprint, entry)
            return entry

    def put(self, fingerprint: str, payload: dict[str, Any]) -> None:
        with self._lock:
            if fingerprint not in self._entries:
                self._insert(fingerprint, payload)
            self._write_disk(fingerprint, payload)

    def clear(self) -> None:
        """Drop the in-memory entries (the disk store is left intact)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            stats = {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
            if self.persist_dir is not None:
                stats["disk_hits"] = self.disk_hits
                stats["disk_entries"] = sum(
                    1 for _ in self.persist_dir.glob("*.json")
                )
                stats["corrupt_quarantined"] = self.corrupt_quarantined
                stats["disk_evictions"] = self.disk_evictions
                stats["disk_write_skips"] = self.disk_write_skips
            return stats

    # -- result-level interface ----------------------------------------------

    def get_result(
        self,
        polygon: Polygon,
        spec: FractureSpec | dict[str, float],
        method: str,
        window_nm: float | None = None,
        shape_name: str = "",
    ) -> "FractureResult | None":  # noqa: F821
        """Look up a finished result for ``polygon``, placement-invariant.

        On a hit the stored template shots are translated onto the
        polygon's frame; returns ``None`` on a miss.
        """
        start = time.perf_counter()
        fingerprint, offset = fingerprint_polygon(
            polygon, spec, method, window_nm
        )
        payload = self.get(fingerprint)
        if payload is None:
            return None
        return result_from_payload(
            payload,
            shape_name=shape_name,
            frame=offset,
            lookup_s=time.perf_counter() - start,
        )

    def put_result(
        self,
        polygon: Polygon,
        spec: FractureSpec | dict[str, float],
        result: "FractureResult",  # noqa: F821
        window_nm: float | None = None,
        method: str | None = None,
    ) -> str:
        """Store a freshly fractured result keyed by canonical geometry.

        ``method`` is the cache-key method name (the registry name, when
        it differs from the class's display name); defaults to
        ``result.method``.
        """
        fingerprint, offset = fingerprint_polygon(
            polygon, spec, method or result.method, window_nm
        )
        self.put(fingerprint, result_to_payload(result, frame=offset))
        return fingerprint

    # -- disk store -----------------------------------------------------------

    def _insert(self, fingerprint: str, payload: dict[str, Any]) -> None:
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[fingerprint] = payload

    def _disk_path(self, fingerprint: str) -> Path:
        assert self.persist_dir is not None
        return self.persist_dir / f"{fingerprint}.json"

    def _read_disk(self, fingerprint: str) -> dict[str, Any] | None:
        if self.persist_dir is None:
            return None
        path = self._disk_path(fingerprint)
        try:
            raw = path.read_bytes()
        except OSError:
            return None  # genuinely absent (or unreadable): a plain miss
        try:
            # Decode inside the guard: flipped bytes are usually invalid
            # UTF-8, and UnicodeDecodeError is a ValueError too.
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict) or "shots" not in payload:
                raise ValueError("not a cache entry payload")
        except ValueError:
            # The file exists but its bytes are wrong — torn write from a
            # killed process, bit rot, or tampering.  Treating it as a
            # miss forever would re-fracture (and fail to re-persist, the
            # path being occupied) on every lookup; quarantine it instead
            # so the slot frees up and the corpse stays inspectable.
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(path.suffix + ".bad"))
            self.corrupt_quarantined += 1
        except OSError:
            pass

    def _write_disk(self, fingerprint: str, payload: dict[str, Any]) -> None:
        if self.persist_dir is None:
            return
        path = self._disk_path(fingerprint)
        if path.exists():
            return
        blob = json.dumps(payload)
        if self.min_free_bytes is not None:
            free = disk_free_bytes(self.persist_dir)
            if free is not None and free - len(blob) < self.min_free_bytes:
                self.disk_evictions += evict_lru(
                    self.persist_dir, self.min_free_bytes + len(blob)
                )
                free = disk_free_bytes(self.persist_dir)
                if free is not None and free - len(blob) < self.min_free_bytes:
                    # The floor cannot be met even with an empty store;
                    # skip the write rather than breach it.  (Journal and
                    # result writes fail *loudly* in this state — cache
                    # persistence alone is best effort.)
                    self.disk_write_skips += 1
                    return
        tmp = path.with_name(f".{fingerprint}.{os.getpid()}.tmp")
        try:
            tmp.write_text(blob)
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort; the in-memory entry stands.
            tmp.unlink(missing_ok=True)
