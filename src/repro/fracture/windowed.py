"""Windowed fracturing: divide-and-stitch for very large shapes.

The paper fractures clip-sized shapes (hundreds of nanometres).  A
production flow meets individual polygons spanning many micrometres —
too large for the O(|C|²) compatibility graph and the full-grid
refinement.  :class:`WindowedFracturer` wraps any inner fracturer with
the standard MDP scaling trick:

1. split the shape into vertical slabs of ``window_nm``, each padded by
   a *halo* wider than the blur reach, so the sub-problem sees the dose
   context of its neighbours' territory;
2. fracture every slab independently (the slab boundary looks like a
   real shape edge to the inner method);
3. keep each shot with the slab that owns its centre, then run a short
   *global* stitching refinement to repair the seams where neighbouring
   slabs' shots meet.
"""

from __future__ import annotations

import numpy as np

from repro.fracture.base import Fracturer
from repro.fracture.refine import RefineParams, refine
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


class WindowedFracturer(Fracturer):
    """Slab-decomposed fracturing around any inner method."""

    name = "WINDOWED"

    def __init__(
        self,
        inner: Fracturer,
        window_nm: float = 300.0,
        stitch_params: RefineParams = RefineParams(nmax=200, nh=3),
    ):
        if window_nm <= 0.0:
            raise ValueError("window size must be positive")
        self.inner = inner
        self.window_nm = window_nm
        self.stitch_params = stitch_params
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        bbox = shape.polygon.bounding_box()
        if bbox.width <= self.window_nm * 1.5:
            # Fits in one window (with slack): no decomposition needed.
            shots = self.inner.fracture_shots(shape, spec)
            self._last_extra = {"slabs": 1, "stitch_iterations": 0}
            return shots

        halo = spec.grid_margin
        slab_edges = self._slab_edges(bbox, spec)
        collected: list[Rect] = []
        slabs_used = 0
        for x_lo, x_hi in slab_edges:
            sub_shape = self._slab_shape(shape, x_lo - halo, x_hi + halo)
            if sub_shape is None:
                continue
            slabs_used += 1
            for shot in self.inner.fracture_shots(sub_shape, spec):
                if x_lo <= shot.center.x < x_hi:
                    collected.append(shot)
        stitched, trace = refine(shape, spec, collected, self.stitch_params)
        self._last_extra = {
            "slabs": slabs_used,
            "pre_stitch_shots": len(collected),
            "stitch_iterations": trace.iterations,
            "stitch_converged": trace.converged,
        }
        return stitched

    def _slab_edges(
        self, bbox: Rect, spec: FractureSpec
    ) -> list[tuple[float, float]]:
        count = max(1, int(np.ceil(bbox.width / self.window_nm)))
        edges = np.linspace(bbox.xbl, bbox.xtr, count + 1)
        slabs = list(zip(edges[:-1], edges[1:]))
        # Ownership is half-open [x_lo, x_hi); stretch the outer edges so
        # boundary-hugging shot centres are never orphaned.
        first_lo, first_hi = slabs[0]
        slabs[0] = (first_lo - 10.0 * spec.grid_margin, first_hi)
        last_lo, last_hi = slabs[-1]
        slabs[-1] = (last_lo, last_hi + 10.0 * spec.grid_margin)
        return slabs

    def _slab_shape(
        self, shape: MaskShape, x_lo: float, x_hi: float
    ) -> MaskShape | None:
        """Sub-shape of everything within [x_lo, x_hi] (absolute coords)."""
        grid = shape.grid
        ix_lo = max(0, int(np.floor((x_lo - grid.x0) / grid.pitch)))
        ix_hi = min(grid.nx, int(np.ceil((x_hi - grid.x0) / grid.pitch)))
        if ix_hi <= ix_lo:
            return None
        sub_mask = shape.inside[:, ix_lo:ix_hi]
        if not sub_mask.any():
            return None
        sub_grid = PixelGrid(
            grid.x0 + ix_lo * grid.pitch,
            grid.y0,
            grid.pitch,
            ix_hi - ix_lo,
            grid.ny,
        )
        # The slab may cut the polygon into several pieces; the largest
        # is fractured here, the rest belong to neighbouring slabs whose
        # halo sees them whole.
        from repro.bench.shapes import _largest_component

        biggest = _largest_component(sub_mask)
        return MaskShape.from_mask(biggest, sub_grid, name=f"{shape.name}@{ix_lo}")
