"""Tiled fracturing: 2-D halo-tile decomposition for very large shapes.

The paper fractures clip-sized shapes (hundreds of nanometres).  A
production flow meets individual polygons spanning many micrometres —
too large for the O(|C|²) compatibility graph and the full-grid
refinement.  :class:`WindowedFracturer` wraps any inner fracturer with
the tiled execution architecture of :mod:`repro.fracture.tiling`:

1. split the mask plane into a deterministic 2-D grid of tiles with
   blur-derived halos; every connected component owning pixels in a
   tile's core is extracted as its own sub-problem (none is dropped);
2. fracture every tile independently — serially or on a process pool
   (``workers``) — keeping each shot with the tile that owns its centre
   under a half-open rule, so the merged shot list is identical for any
   worker count;
3. repair the tile boundaries with a *seam-band* stitch: only shots
   within one halo width of a seam move (everything else is frozen
   background dose), only pixels inside the seam bands are scored, and
   any mutation whose dose reach would leave the bands is forbidden —
   so the stitch costs ~O(seam area), not O(chip area).

Tile execution is fault-tolerant (:mod:`repro.fracture.runtime`): a
worker crash, hang or infeasible tile is retried with backoff, the
pool is respawned when it breaks, a tile that exhausts its retries
degrades to the deterministic partition baseline (flagged, never
fatal), and an optional JSONL checkpoint journal lets an interrupted
run resume bit-identically (``--checkpoint`` / ``--resume``).

:class:`LegacyWindowedFracturer` preserves the pre-tiling behaviour —
serial 1-D slabs and a full-grid stitch over the whole shape — verbatim
as the benchmark baseline (``benchmarks/bench_windowed.py`` measures the
refactor against it).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.fracture.base import Fracturer
from repro.fracture.refine import RefineParams, refine
from repro.fracture.runtime import (
    CheckpointJournal,
    RuntimePolicy,
    fracture_tile,
    run_tiles,
)
from repro.fracture.tiling import (
    Tile,
    TilePlan,
    extract_tile_shapes,
    halo_nm,
    ownership_stretch,
    plan_tiles,
    seam_band_masks,
    split_seam_shots,
)
from repro.geometry.labeling import largest_component
from repro.geometry.raster import PixelGrid
from repro.kernels import kernels_manifest
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec, check_solution
from repro.mask.shape import MaskShape
from repro.obs import get_recorder


class WindowedFracturer(Fracturer):
    """Tile-decomposed fracturing around any inner method.

    ``window_nm`` is the tile size along both axes; ``workers`` the
    process-pool width of the tile executor (1 = run tiles inline);
    ``stitch_params`` the iteration budget of the seam-band stitch;
    ``full_repair`` enables a bounded full-shape repair refinement as a
    safety net when the stitched solution still has failing pixels
    outside the seam bands (rare; the final verdict always comes from
    the independent :meth:`Fracturer.fracture` check either way).

    ``runtime`` configures the fault-tolerant execution layer
    (:mod:`repro.fracture.runtime`): per-tile retry/backoff, per-tile
    deadlines, pool recovery, the partition-baseline degradation
    ladder, fault injection and the JSONL checkpoint journal behind
    the CLI's ``--checkpoint``/``--resume``.  ``None`` means the
    default :class:`~repro.fracture.runtime.RetryPolicy` with no
    checkpointing and no injected faults.
    """

    name = "WINDOWED"

    def __init__(
        self,
        inner: Fracturer,
        window_nm: float = 300.0,
        stitch_params: RefineParams | None = None,
        workers: int = 1,
        full_repair: bool = True,
        runtime: RuntimePolicy | None = None,
    ):
        if window_nm <= 0.0:
            raise ValueError("window size must be positive")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.inner = inner
        self.window_nm = window_nm
        # None-sentinel construction: a shared default instance would be
        # one object across every WindowedFracturer (see the dataclass-
        # default audit in DESIGN.md).
        self.stitch_params = (
            stitch_params if stitch_params is not None
            else RefineParams(nmax=200, nh=3)
        )
        self.workers = workers
        self.full_repair = full_repair
        self.runtime = runtime if runtime is not None else RuntimePolicy()
        self._last_extra: dict = {}
        # Cache keys match the service's scheme: the *inner* method name
        # plus the window size — a tiled result only substitutes for an
        # identically windowed run of the same inner method.
        self.cache_window_nm = window_nm
        self.cache_method = getattr(inner, "cache_method", None) or inner.name

    # -- execution ----------------------------------------------------------

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        obs = get_recorder()
        plan = plan_tiles(shape, spec, self.window_nm)
        if len(plan) == 1:
            # Fits in one tile (with slack): bit-identical to the inner
            # method — no decomposition, no stitch.
            shots = self.inner.fracture_shots(shape, spec)
            self._last_extra = {
                "tiles": 1, "tiles_x": 1, "tiles_y": 1,
                "stitch_iterations": 0,
            }
            return shots
        with obs.span(
            "tiled", tiles=len(plan), tiles_x=plan.tiles_x,
            tiles_y=plan.tiles_y, workers=self.workers,
        ):
            jobs = self._plan_jobs(shape, spec, plan)
            collected, exec_info = self._execute(shape, spec, plan, jobs)
            obs.incr("windowed.tiles", len(plan))
            obs.incr("windowed.tiles_used", exec_info["tiles_used"])
            stitched, stitch_info = self._stitch(shape, spec, plan, collected)
        self._last_extra = {
            "tiles": len(plan),
            "tiles_x": plan.tiles_x,
            "tiles_y": plan.tiles_y,
            "workers": self.workers,
            "pre_stitch_shots": len(collected),
            **exec_info,
            **stitch_info,
        }
        return stitched

    def _plan_jobs(
        self, shape: MaskShape, spec: FractureSpec, plan: TilePlan
    ) -> list[tuple[Tile, list[MaskShape]]]:
        """Extract every tile's owned sub-shapes (row-major tile order).

        Sub-shapes are cropped to their component's bounding box padded
        by the halo width, so each tile sub-problem pays for its own
        geometry, not the whole tile window.
        """
        jobs: list[tuple[Tile, list[MaskShape]]] = []
        for tile in plan.tiles:
            subs = extract_tile_shapes(shape, tile, pad_nm=halo_nm(spec))
            if subs:
                jobs.append((tile, subs))
        return jobs

    def _execute(
        self,
        shape: MaskShape,
        spec: FractureSpec,
        plan: TilePlan,
        jobs: list[tuple[Tile, list[MaskShape]]],
    ) -> tuple[list[Rect], dict]:
        """Fracture all tile jobs and merge owned shots in tile order.

        Execution goes through the fault-tolerant runtime layer
        (:func:`repro.fracture.runtime.run_tiles`): per-tile retries,
        deadlines, pool recovery, fallback degradation and the
        checkpoint journal all live there.  The merge is deterministic
        regardless of worker count, retries or resume: outcomes come
        back in row-major tile order and each tile's output depends
        only on its own sub-shapes.
        """
        obs = get_recorder()
        # The run's trace context: explicit policy wins, else whatever
        # the installed recorder's manifest carries (the CLI/daemon
        # paths both stamp it there).
        trace = self.runtime.trace or getattr(obs, "trace", None)
        journal = None
        if self.runtime.checkpoint_dir is not None:
            journal = CheckpointJournal.open(
                Path(self.runtime.checkpoint_dir) / f"{shape.name}.tiles.jsonl",
                run_key=self._run_key(shape, spec, plan, jobs),
                resume=self.runtime.resume,
                min_free_bytes=self.runtime.disk_floor_bytes,
                trace_id=(trace or {}).get("trace_id"),
            )
        outcomes, stats = run_tiles(
            jobs,
            inner=self.inner,
            spec=spec,
            workers=self.workers,
            retry=self.runtime.retry,
            fault_plan=self.runtime.fault_plan,
            journal=journal,
            telemetry_enabled=obs.enabled,
            heartbeat_s=self.runtime.heartbeat_s,
            stall_after_s=self.runtime.stall_after_s,
            stop_check=self.runtime.stop_check,
            trace=trace,
        )
        collected: list[Rect] = []
        for outcome in outcomes:
            collected.extend(outcome.shots)
        fallback_tiles = [o.tile_name for o in outcomes if o.fallback]
        retried = {o.tile_name: o.attempts for o in outcomes if o.attempts > 1}
        info = {
            "tiles_used": len(jobs),
            "tile_sub_shapes": sum(len(subs) for _, subs in jobs),
            "fallback_tiles": fallback_tiles,
            **stats.as_dict(),
        }
        manifest = getattr(obs, "manifest", None)
        if manifest is not None:
            entries = manifest.setdefault("fault_tolerance", [])
            entries.append({
                "shape": shape.name,
                "tiles": len(jobs),
                "fallback_tiles": fallback_tiles,
                "retried": retried,
                "replayed": [o.tile_name for o in outcomes if o.replayed],
                **stats.as_dict(),
            })
        return collected, info

    def _run_key(
        self,
        shape: MaskShape,
        spec: FractureSpec,
        plan: TilePlan,
        jobs: list[tuple[Tile, list[MaskShape]]],
    ) -> dict:
        """Checkpoint-compatibility key: same key ⇒ same tile results."""
        return {
            "shape": shape.name,
            "inner": self.inner.name,
            "window_nm": self.window_nm,
            "spec": [spec.sigma, spec.gamma, spec.pitch, spec.rho, spec.lmin],
            "tiles_x": plan.tiles_x,
            "tiles_y": plan.tiles_y,
            "jobs": [
                [tile.name, len(subs), list(tile.core.as_tuple())]
                for tile, subs in jobs
            ],
        }

    # -- stitching ----------------------------------------------------------

    def _stitch(
        self,
        shape: MaskShape,
        spec: FractureSpec,
        plan: TilePlan,
        collected: list[Rect],
    ) -> tuple[list[Rect], dict]:
        """Seam-band repair of the merged tile solutions.

        Shots within one halo width of an interior tile boundary are
        refined; the rest contribute frozen background dose.  Cost and
        failures are evaluated only inside the seam-band active mask,
        and mutations whose dose reach would leave the mask are
        forbidden, so the priced candidate count scales with seam area
        (tracked by the ``windowed.stitch_candidates_priced`` counter).
        """
        obs = get_recorder()
        active_mask, movable_nm = seam_band_masks(shape, plan, spec)
        movable, frozen = split_seam_shots(collected, plan, movable_nm)
        obs.incr("windowed.seam_shots", len(movable))
        obs.incr("windowed.frozen_shots", len(frozen))
        # Stitch cost-field work scales with the seam-band bounding box
        # (kernel backends with crop_stitch_field), not the grid; record
        # both areas so the scaling is visible in traces and manifests.
        seam_px = int(np.count_nonzero(active_mask))
        grid_px = int(active_mask.size)
        obs.gauge("windowed.seam_px", float(seam_px))
        obs.gauge("windowed.grid_px", float(grid_px))
        info: dict = {
            "seam_shots": len(movable),
            "frozen_shots": len(frozen),
            "seam_px": seam_px,
            "grid_px": grid_px,
            "kernels": kernels_manifest(),
            "stitch_iterations": 0,
            "stitch_converged": True,
            "stitch_candidates_priced": 0,
            "full_repair": False,
        }
        if not movable:
            return list(collected), info
        counters = getattr(obs, "counters", {})
        priced_before = counters.get("refine.candidates_priced", 0)
        with obs.span("stitch", seam_shots=len(movable)):
            refined, trace = refine(
                shape, spec, movable, self.stitch_params,
                background=frozen, active_mask=active_mask,
            )
        priced = counters.get("refine.candidates_priced", 0) - priced_before
        obs.incr("windowed.stitch_candidates_priced", priced)
        stitched = frozen + refined
        info.update(
            stitch_iterations=trace.iterations,
            stitch_converged=trace.converged,
            stitch_candidates_priced=int(priced),
        )
        if self.full_repair and self.stitch_params.nmax > 0:
            report = check_solution(stitched, shape, spec)
            if report.total_failing > 0:
                # Failures outside the stitch's jurisdiction: the
                # mutation guard keeps the stitch from damaging anything
                # beyond the bands, so what remains is either in-band
                # residue the budget didn't clear or tile-interior
                # residue the inner method left behind.  One bounded
                # full-shape refinement goes after both.
                obs.incr("windowed.full_repairs")
                with obs.span("stitch_full_repair"):
                    stitched, repair_trace = refine(
                        shape, spec, stitched, self.stitch_params
                    )
                info["full_repair"] = True
                info["full_repair_iterations"] = repair_trace.iterations
        return stitched, info


# Back-compat alias: the per-tile work moved to the runtime layer so
# the pool workers and the fault machinery share one implementation.
_fracture_tile = fracture_tile


class LegacyWindowedFracturer(Fracturer):
    """The pre-tiling windowed fracturer, preserved as a baseline.

    Serial 1-D vertical slabs, largest-component-only slab extraction
    (the historical dropped-component behaviour) and a *full-grid*
    stitch refinement over the whole shape with every shot movable.
    ``benchmarks/bench_windowed.py`` measures the tiled executor against
    exactly this code path; do not "fix" it.  The only deviations from
    the historical code are layering ones: the largest-component helper
    now comes from :mod:`repro.geometry.labeling` instead of
    ``repro.bench.shapes``, and the outer-slab ownership stretch uses
    the blur-derived :func:`ownership_stretch` instead of the magic
    ``10 × grid_margin`` (both stretches exceed any reachable shot
    centre, so ownership is unchanged).
    """

    name = "WINDOWED-LEGACY"

    def __init__(
        self,
        inner: Fracturer,
        window_nm: float = 300.0,
        stitch_params: RefineParams | None = None,
    ):
        if window_nm <= 0.0:
            raise ValueError("window size must be positive")
        self.inner = inner
        self.window_nm = window_nm
        self.stitch_params = (
            stitch_params if stitch_params is not None
            else RefineParams(nmax=200, nh=3)
        )
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        bbox = shape.polygon.bounding_box()
        if bbox.width <= self.window_nm * 1.5:
            shots = self.inner.fracture_shots(shape, spec)
            self._last_extra = {"slabs": 1, "stitch_iterations": 0}
            return shots

        halo = halo_nm(spec)
        slab_edges = self._slab_edges(bbox, spec)
        collected: list[Rect] = []
        slabs_used = 0
        for x_lo, x_hi in slab_edges:
            sub_shape = self._slab_shape(shape, x_lo - halo, x_hi + halo)
            if sub_shape is None:
                continue
            slabs_used += 1
            for shot in self.inner.fracture_shots(sub_shape, spec):
                if x_lo <= shot.center.x < x_hi:
                    collected.append(shot)
        stitched, trace = refine(shape, spec, collected, self.stitch_params)
        self._last_extra = {
            "slabs": slabs_used,
            "pre_stitch_shots": len(collected),
            "stitch_iterations": trace.iterations,
            "stitch_converged": trace.converged,
        }
        return stitched

    def _slab_edges(
        self, bbox: Rect, spec: FractureSpec
    ) -> list[tuple[float, float]]:
        count = max(1, int(np.ceil(bbox.width / self.window_nm)))
        edges = np.linspace(bbox.xbl, bbox.xtr, count + 1)
        slabs = list(zip(edges[:-1], edges[1:]))
        # Ownership is half-open [x_lo, x_hi); stretch the outer edges so
        # boundary-hugging shot centres are never orphaned.
        stretch = ownership_stretch(spec)
        first_lo, first_hi = slabs[0]
        slabs[0] = (first_lo - stretch, first_hi)
        last_lo, last_hi = slabs[-1]
        slabs[-1] = (last_lo, last_hi + stretch)
        return slabs

    def _slab_shape(
        self, shape: MaskShape, x_lo: float, x_hi: float
    ) -> MaskShape | None:
        """Sub-shape of everything within [x_lo, x_hi] (absolute coords)."""
        grid = shape.grid
        ix_lo = max(0, int(np.floor((x_lo - grid.x0) / grid.pitch)))
        ix_hi = min(grid.nx, int(np.ceil((x_hi - grid.x0) / grid.pitch)))
        if ix_hi <= ix_lo:
            return None
        sub_mask = shape.inside[:, ix_lo:ix_hi]
        if not sub_mask.any():
            return None
        sub_grid = PixelGrid(
            grid.x0 + ix_lo * grid.pitch,
            grid.y0,
            grid.pitch,
            ix_hi - ix_lo,
            grid.ny,
        )
        # Historical behaviour (the bug the tiled executor fixes): only
        # the largest connected component of the slab is fractured.
        biggest = largest_component(sub_mask)
        return MaskShape.from_mask(biggest, sub_grid, name=f"{shape.name}@{ix_lo}")
