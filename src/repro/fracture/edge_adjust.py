"""Greedy shot edge adjustment with 2σ blocking (paper §4.1).

The workhorse of refinement: every shot edge is priced at ±Δp, the
improving moves are sorted best-first, and accepted greedily.  After a
move is accepted, no other edge within 2σ of the moved edge may move in
the same iteration — the paper's anti-cycling rule (shot intensity is
< 1e-6 beyond 2σ outside a shot, so farther edges are independent).

Candidate pricing runs through one of two engines:

* ``"batched"`` (default) — gather every candidate of the iteration,
  fill the 1-D profile cache with a single LUT evaluation, and score all
  windowed Eq. 5 Δcosts from cached profiles
  (:meth:`RefinementState.price_edge_moves`).
* ``"scalar"`` — a per-candidate
  :meth:`RefinementState.edge_move_delta_cost` loop sharing the same
  scorer and window cropping, kept as the bit-identical oracle.
* ``"legacy"`` — the pre-engine pricing pass preserved verbatim
  (boolean-masking window cost, full windows, failing-pixel-count
  filter).  Combined with ``profile_caching(False)`` it reproduces the
  code path this PR replaces; the benchmark measures against it.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass

import numpy as np

from repro.fracture.state import RefinementState
from repro.geometry.rect import EDGES, Rect
from repro.mask.constraints import FailureReport
from repro.obs import get_recorder

_IMPROVEMENT_EPS = 1e-12

_DEFAULT_ENGINE = "batched"


def current_pricing_engine() -> str:
    """The engine :func:`greedy_shot_edge_adjustment` will use by default."""
    return _DEFAULT_ENGINE


class pricing_engine:
    """Temporarily select the default engine: ``with pricing_engine("scalar"):``."""

    def __init__(self, engine: str):
        if engine not in ("batched", "scalar", "legacy"):
            raise ValueError(f"unknown pricing engine {engine!r}")
        self._engine = engine

    def __enter__(self) -> "pricing_engine":
        global _DEFAULT_ENGINE
        self._previous = _DEFAULT_ENGINE
        _DEFAULT_ENGINE = self._engine
        return self

    def __exit__(self, *exc: object) -> bool:
        global _DEFAULT_ENGINE
        _DEFAULT_ENGINE = self._previous
        return False


@dataclass(frozen=True, slots=True)
class _Move:
    delta_cost: float
    index: int
    edge: str
    delta: float


class BlockedZoneIndex:
    """Interval index over 2σ blocked zones, sorted by zone left edge.

    Replaces the O(accepted × candidates) ``any(zone.intersects(...))``
    scan: zones are kept sorted by ``xbl``, a bisect prunes every zone
    strictly right of the query segment, and the survivors are checked
    with the same closed-interval overlap predicate
    :meth:`Rect.intersects` uses — accepted-move sets are identical by
    construction (asserted on the bench clips by the tests).
    """

    __slots__ = ("_xbl", "_xtr", "_ybl", "_ytr")

    def __init__(self) -> None:
        self._xbl: list[float] = []
        self._xtr: list[float] = []
        self._ybl: list[float] = []
        self._ytr: list[float] = []

    def __len__(self) -> int:
        return len(self._xbl)

    def add(self, zone: Rect) -> None:
        at = bisect_right(self._xbl, zone.xbl)
        insort(self._xbl, zone.xbl)
        self._xtr.insert(at, zone.xtr)
        self._ybl.insert(at, zone.ybl)
        self._ytr.insert(at, zone.ytr)

    def intersects(self, segment: Rect) -> bool:
        # Zones with xbl > segment.xtr can never overlap; bisect prunes
        # them wholesale.  Touching counts as overlap, as in Rect.intersects.
        stop = bisect_right(self._xbl, segment.xtr)
        xtr, ybl, ytr = self._xtr, self._ybl, self._ytr
        for i in range(stop):
            if (
                xtr[i] >= segment.xbl
                and ytr[i] >= segment.ybl
                and ybl[i] <= segment.ytr
            ):
                return True
        return False


def edge_segment(shot: Rect, edge: str) -> Rect:
    """The shot edge as a degenerate rectangle (for distance tests)."""
    if edge == "left":
        return Rect(shot.xbl, shot.ybl, shot.xbl, shot.ytr)
    if edge == "right":
        return Rect(shot.xtr, shot.ybl, shot.xtr, shot.ytr)
    if edge == "bottom":
        return Rect(shot.xbl, shot.ybl, shot.xtr, shot.ybl)
    if edge == "top":
        return Rect(shot.xbl, shot.ytr, shot.xtr, shot.ytr)
    raise ValueError(f"unknown edge {edge!r}")


def greedy_shot_edge_adjustment(
    state: RefinementState,
    report: FailureReport | None = None,
    *,
    engine: str | None = None,
) -> int:
    """One §4.1 pass.  Returns the number of accepted edge moves.

    For each of the four edges of every shot, only the two moves ±Δp are
    considered; the one with the larger cost reduction enters the
    candidate list.  Candidates are applied best-first subject to the 2σ
    blocking rule and a one-move-per-edge-per-iteration rule.

    Edges whose pricing window carries no failure cost are skipped
    outright: a move can only *reduce* cost if its window already has
    positive cost (new cost ≥ 0, so Δcost < 0 needs old cost > 0).  The
    skip test reads the same cost integral that prices the old side of
    every move, so both engines filter identically.
    """
    if engine is None:
        engine = _DEFAULT_ENGINE
    obs = get_recorder()
    with obs.span("pricing", engine=engine):
        if engine == "batched":
            cost_integral = state.cost_integral()
            active_integral = state.active_integral()
            moves = _batched_improving_moves(state, cost_integral, active_integral)
        elif engine == "scalar":
            cost_integral = state.cost_integral()
            active_integral = state.active_integral()
            moves = _scalar_improving_moves(state, cost_integral, active_integral)
        elif engine == "legacy":
            cost_integral = state.cost_integral_legacy()
            moves = _legacy_improving_moves(state, report, cost_integral)
        else:
            raise ValueError(f"unknown pricing engine {engine!r}")
    moves.sort(key=lambda m: m.delta_cost)

    blocked_zones = BlockedZoneIndex()
    block_margin = 2.0 * state.spec.sigma
    accepted = 0
    blocked = 0
    for move in moves:
        segment = edge_segment(state.shots[move.index], move.edge)
        if blocked_zones.intersects(segment):
            blocked += 1
            continue
        if not state.apply_edge_move(move.index, move.edge, move.delta):
            continue
        accepted += 1
        moved_segment = edge_segment(state.shots[move.index], move.edge)
        blocked_zones.add(moved_segment.expanded(block_margin))
    obs.incr("refine.moves_priced", len(moves))
    obs.incr("refine.moves_accepted", accepted)
    obs.incr("refine.moves_blocked_2sigma", blocked)
    return accepted


def _edge_worth_pricing(
    state: RefinementState,
    shot: Rect,
    edge: str,
    cost_integral: np.ndarray,
) -> bool:
    window = state.edge_pricing_window(shot, edge)
    return state.window_cost_from_integral(cost_integral, window) > 0.0


def _batched_improving_moves(
    state: RefinementState,
    cost_integral: np.ndarray,
    active_integral: np.ndarray,
) -> list[_Move]:
    """Gather all candidates, price them in one batch, keep the best ±Δp."""
    candidates = state.gather_edge_moves(cost_integral)
    get_recorder().incr("refine.candidates_priced", len(candidates))
    costs = state.price_edge_moves(candidates, cost_integral, active_integral)
    # Best improving move per (shot, edge); candidates arrive in
    # (index, edge, +Δp, −Δp) order, and dicts preserve insertion order,
    # so ties and final ordering match the scalar loop exactly.
    best: dict[tuple[int, str], _Move] = {}
    for candidate, dcost in zip(candidates, costs):
        dcost = float(dcost)
        if dcost >= -_IMPROVEMENT_EPS:
            continue
        key = (candidate.index, candidate.edge)
        incumbent = best.get(key)
        if incumbent is None or dcost < incumbent.delta_cost:
            best[key] = _Move(dcost, candidate.index, candidate.edge, candidate.delta)
    return list(best.values())


def _scalar_improving_moves(
    state: RefinementState,
    cost_integral: np.ndarray,
    active_integral: np.ndarray,
) -> list[_Move]:
    """The original per-candidate pricing loop (oracle / benchmark baseline)."""
    pitch = state.spec.pitch
    moves: list[_Move] = []
    priced = 0
    for index in range(len(state.shots)):
        shot = state.shots[index]
        for edge in EDGES:
            if not _edge_worth_pricing(state, shot, edge, cost_integral):
                continue
            best: _Move | None = None
            for delta in (pitch, -pitch):
                dcost = state.edge_move_delta_cost(
                    index, edge, delta, cost_integral, active_integral
                )
                if dcost is None:
                    continue
                priced += 1
                if dcost >= -_IMPROVEMENT_EPS:
                    continue
                if best is None or dcost < best.delta_cost:
                    best = _Move(dcost, index, edge, delta)
            if best is not None:
                moves.append(best)
    get_recorder().incr("refine.candidates_priced", priced)
    return moves


def _legacy_improving_moves(
    state: RefinementState,
    report: FailureReport | None,
    cost_integral: np.ndarray,
) -> list[_Move]:
    """The pre-engine pricing pass, preserved as the benchmark baseline.

    Mirrors the original greedy loop exactly: a failing-pixel-count
    filter built from the iteration's :class:`FailureReport`, then a
    per-candidate :meth:`RefinementState.edge_move_delta_cost_legacy`
    over full (uncropped) windows.
    """
    pitch = state.spec.pitch
    fail_counts = _failing_integral(report) if report is not None else None
    moves: list[_Move] = []
    priced = 0
    for index in range(len(state.shots)):
        shot = state.shots[index]
        for edge in EDGES:
            if fail_counts is not None and not _window_has_failures(
                state, shot, edge, pitch, fail_counts
            ):
                continue
            best: _Move | None = None
            for delta in (pitch, -pitch):
                dcost = state.edge_move_delta_cost_legacy(
                    index, edge, delta, cost_integral
                )
                if dcost is None:
                    continue
                priced += 1
                if dcost >= -_IMPROVEMENT_EPS:
                    continue
                if best is None or dcost < best.delta_cost:
                    best = _Move(dcost, index, edge, delta)
            if best is not None:
                moves.append(best)
    get_recorder().incr("refine.candidates_priced", priced)
    return moves


def _failing_integral(report: FailureReport) -> np.ndarray:
    """2-D prefix sums of the failing-pixel mask, for O(1) window counts."""
    fail = report.fail_on | report.fail_off
    counts = np.zeros((fail.shape[0] + 1, fail.shape[1] + 1), dtype=np.int64)
    np.cumsum(fail, axis=0, out=counts[1:, 1:])
    np.cumsum(counts[1:, 1:], axis=1, out=counts[1:, 1:])
    return counts


def _window_has_failures(
    state: RefinementState,
    shot: Rect,
    edge: str,
    pitch: float,
    fail_counts: np.ndarray,
) -> bool:
    """True when either ±Δp move of this edge could touch a failing pixel."""
    try:
        grown = shot.moved_edge(edge, pitch if edge in ("right", "top") else -pitch)
    except ValueError:
        grown = shot
    window = state.imap.edge_move_window(shot, grown, edge)
    ys, xs = window
    total = (
        fail_counts[ys.stop, xs.stop]
        - fail_counts[ys.start, xs.stop]
        - fail_counts[ys.stop, xs.start]
        + fail_counts[ys.start, xs.start]
    )
    return bool(total > 0)


