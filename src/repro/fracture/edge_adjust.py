"""Greedy shot edge adjustment with 2σ blocking (paper §4.1).

The workhorse of refinement: every shot edge is priced at ±Δp, the
improving moves are sorted best-first, and accepted greedily.  After a
move is accepted, no other edge within 2σ of the moved edge may move in
the same iteration — the paper's anti-cycling rule (shot intensity is
< 1e-6 beyond 2σ outside a shot, so farther edges are independent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fracture.state import RefinementState
from repro.geometry.rect import EDGES, Rect
from repro.mask.constraints import FailureReport
from repro.obs import get_recorder

_IMPROVEMENT_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class _Move:
    delta_cost: float
    index: int
    edge: str
    delta: float


def edge_segment(shot: Rect, edge: str) -> Rect:
    """The shot edge as a degenerate rectangle (for distance tests)."""
    if edge == "left":
        return Rect(shot.xbl, shot.ybl, shot.xbl, shot.ytr)
    if edge == "right":
        return Rect(shot.xtr, shot.ybl, shot.xtr, shot.ytr)
    if edge == "bottom":
        return Rect(shot.xbl, shot.ybl, shot.xtr, shot.ybl)
    if edge == "top":
        return Rect(shot.xbl, shot.ytr, shot.xtr, shot.ytr)
    raise ValueError(f"unknown edge {edge!r}")


def greedy_shot_edge_adjustment(
    state: RefinementState, report: FailureReport | None = None
) -> int:
    """One §4.1 pass.  Returns the number of accepted edge moves.

    For each of the four edges of every shot, only the two moves ±Δp are
    considered; the one with the larger cost reduction enters the
    candidate list.  Candidates are applied best-first subject to the 2σ
    blocking rule and a one-move-per-edge-per-iteration rule.

    When the current :class:`FailureReport` is supplied, edges whose
    influence window contains no failing pixel are skipped outright: a
    move can only *reduce* cost if its window already has failures
    (new cost ≥ 0, so Δcost < 0 needs old cost > 0).
    """
    pitch = state.spec.pitch
    fail_counts = _failing_integral(report) if report is not None else None
    cost_integral = state.cost_integral()
    moves: list[_Move] = []
    for index in range(len(state.shots)):
        shot = state.shots[index]
        for edge in EDGES:
            if fail_counts is not None and not _window_has_failures(
                state, shot, edge, pitch, fail_counts
            ):
                continue
            best: _Move | None = None
            for delta in (pitch, -pitch):
                dcost = state.edge_move_delta_cost(
                    index, edge, delta, cost_integral
                )
                if dcost is None or dcost >= -_IMPROVEMENT_EPS:
                    continue
                if best is None or dcost < best.delta_cost:
                    best = _Move(dcost, index, edge, delta)
            if best is not None:
                moves.append(best)
    moves.sort(key=lambda m: m.delta_cost)

    blocked_zones: list[Rect] = []
    block_margin = 2.0 * state.spec.sigma
    accepted = 0
    blocked = 0
    for move in moves:
        segment = edge_segment(state.shots[move.index], move.edge)
        if any(zone.intersects(segment) for zone in blocked_zones):
            blocked += 1
            continue
        if not state.apply_edge_move(move.index, move.edge, move.delta):
            continue
        accepted += 1
        moved_segment = edge_segment(state.shots[move.index], move.edge)
        blocked_zones.append(moved_segment.expanded(block_margin))
    obs = get_recorder()
    obs.incr("refine.moves_priced", len(moves))
    obs.incr("refine.moves_accepted", accepted)
    obs.incr("refine.moves_blocked_2sigma", blocked)
    return accepted


def _failing_integral(report: FailureReport) -> np.ndarray:
    """2-D prefix sums of the failing-pixel mask, for O(1) window counts."""
    fail = report.fail_on | report.fail_off
    counts = np.zeros((fail.shape[0] + 1, fail.shape[1] + 1), dtype=np.int64)
    np.cumsum(fail, axis=0, out=counts[1:, 1:])
    np.cumsum(counts[1:, 1:], axis=1, out=counts[1:, 1:])
    return counts


def _window_has_failures(
    state: RefinementState,
    shot: Rect,
    edge: str,
    pitch: float,
    fail_counts: np.ndarray,
) -> bool:
    """True when either ±Δp move of this edge could touch a failing pixel."""
    try:
        grown = shot.moved_edge(edge, pitch if edge in ("right", "top") else -pitch)
    except ValueError:
        grown = shot
    window = state.imap.edge_move_window(shot, grown, edge)
    ys, xs = window
    total = (
        fail_counts[ys.stop, xs.stop]
        - fail_counts[ys.start, xs.stop]
        - fail_counts[ys.stop, xs.start]
        + fail_counts[ys.start, xs.start]
    )
    return bool(total > 0)
