"""2-D tiled decomposition of large fracturing targets.

Full-chip flows meet polygons spanning micrometres — far beyond what the
O(|C|²) compatibility graph or a full-grid refinement can absorb.  The
standard MDP scaling trick (used by L-shape fracturers and GPU ILT flows
alike) decomposes the mask plane into a deterministic grid of tiles:

* every tile has a **core** — the region of the mask plane it *owns*
  under a half-open ``[lo, hi)`` rule, so each point belongs to exactly
  one tile;
* around the core sits a **halo** whose width is derived from the PSF
  blur reach, so the tile's sub-problem sees all geometry and dose
  context that can influence its core;
* the target's pixels inside the halo window are split into connected
  components and **every** component with at least one core-owned pixel
  is extracted as its own sub-shape (a tile may own several disjoint
  pieces — none is dropped);
* each sub-shape is fractured independently, shots are kept by the tile
  owning their *centre* (the same half-open rule, so no shot is ever
  duplicated or orphaned), and a seam-band stitch repairs the tile
  boundaries afterwards (see :mod:`repro.fracture.windowed`).

Everything here is pure geometry — deterministic, picklable, and
independent of worker count — which is what makes the process-parallel
executor's merge reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.labeling import component_masks
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


def halo_nm(spec: FractureSpec) -> float:
    """Halo width a tile needs to see its neighbours' dose context.

    Identical to :attr:`FractureSpec.grid_margin` (shots overhang the
    target by ~L_th and blur by the PSF reach): a sub-problem padded this
    far contains every pixel constraint and every plausible shot that
    can influence intensity inside the tile core.
    """
    return spec.grid_margin


def ownership_stretch(spec: FractureSpec) -> float:
    """How far outside the target bounding box a useful shot centre can sit.

    Outer tiles stretch their ownership interval by this amount so that
    boundary-hugging shots are never orphaned.  The value is derived
    from the PSF blur reach by the same 2σ argument the blocked-zone
    rule uses: a shot's intensity is < 1e-6 beyond 2σ of its boundary,
    so a shot that stays farther than 2σ from the target contributes no
    printable dose and is never produced; and a useful shot overhangs
    the target by at most ~L_th (the corner-rounding overshoot bound
    behind ``FractureSpec.grid_margin``).  Hence no useful shot centre
    lies beyond ``2σ + L_th`` of the bounding box.
    """
    return 2.0 * spec.sigma + spec.lth


@dataclass(frozen=True, slots=True)
class Tile:
    """One tile of the decomposition grid.

    ``core`` is the ownership region — membership uses the half-open
    rule of :meth:`owns` — and ``halo`` the padded extraction window.
    ``ix``/``iy`` are the tile's column/row in the grid.
    """

    ix: int
    iy: int
    core: Rect
    halo: Rect

    def owns(self, x: float, y: float) -> bool:
        """Half-open ownership: ``[xbl, xtr) × [ybl, ytr)``."""
        return (
            self.core.xbl <= x < self.core.xtr
            and self.core.ybl <= y < self.core.ytr
        )

    @property
    def name(self) -> str:
        return f"t{self.ix},{self.iy}"


@dataclass(frozen=True, slots=True)
class TilePlan:
    """The deterministic tile grid of one target shape.

    ``tiles`` are in row-major ``(iy, ix)`` order — the canonical merge
    order of the executor.  ``seam_xs`` / ``seam_ys`` are the interior
    tile boundaries (mask-plane coordinates) where neighbouring tiles'
    shots meet; the stitch phase repairs bands around exactly these
    lines.
    """

    tiles: tuple[Tile, ...]
    tiles_x: int
    tiles_y: int
    seam_xs: tuple[float, ...]
    seam_ys: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.tiles)

    @property
    def has_seams(self) -> bool:
        return bool(self.seam_xs or self.seam_ys)

    def owner_of(self, x: float, y: float) -> Tile | None:
        for tile in self.tiles:
            if tile.owns(x, y):
                return tile
        return None


def _mask_bbox(shape: MaskShape) -> Rect:
    """Outer pixel-edge bounding box of every target pixel.

    Unlike ``shape.polygon.bounding_box()`` this covers *all* connected
    components of a multi-component target, not just the traced one.
    """
    rows = shape.inside.any(axis=1)
    cols = shape.inside.any(axis=0)
    iy = np.nonzero(rows)[0]
    ix = np.nonzero(cols)[0]
    grid = shape.grid
    return Rect(
        grid.x0 + float(ix[0]) * grid.pitch,
        grid.y0 + float(iy[0]) * grid.pitch,
        grid.x0 + float(ix[-1] + 1) * grid.pitch,
        grid.y0 + float(iy[-1] + 1) * grid.pitch,
    )


def _axis_edges(lo: float, hi: float, tile_nm: float) -> np.ndarray:
    """Deterministic tile boundaries along one axis.

    An extent up to 1.5 tiles stays undivided (matching the historical
    single-window shortcut, so borderline shapes do not pay seams for a
    sliver tile); larger extents split into ``ceil(extent / tile_nm)``
    equal tiles.
    """
    extent = hi - lo
    if extent <= 1.5 * tile_nm:
        count = 1
    else:
        count = max(1, int(math.ceil(extent / tile_nm)))
    return np.linspace(lo, hi, count + 1)


def plan_tiles(
    shape: MaskShape, spec: FractureSpec, tile_nm: float
) -> TilePlan:
    """Build the 2-D tile grid of ``shape`` for tile size ``tile_nm``.

    Tiling happens along *both* axes.  Outer tiles stretch their
    ownership by :func:`ownership_stretch` so boundary-hugging shot
    centres are always owned; halos pad every core by :func:`halo_nm`.

    The grid extent comes from the *pixel mask*, not the traced
    polygon: a multi-component target has one polygon per component but
    a single mask, and every component must fall inside some tile's
    core (the dropped-component guarantee starts here).
    """
    if tile_nm <= 0.0:
        raise ValueError("tile size must be positive")
    bbox = _mask_bbox(shape)
    xs = _axis_edges(bbox.xbl, bbox.xtr, tile_nm)
    ys = _axis_edges(bbox.ybl, bbox.ytr, tile_nm)
    stretch = ownership_stretch(spec)
    halo = halo_nm(spec)
    x_lo = xs.copy()
    x_hi = xs.copy()
    y_lo = ys.copy()
    y_hi = ys.copy()
    x_lo[0] -= stretch
    x_hi[-1] += stretch
    y_lo[0] -= stretch
    y_hi[-1] += stretch
    tiles: list[Tile] = []
    for iy in range(len(ys) - 1):
        for ix in range(len(xs) - 1):
            core = Rect(x_lo[ix], y_lo[iy], x_hi[ix + 1], y_hi[iy + 1])
            tiles.append(
                Tile(ix=ix, iy=iy, core=core, halo=core.expanded(halo))
            )
    return TilePlan(
        tiles=tuple(tiles),
        tiles_x=len(xs) - 1,
        tiles_y=len(ys) - 1,
        seam_xs=tuple(float(x) for x in xs[1:-1]),
        seam_ys=tuple(float(y) for y in ys[1:-1]),
    )


def _centre_span_to_slice(
    lo: float, hi: float, origin: float, pitch: float, n: int
) -> slice:
    """Indices of pixel centres inside the half-open span ``[lo, hi)``."""
    first = math.ceil((lo - origin) / pitch - 0.5)
    stop = math.ceil((hi - origin) / pitch - 0.5)
    first = min(max(first, 0), n)
    return slice(first, min(max(stop, first), n))


def _crop_component(
    mask: np.ndarray, grid: PixelGrid, pad_nm: float
) -> tuple[np.ndarray, PixelGrid]:
    """Crop a component mask to its bounding box padded by ``pad_nm``.

    The returned grid keeps mask-plane coordinates, so shots fractured
    on the cropped problem land exactly where they would on the full
    window — cropping only trims far-away OFF pixels that no shot of
    this component can dose.
    """
    pad = int(math.ceil(pad_nm / grid.pitch))
    iy = np.nonzero(mask.any(axis=1))[0]
    ix = np.nonzero(mask.any(axis=0))[0]
    y0 = max(0, int(iy[0]) - pad)
    y1 = min(grid.ny, int(iy[-1]) + 1 + pad)
    x0 = max(0, int(ix[0]) - pad)
    x1 = min(grid.nx, int(ix[-1]) + 1 + pad)
    cropped_grid = PixelGrid(
        grid.x0 + x0 * grid.pitch,
        grid.y0 + y0 * grid.pitch,
        grid.pitch,
        x1 - x0,
        y1 - y0,
    )
    return mask[y0:y1, x0:x1], cropped_grid


def extract_tile_shapes(
    shape: MaskShape, tile: Tile, pad_nm: float | None = None
) -> list[MaskShape]:
    """Sub-shapes of ``shape`` that tile ``tile`` must fracture.

    The target pixels within the tile's halo window are labeled into
    connected components, and every component owning at least one pixel
    centre inside the core is returned as its own single-polygon
    :class:`MaskShape` (the inner fracturers expect one polygon per
    problem).  Components living entirely in the halo are skipped —
    their owning tile fractures them whole, and any shot this tile
    produced for them would be discarded by the centre-ownership rule
    anyway.  Unlike the historical slab extraction, *no owned component
    is ever dropped*.

    When ``pad_nm`` is given, each sub-shape is cropped to its
    component's bounding box padded by ``pad_nm`` (use the halo width /
    ``FractureSpec.grid_margin``, the standard dose-window margin).
    Every inner-solver array operation scales with grid area, so a
    small contact island no longer pays for the whole tile window; the
    executor passes the halo width here.
    """
    grid = shape.grid
    ix_lo = max(0, int(math.floor((tile.halo.xbl - grid.x0) / grid.pitch)))
    ix_hi = min(grid.nx, int(math.ceil((tile.halo.xtr - grid.x0) / grid.pitch)))
    iy_lo = max(0, int(math.floor((tile.halo.ybl - grid.y0) / grid.pitch)))
    iy_hi = min(grid.ny, int(math.ceil((tile.halo.ytr - grid.y0) / grid.pitch)))
    if ix_hi <= ix_lo or iy_hi <= iy_lo:
        return []
    sub_mask = shape.inside[iy_lo:iy_hi, ix_lo:ix_hi]
    if not sub_mask.any():
        return []
    sub_grid = PixelGrid(
        grid.x0 + ix_lo * grid.pitch,
        grid.y0 + iy_lo * grid.pitch,
        grid.pitch,
        ix_hi - ix_lo,
        iy_hi - iy_lo,
    )
    # Core ownership test in sub-window indices (half-open, like owns()).
    core_cols = _centre_span_to_slice(
        tile.core.xbl, tile.core.xtr, sub_grid.x0, grid.pitch, sub_grid.nx
    )
    core_rows = _centre_span_to_slice(
        tile.core.ybl, tile.core.ytr, sub_grid.y0, grid.pitch, sub_grid.ny
    )
    shapes: list[MaskShape] = []
    for k, component in enumerate(component_masks(sub_mask)):
        if not component[core_rows, core_cols].any():
            continue
        comp_mask, comp_grid = component, sub_grid
        if pad_nm is not None:
            comp_mask, comp_grid = _crop_component(component, sub_grid, pad_nm)
        shapes.append(
            MaskShape.from_mask(
                comp_mask, comp_grid, name=f"{shape.name}@{tile.name}#{k}"
            )
        )
    return shapes


def seam_band_masks(
    shape: MaskShape,
    plan: TilePlan,
    spec: FractureSpec,
    movable_nm: float | None = None,
) -> tuple[np.ndarray, float]:
    """Active-region mask of the seam bands, for the stitch refinement.

    Returns ``(active_mask, movable_nm)``.  A shot within ``movable_nm``
    of a seam line is *movable* during stitching.  The default is the
    halo width: tile solutions only disagree where one tile's dropped
    halo shots were replaced by its neighbour's owned shots, and that
    mismatch zone extends at most one halo to either side of the seam.
    The active mask pads the movable band by the blur reach plus the
    minimum shot size, so the full dose-effect window of any in-band
    repair (an edge move, an added L_min shot) stays inside the mask —
    the restricted refinement forbids mutations whose windows leave it.
    """
    if movable_nm is None:
        movable_nm = halo_nm(spec)
    active_nm = movable_nm + 4.0 * spec.sigma + spec.lmin + 2.0 * spec.pitch
    grid = shape.grid
    mask = np.zeros(grid.shape, dtype=bool)
    for sx in plan.seam_xs:
        cols = grid.x_span_to_slice(sx - active_nm, sx + active_nm)
        mask[:, cols] = True
    for sy in plan.seam_ys:
        rows = grid.y_span_to_slice(sy - active_nm, sy + active_nm)
        mask[rows, :] = True
    return mask, movable_nm


def split_seam_shots(
    shots: list[Rect],
    plan: TilePlan,
    movable_nm: float,
) -> tuple[list[Rect], list[Rect]]:
    """Partition ``shots`` into (movable, frozen) for the stitch phase.

    A shot is movable when its rectangle comes within ``movable_nm`` of
    any interior seam line; everything else is frozen background whose
    dose the stitch refinement sees but never touches.  Order within
    each partition follows the input order, keeping the stitch
    deterministic.
    """
    movable: list[Rect] = []
    frozen: list[Rect] = []
    for shot in shots:
        near = any(
            shot.xbl - movable_nm <= sx <= shot.xtr + movable_nm
            for sx in plan.seam_xs
        ) or any(
            shot.ybl - movable_nm <= sy <= shot.ytr + movable_nm
            for sy in plan.seam_ys
        )
        (movable if near else frozen).append(shot)
    return movable, frozen
