"""Shot addition and removal (paper §4.3 / §4.4).

AddShot: merge neighbouring failing P_on pixels into connected
components, expand each component's bounding box to the minimum shot
size, and add the box covering the most failing pixels.  One shot per
refinement iteration.

RemoveShot: pick the shot with the most failing P_off pixels within
distance σ of it — the shot's own intensity exceeds 0.5 inside that
band, so removing it likely clears those violations (at the price of new
P_on violations that later iterations repair).

Both moves honour :meth:`RefinementState.mutation_allowed`: in a
region-restricted refinement, a shot is only added or removed when its
full dose-effect window lies inside the active mask.
"""

from __future__ import annotations

import numpy as np

from repro.fracture.state import RefinementState
from repro.geometry.labeling import bounding_boxes, label_components
from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport


def add_shot(state: RefinementState, report: FailureReport) -> Rect | None:
    """Add one shot over the worst cluster of failing P_on pixels."""
    fail_on = report.fail_on
    if not fail_on.any():
        return None
    labels, count = label_components(fail_on)
    boxes = bounding_boxes(labels, count, state.shape.grid)
    if not boxes:
        return None
    lmin = state.spec.lmin
    best_shot: Rect | None = None
    best_covered = -1
    for box, _pixel_count in boxes:
        shot = _expand_to_min_size(box, lmin)
        if not state.mutation_allowed(state.imap.window_of(shot)):
            continue
        covered = _covered_failing(fail_on, shot, state)
        if covered > best_covered:
            best_covered = covered
            best_shot = shot
    if best_shot is None:
        return None
    state.add_shot(best_shot)
    return best_shot


def remove_shot(state: RefinementState, report: FailureReport) -> Rect | None:
    """Remove the shot blamed for the most nearby failing P_off pixels."""
    if not state.shots:
        return None
    fail_off = report.fail_off
    ys, xs = np.nonzero(fail_off)
    if len(ys) == 0:
        return None
    grid = state.shape.grid
    px = grid.x0 + (xs + 0.5) * grid.pitch
    py = grid.y0 + (ys + 0.5) * grid.pitch
    sigma = state.spec.sigma
    best_index = -1
    best_count = -1
    for index, shot in enumerate(state.shots):
        if not state.mutation_allowed(state.imap.window_of(shot)):
            continue
        dx = np.maximum(np.maximum(shot.xbl - px, px - shot.xtr), 0.0)
        dy = np.maximum(np.maximum(shot.ybl - py, py - shot.ytr), 0.0)
        count = int(((dx * dx + dy * dy) < sigma * sigma).sum())
        if count > best_count:
            best_count = count
            best_index = index
    if best_index < 0:
        return None
    return state.remove_shot(best_index)


def _expand_to_min_size(box: Rect, lmin: float) -> Rect:
    """Grow a bounding box symmetrically to the minimum shot size."""
    xbl, ybl, xtr, ytr = box.as_tuple()
    if box.width < lmin:
        cx = (xbl + xtr) / 2.0
        xbl, xtr = cx - lmin / 2.0, cx + lmin / 2.0
    if box.height < lmin:
        cy = (ybl + ytr) / 2.0
        ybl, ytr = cy - lmin / 2.0, cy + lmin / 2.0
    return Rect(xbl, ybl, xtr, ytr)


def _covered_failing(
    fail_on: np.ndarray, shot: Rect, state: RefinementState
) -> int:
    """Failing P_on pixels whose centres the candidate shot covers."""
    window = state.shape.grid.rect_to_slices(shot)
    return int(fail_on[window].sum())
