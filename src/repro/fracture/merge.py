"""Shot merging (paper §4.5) — keeps shot count low during refinement.

Two merge rules, applied to every shot pair until a fixed point:

1. *Aligned extension*: if both x extents (or both y extents) agree
   within γ, the pair can be replaced by their joint bounding box —
   but only when > 90 % of the merged shot lies inside the target
   (Fig. 5's counterexample exposes too many P_off pixels otherwise).
2. *Containment*: a shot completely covered by another is redundant.
"""

from __future__ import annotations

from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect

_INSIDE_FRACTION = 0.90


def merge_shots(state: RefinementState) -> int:
    """Merge shots until no rule applies; returns merges performed."""
    merges = 0
    changed = True
    while changed:
        changed = False
        shots = state.shots
        for i in range(len(shots)):
            for j in range(i + 1, len(shots)):
                merged = _try_merge_pair(shots[i], shots[j], state)
                if merged is None:
                    continue
                # Remove j first (higher index) so i stays valid.
                state.remove_shot(j)
                state.remove_shot(i)
                state.add_shot(merged)
                merges += 1
                changed = True
                break
            if changed:
                break
    return merges


def _try_merge_pair(a: Rect, b: Rect, state: RefinementState) -> Rect | None:
    """The merged shot for a pair, or None when no rule applies."""
    if a.contains_rect(b):
        return _if_allowed(a, state)
    if b.contains_rect(a):
        return _if_allowed(b, state)
    gamma = state.spec.gamma
    x_aligned = abs(a.xbl - b.xbl) <= gamma and abs(a.xtr - b.xtr) <= gamma
    y_aligned = abs(a.ybl - b.ybl) <= gamma and abs(a.ytr - b.ytr) <= gamma
    if not (x_aligned or y_aligned):
        return None
    merged = a.union_bbox(b)
    if state.shape.sat.rect_fraction(merged) > _INSIDE_FRACTION:
        return _if_allowed(merged, state)
    return None


def _if_allowed(merged: Rect, state: RefinementState) -> Rect | None:
    """Region-restriction gate: every merge rule's dose change is
    confined to the merged rectangle's window (the merged shot contains
    both originals), so one window test keeps restricted refinements
    sound."""
    if state.mutation_allowed(state.imap.window_of(merged)):
        return merged
    return None
