"""Fault-tolerant execution layer for the tiled fracturing executor.

A full-chip run covers thousands of tiles and hours of wall time; one
worker crash, hang or infeasible tile must not abort the run and lose
every completed tile.  This module wraps the per-tile work of
:class:`repro.fracture.windowed.WindowedFracturer` with:

* an **error taxonomy** — :class:`TileCrash` (worker process died),
  :class:`TileTimeout` (per-tile deadline exceeded),
  :class:`TileInfeasible` (the tile computation raised) and
  :class:`PoolBroken` (the pool could not be kept alive) — every error
  carries the tile identity it belongs to;
* **per-tile retry** with capped exponential backoff
  (:class:`RetryPolicy`) and **per-tile deadlines** enforced by
  ``submit``-based scheduling with tile-identity-preserving result
  envelopes (``pool.map``'s order/all-success assumption is gone);
* **pool recovery** — a ``BrokenProcessPool`` respawns the pool,
  requeues the tiles that were in flight and *quarantines* the suspects
  to inline (in-parent) execution for their next attempt, so one
  poisonous tile cannot kill worker after worker;
* a **degradation ladder** — a tile that exhausts its retries falls
  back to the deterministic geometric :class:`PartitionFracturer`
  baseline for that tile and is flagged (``windowed.tile_fallbacks``,
  the run manifest, :attr:`TileOutcome.fallback`) instead of failing
  the run;
* an **atomic JSONL checkpoint journal** (:class:`CheckpointJournal`):
  every completed tile is appended (write + flush + fsync) as one JSON
  line, so an interrupted run resumed with ``--resume`` replays the
  completed tiles from disk bit-identically and re-executes only the
  rest;
* a **deterministic failure-injection hook** (:class:`FaultPlan`):
  crash / hang / raise on named tiles, armed per attempt, with a
  seeded random-subset constructor — usable from tests and the CLI
  (``--inject-fault``).

Determinism: tile jobs are pure, so a retried attempt reproduces the
original result exactly, and outcomes are merged in row-major job
order regardless of completion order.  Retries, resume and any worker
count therefore keep the merged shot list bit-identical to a
fault-free single-worker run; only fallback tiles deviate, and those
are explicitly flagged.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape
from repro.obs import TelemetryRecorder, get_recorder, recording
from repro.obs.resources import (
    HeartbeatMonitor,
    HeartbeatWriter,
    ensure_disk_space,
)

__all__ = [
    "CheckpointJournal",
    "CheckpointMismatch",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "PoolBroken",
    "RetryPolicy",
    "RunInterrupted",
    "RunStats",
    "RuntimePolicy",
    "TileCrash",
    "TileError",
    "TileInfeasible",
    "TileOutcome",
    "TileTimeout",
    "fracture_tile",
    "partition_fallback",
    "run_tiles",
]


# -- error taxonomy ----------------------------------------------------------


class TileError(RuntimeError):
    """Base of the per-tile error taxonomy; carries the tile identity."""

    def __init__(self, tile_name: str, message: str):
        super().__init__(f"tile {tile_name}: {message}")
        self.tile_name = tile_name


class TileCrash(TileError):
    """The worker process executing the tile died (e.g. SIGKILL/OOM)."""


class TileTimeout(TileError):
    """The tile exceeded its per-tile deadline."""


class TileInfeasible(TileError):
    """The tile computation raised — the sub-problem could not be solved."""


class PoolBroken(RuntimeError):
    """The process pool could not be kept alive within the respawn budget."""


class RunInterrupted(RuntimeError):
    """A graceful-shutdown hook stopped the run between tile settlements.

    Raised when :attr:`RuntimePolicy.stop_check` returns true.  The run
    stops at a *clean* point: every settled tile has its checkpoint
    journal line flushed and fsynced, no tile is half-recorded, and the
    pool is torn down by the normal cleanup path — so re-running with
    ``resume`` replays the completed tiles bit-identically and executes
    only the rest.  ``done`` / ``total`` report how far the run got.
    """

    def __init__(self, done: int, total: int):
        super().__init__(
            f"run interrupted by shutdown hook after {done}/{total} tiles"
        )
        self.done = done
        self.total = total


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultPlan` for the ``raise`` action."""


class InjectedCrash(InjectedFault):
    """Inline stand-in for a worker hard-crash (see :meth:`FaultPlan.fire`)."""


class InjectedHang(InjectedFault):
    """Inline stand-in for a worker hang / surfaced after a survived hang."""


# -- policies ----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, backoff, deadline and pool-respawn budget for tile execution.

    ``max_attempts`` counts the first execution: 3 means one run plus
    two retries before the degradation ladder engages.  Backoff for the
    retry after attempt *k* is ``backoff_s * backoff_factor**(k-1)``
    capped at ``backoff_cap_s``.  ``tile_deadline_s`` is enforced by
    killing and respawning the pool, so it requires ``workers > 1``;
    inline (serial) execution cannot be preempted.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    tile_deadline_s: float | None = None
    max_pool_respawns: int = 8

    def backoff(self, attempt: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt``."""
        raw = self.backoff_s * self.backoff_factor ** max(0, attempt - 1)
        return min(raw, self.backoff_cap_s)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``action`` fires on the first ``times`` attempts."""

    action: str  # "crash" | "hang" | "raise"
    times: int = 1


_FAULT_ACTIONS = ("crash", "hang", "raise")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic failure injection for named tiles.

    ``faults`` maps tile names to :class:`FaultSpec`; a fault is armed
    for attempts ``1..times`` of its tile, so retried attempts succeed.
    In a pool worker ``crash`` hard-kills the process (``os._exit``) and
    ``hang`` sleeps ``hang_s`` seconds; executed inline (serial path or
    quarantined attempt) both are simulated by raising
    :class:`InjectedCrash` / :class:`InjectedHang` instead — a real
    SIGKILL or hang in the parent would take down the run the layer is
    protecting.
    """

    faults: dict[str, FaultSpec] = field(default_factory=dict)
    hang_s: float = 3600.0

    @classmethod
    def parse(cls, specs: Sequence[str], hang_s: float = 3600.0) -> "FaultPlan":
        """Build a plan from CLI specs ``TILE:ACTION[:TIMES]``.

        Example: ``t0,0:crash`` or ``t1,2:raise:2``.
        """
        faults: dict[str, FaultSpec] = {}
        for spec in specs:
            parts = spec.rsplit(":", 2)
            if len(parts) >= 2 and parts[-1].isdigit() and parts[-2] in _FAULT_ACTIONS:
                tile, action, times = ":".join(parts[:-2]), parts[-2], int(parts[-1])
            elif len(parts) >= 2 and parts[-1] in _FAULT_ACTIONS:
                tile, action, times = ":".join(parts[:-1]), parts[-1], 1
            else:
                raise ValueError(
                    f"bad fault spec {spec!r}: expected TILE:ACTION[:TIMES] "
                    f"with ACTION one of {_FAULT_ACTIONS}"
                )
            if not tile:
                raise ValueError(f"bad fault spec {spec!r}: empty tile name")
            faults[tile] = FaultSpec(action, times)
        return cls(faults=faults, hang_s=hang_s)

    @classmethod
    def seeded(
        cls,
        tile_names: Sequence[str],
        seed: int,
        action: str = "crash",
        fraction: float = 0.3,
        times: int = 1,
        hang_s: float = 3600.0,
    ) -> "FaultPlan":
        """Inject ``action`` on a seeded random subset of ``tile_names``."""
        if action not in _FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {action!r}")
        rng = random.Random(seed)
        chosen = [name for name in tile_names if rng.random() < fraction]
        return cls(
            faults={name: FaultSpec(action, times) for name in chosen},
            hang_s=hang_s,
        )

    def fire(self, tile_name: str, attempt: int, inline: bool) -> None:
        """Execute the fault armed for ``(tile_name, attempt)``, if any."""
        spec = self.faults.get(tile_name)
        if spec is None or attempt > spec.times:
            return
        detail = f"injected {spec.action} on tile {tile_name} (attempt {attempt})"
        if spec.action == "raise":
            raise InjectedFault(detail)
        if spec.action == "crash":
            if inline:
                raise InjectedCrash(detail)
            os._exit(13)
        if spec.action == "hang":
            if inline:
                raise InjectedHang(detail)
            time.sleep(self.hang_s)
            # Only reached when no deadline killed the worker: surface
            # the hang as a retryable failure rather than fake success.
            raise InjectedHang(detail)


@dataclass
class RuntimePolicy:
    """Everything the tiled executor needs beyond the happy path.

    ``heartbeat_s`` enables the worker heartbeat channel
    (:mod:`repro.obs.resources`) on the pooled path: each worker
    publishes liveness/tile/RSS/CPU every ``heartbeat_s`` seconds and
    the parent folds the beats into ``windowed.*`` gauges, emitting
    ``worker_stalled`` events for workers that stop beating
    (``stall_after_s``, default 3 heartbeats) or sit on one tile
    suspiciously long (half the tile deadline, when one is set).
    ``None`` disables the channel entirely (zero overhead).

    ``stop_check`` is the graceful-shutdown hook: a zero-argument
    callable polled between tile settlements.  When it returns true the
    runner raises :class:`RunInterrupted` at the next clean point —
    after the in-flight settlements are journaled, before new work is
    started — so a daemon draining on SIGTERM can requeue the job and
    resume it bit-identically later.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: FaultPlan | None = None
    checkpoint_dir: str | Path | None = None
    resume: bool = False
    heartbeat_s: float | None = None
    stall_after_s: float | None = None
    stop_check: Callable[[], bool] | None = None
    #: Free-disk floor (bytes) enforced before every checkpoint append;
    #: ``None`` disables the guard.  Threaded from the service's
    #: ``ServiceLimits.disk_floor_bytes`` so a daemon job on a full disk
    #: fails with a typed error instead of journaling torn lines.
    disk_floor_bytes: int | None = None
    #: Trace context dict (``{"trace_id", ...}``) correlating this run
    #: with its submitter; stamped on the checkpoint journal, every
    #: worker heartbeat and every worker-side span.  ``None`` falls back
    #: to the installed recorder's manifest trace (the executor path).
    trace: dict[str, Any] | None = None


# -- outcomes ----------------------------------------------------------------


@dataclass
class TileOutcome:
    """Tile-identity-preserving result envelope of one tile's execution."""

    index: int
    tile_name: str
    ok: bool
    shots: list[Rect]
    attempts: int
    fallback: bool = False
    replayed: bool = False
    error: str | None = None
    telemetry: dict | None = None
    worker_pid: int | None = None

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable per-tile outcome (manifest / events)."""
        record: dict[str, Any] = {
            "tile": self.tile_name,
            "ok": self.ok,
            "attempts": self.attempts,
            "shots": len(self.shots),
            "fallback": self.fallback,
            "replayed": self.replayed,
        }
        if self.error:
            record["error"] = self.error
        if self.worker_pid is not None:
            record["worker_pid"] = self.worker_pid
        return record


@dataclass
class RunStats:
    """Aggregate fault-layer activity of one :func:`run_tiles` call."""

    tile_retries: int = 0
    tile_timeouts: int = 0
    pool_respawns: int = 0
    tile_fallbacks: int = 0
    tiles_replayed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "tile_retries": self.tile_retries,
            "tile_timeouts": self.tile_timeouts,
            "pool_respawns": self.pool_respawns,
            "tile_fallbacks": self.tile_fallbacks,
            "tiles_replayed": self.tiles_replayed,
        }


# -- checkpoint journal ------------------------------------------------------


class CheckpointMismatch(ValueError):
    """An existing journal belongs to a different run configuration."""


class CheckpointJournal:
    """Atomic per-tile JSONL checkpoint of one tiled run.

    Line 1 is a header carrying the *run key* (shape, spec, window size,
    tile fingerprint); every further line is one completed tile with its
    exact shot list.  Appends write one full line, flush and fsync, so a
    crash mid-write loses at most the trailing partial line — which the
    loader ignores.  JSON round-trips Python floats exactly, so replayed
    tiles are bit-identical to their original execution.
    """

    SCHEMA = "repro.checkpoint/v1"

    def __init__(
        self,
        path: Path,
        run_key: dict[str, Any],
        min_free_bytes: int | None = None,
        trace_id: str | None = None,
    ):
        self.path = Path(path)
        self.run_key = run_key
        self.completed: dict[str, dict[str, Any]] = {}
        #: Disk floor: appends below it raise
        #: :class:`repro.obs.DiskFullError` *before* touching the file,
        #: so a full disk fails the run loudly instead of leaving a torn
        #: journal that a later ``--resume`` would silently truncate.
        self.min_free_bytes = min_free_bytes
        #: Trace id stamped on the header and every tile line so the
        #: journal joins the run's correlated trace.  Deliberately *not*
        #: part of the run key: a resumed attempt carries the same
        #: trace_id, but even a divergent one must never block replay.
        self.trace_id = trace_id

    @classmethod
    def open(
        cls,
        path: str | Path,
        run_key: dict[str, Any],
        resume: bool = False,
        min_free_bytes: int | None = None,
        trace_id: str | None = None,
    ) -> "CheckpointJournal":
        """Open (resuming) or start (overwriting) a journal at ``path``.

        With ``resume`` an existing journal is loaded and validated
        against ``run_key`` (:class:`CheckpointMismatch` on conflict); a
        missing file simply starts a fresh run.  Without ``resume`` any
        existing journal is truncated.
        """
        journal = cls(
            Path(path), run_key, min_free_bytes=min_free_bytes,
            trace_id=trace_id,
        )
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and journal.path.exists():
            journal._load()
        else:
            journal._write_header()
        return journal

    def _header_line(self) -> dict[str, Any]:
        header = {"kind": "header", "schema": self.SCHEMA, "run_key": self.run_key}
        if self.trace_id:
            header["trace_id"] = self.trace_id
        return header

    def _write_header(self) -> None:
        ensure_disk_space(self.path.parent, self.min_free_bytes)
        header = self._header_line()
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            self._write_header()
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict):
            # The header line itself is torn (crash before the first
            # fsync landed): a crash artifact, not a different run.
            # Quarantine the corpse for inspection and start fresh —
            # every tile recomputes, bit-identically.
            try:
                os.replace(
                    self.path, self.path.with_suffix(self.path.suffix + ".bad")
                )
            except OSError:
                pass
            self._write_header()
            return
        if header.get("kind") != "header" or header.get("schema") != self.SCHEMA:
            raise CheckpointMismatch(f"{self.path}: not a {self.SCHEMA} journal")
        if header.get("run_key") != self.run_key:
            raise CheckpointMismatch(
                f"{self.path}: journal belongs to a different run "
                f"(shape/spec/window/tiling changed); delete it or drop --resume"
            )
        torn = False
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Partial line from an interrupted (or truncated) append.
                torn = True
                continue
            if record.get("kind") == "tile" and "tile" in record:
                self.completed[record["tile"]] = record
        if torn:
            # Heal before any append: a new record written after a torn
            # partial line would concatenate onto it, poisoning the
            # *next* resume.  Rewrite header + settled tiles atomically.
            self._rewrite()

    def _rewrite(self) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        header = self._header_line()
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for record in self.completed.values():
                fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def record(self, outcome: TileOutcome) -> None:
        """Append one completed tile — atomically, then fsync.

        Checked against the disk floor first: a full disk surfaces as a
        typed :class:`repro.obs.DiskFullError` with zero bytes written,
        never as a torn line.
        """
        ensure_disk_space(self.path.parent, self.min_free_bytes)
        record = {
            "kind": "tile",
            "tile": outcome.tile_name,
            "status": "fallback" if outcome.fallback else "ok",
            "attempts": outcome.attempts,
            "shots": [list(shot.as_tuple()) for shot in outcome.shots],
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if outcome.error:
            record["error"] = outcome.error
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self, index: int, tile_name: str) -> TileOutcome | None:
        """Outcome of ``tile_name`` from the journal, or ``None``."""
        record = self.completed.get(tile_name)
        if record is None:
            return None
        return TileOutcome(
            index=index,
            tile_name=tile_name,
            ok=True,
            shots=[Rect(*vals) for vals in record.get("shots", ())],
            attempts=int(record.get("attempts", 1)),
            fallback=record.get("status") == "fallback",
            replayed=True,
            error=record.get("error"),
        )


def run_key_fingerprint(run_key: dict[str, Any]) -> str:
    """Short stable digest of a run key (manifest/debug convenience)."""
    blob = json.dumps(run_key, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# -- tile work ---------------------------------------------------------------


def fracture_tile(
    inner: Any, tile: Any, subs: list[MaskShape], spec: FractureSpec
) -> list[Rect]:
    """Fracture one tile's sub-shapes, keeping centre-owned shots only."""
    owned: list[Rect] = []
    for sub in subs:
        for shot in inner.fracture_shots(sub, spec):
            centre = shot.center
            if tile.owns(centre.x, centre.y):
                owned.append(shot)
    return owned


def partition_fallback(
    tile: Any, subs: list[MaskShape], spec: FractureSpec
) -> list[Rect]:
    """Degradation-ladder terminal: deterministic geometric fracturing.

    The :class:`PartitionFracturer` baseline is model-free and cannot
    hang or diverge, so a tile whose model-based attempts are exhausted
    still ships *valid coverage* — at a shot-count premium the run
    manifest flags.
    """
    from repro.baselines.partition_fracture import PartitionFracturer

    return fracture_tile(PartitionFracturer(), tile, subs, spec)


# -- worker side -------------------------------------------------------------

_WORKER_CTX: tuple | None = None


def _worker_init(
    inner: Any,
    spec: FractureSpec,
    telemetry_enabled: bool,
    fault_plan: FaultPlan | None,
    heartbeat_dir: str | None = None,
    heartbeat_s: float = 1.0,
    trace: dict[str, Any] | None = None,
) -> None:
    """Pool initializer: ship the inner fracturer once per worker process.

    Payloads then carry only ``(tile, subs, attempt)`` — the inner
    method (with whatever caches/config it holds) is not re-pickled
    into every tile job.  With ``heartbeat_dir`` the worker also starts
    a :class:`HeartbeatWriter` daemon thread that publishes liveness,
    the current tile/attempt and an RSS/CPU sample every
    ``heartbeat_s`` seconds for the parent's stall monitor.  ``trace``
    is the run's trace context: it stamps the worker's heartbeats and
    the manifest of every worker-side recorder, so cross-process span
    merges keep the one trace_id.
    """
    global _WORKER_CTX
    heartbeat = None
    if heartbeat_dir is not None:
        meta = (
            {"trace_id": trace["trace_id"]}
            if trace and trace.get("trace_id") else None
        )
        try:
            heartbeat = HeartbeatWriter(
                heartbeat_dir, heartbeat_s, meta=meta
            ).start()
        except OSError:
            heartbeat = None  # liveness publishing is best effort
    _WORKER_CTX = (inner, spec, telemetry_enabled, fault_plan, heartbeat, trace)


def _kind_of(error: BaseException) -> str:
    if isinstance(error, InjectedHang):
        return "hang"
    if isinstance(error, InjectedCrash):
        return "crash"
    return "error"


def _tile_task(tile: Any, subs: list[MaskShape], attempt: int) -> tuple:
    """Worker entry point: returns a tile-identity-preserving envelope.

    ``("ok", tile_name, shots, telemetry | None, meta)`` on success;
    ``("error", tile_name, kind, message, meta)`` when the computation
    raised (the pool stays healthy and the parent knows exactly which
    tile and how many sub-shapes were involved).  ``meta`` carries the
    worker pid so outcomes can be attributed to the heartbeat channel.
    A hard crash (injected or real) never returns — the parent sees
    ``BrokenProcessPool``.
    """
    inner, spec, telemetry_enabled, fault_plan, heartbeat, trace = _WORKER_CTX
    meta = {"pid": os.getpid()}
    if heartbeat is not None:
        # Mark the tile *before* any injected fault fires, so a crash or
        # hang leaves a heartbeat file attributing the stall to it.
        heartbeat.set_task(tile.name, attempt)
    try:
        if fault_plan is not None:
            fault_plan.fire(tile.name, attempt, inline=False)
        if not telemetry_enabled:
            owned = fracture_tile(inner, tile, subs, spec)
            return ("ok", tile.name, owned, None, meta)
        recorder = TelemetryRecorder(trace=trace)
        with recording(recorder):
            with recorder.span("tile", tile=tile.name, sub_shapes=len(subs)):
                owned = fracture_tile(inner, tile, subs, spec)
        return ("ok", tile.name, owned, recorder.export(), meta)
    except Exception as error:  # noqa: BLE001 — envelope, not policy
        message = (
            f"tile {tile.name} ({len(subs)} sub-shapes, attempt {attempt}): "
            f"{type(error).__name__}: {error}"
        )
        if not isinstance(error, InjectedFault):
            message += "\n" + traceback.format_exc()
        return ("error", tile.name, _kind_of(error), message, meta)
    finally:
        if heartbeat is not None:
            heartbeat.clear_task()


# -- the runner --------------------------------------------------------------


@dataclass
class _Pending:
    """One tile attempt waiting to run."""

    idx: int
    attempt: int
    eligible_at: float
    inline: bool = False  # quarantined to in-parent execution
    started: float = 0.0  # monotonic start of the current attempt


class _TileRunner:
    """Shared state of one :func:`run_tiles` call (serial or pooled)."""

    def __init__(
        self,
        jobs: list[tuple[Any, list[MaskShape]]],
        *,
        inner: Any,
        spec: FractureSpec,
        workers: int,
        retry: RetryPolicy,
        fault_plan: FaultPlan | None,
        journal: CheckpointJournal | None,
        telemetry_enabled: bool,
        fallback: Callable[[Any, list[MaskShape], FractureSpec], list[Rect]],
        heartbeat_s: float | None = None,
        stall_after_s: float | None = None,
        stop_check: Callable[[], bool] | None = None,
        trace: dict[str, Any] | None = None,
    ):
        self.jobs = jobs
        self.inner = inner
        self.spec = spec
        self.workers = workers
        self.retry = retry
        self.fault_plan = fault_plan
        self.journal = journal
        self.telemetry_enabled = telemetry_enabled
        self.fallback = fallback
        self.heartbeat_s = heartbeat_s
        self.stall_after_s = stall_after_s
        self.stop_check = stop_check
        self.obs = get_recorder()
        # Fall back to the installed recorder's manifest trace so CLI
        # runs that never touch RuntimePolicy.trace still correlate.
        self.trace = trace or getattr(self.obs, "trace", None)
        self.stats = RunStats()
        self.outcomes: list[TileOutcome | None] = [None] * len(jobs)
        self.pending: list[_Pending] = []
        for idx, (tile, _subs) in enumerate(jobs):
            replayed = journal.replay(idx, tile.name) if journal else None
            if replayed is not None:
                self.outcomes[idx] = replayed
                self.stats.tiles_replayed += 1
                self.obs.incr("windowed.tiles_replayed")
            else:
                self.pending.append(_Pending(idx, 1, 0.0))
        # Progress/ETA tracking: replayed tiles count as done up front so
        # a resumed run's ETA covers only the work actually remaining.
        self._t0 = time.monotonic()
        self._done = self.stats.tiles_replayed
        self._done_at_start = self._done
        self._shots_done = sum(
            len(o.shots) for o in self.outcomes if o is not None
        )
        self._tile_wall_ewma: float | None = None

    # -- progress -----------------------------------------------------------

    def _note_progress(self, outcome: TileOutcome, wall_s: float | None) -> None:
        """Fold one settled tile into the progress/ETA picture."""
        self._done += 1
        self._shots_done += len(outcome.shots)
        if wall_s is not None and wall_s > 0:
            # EWMA over per-tile wall time; alpha=0.2 smooths transient
            # slow tiles without hiding a sustained slowdown.
            if self._tile_wall_ewma is None:
                self._tile_wall_ewma = wall_s
            else:
                self._tile_wall_ewma = 0.2 * wall_s + 0.8 * self._tile_wall_ewma
        total = len(self.jobs)
        elapsed = max(1e-9, time.monotonic() - self._t0)
        fresh = self._done - self._done_at_start
        eta_s: float | None = None
        if fresh > 0 and self._done < total:
            # Throughput-based ETA: done/elapsed already folds worker
            # parallelism in, unlike ewma * remaining.
            eta_s = (total - self._done) / (fresh / elapsed)
        self.obs.gauge("windowed.tiles_done", self._done)
        self.obs.gauge("windowed.shots_done", self._shots_done)
        if self._tile_wall_ewma is not None:
            self.obs.gauge(
                "windowed.tile_wall_ewma_s", round(self._tile_wall_ewma, 4)
            )
        fields: dict[str, Any] = {
            "tiles_done": self._done,
            "tiles_total": total,
            "shots": self._shots_done,
        }
        if self._tile_wall_ewma is not None:
            fields["tile_wall_ewma_s"] = round(self._tile_wall_ewma, 4)
        if eta_s is not None:
            fields["eta_s"] = round(eta_s, 2)
        self.obs.event("progress", **fields)

    # -- settlement ---------------------------------------------------------

    def _settle_ok(
        self,
        p: _Pending,
        shots: list[Rect],
        telemetry: dict | None,
        worker_pid: int | None = None,
    ) -> None:
        outcome = TileOutcome(
            index=p.idx,
            tile_name=self.jobs[p.idx][0].name,
            ok=True,
            shots=shots,
            attempts=p.attempt,
            telemetry=telemetry,
            worker_pid=worker_pid,
        )
        self.outcomes[p.idx] = outcome
        if self.journal is not None:
            self.journal.record(outcome)
        if p.attempt > 1:
            self.obs.event("tile_recovered", **outcome.to_record())
        wall_s = time.monotonic() - p.started if p.started else None
        self._note_progress(outcome, wall_s)

    def _settle_failure(self, p: _Pending, kind: str, message: str) -> None:
        """Retry with backoff, or engage the degradation ladder."""
        if kind == "hang":
            self.stats.tile_timeouts += 1
            self.obs.incr("windowed.tile_timeouts")
        if p.attempt < self.retry.max_attempts:
            self.stats.tile_retries += 1
            self.obs.incr("windowed.tile_retries")
            self.obs.event(
                "tile_retry",
                tile=self.jobs[p.idx][0].name,
                attempt=p.attempt,
                kind=kind,
                error=message.splitlines()[0],
            )
            quarantine = p.inline or kind == "crash"
            self.pending.append(
                _Pending(
                    p.idx,
                    p.attempt + 1,
                    time.monotonic() + self.retry.backoff(p.attempt),
                    inline=quarantine,
                )
            )
            return
        self._run_fallback(p, message)

    def _run_fallback(self, p: _Pending, reason: str) -> None:
        tile, subs = self.jobs[p.idx]
        self.stats.tile_fallbacks += 1
        self.obs.incr("windowed.tile_fallbacks")
        started = time.monotonic()
        with self.obs.span("tile_fallback", tile=tile.name):
            shots = self.fallback(tile, subs, self.spec)
        outcome = TileOutcome(
            index=p.idx,
            tile_name=tile.name,
            ok=True,
            shots=shots,
            attempts=p.attempt,
            fallback=True,
            error=reason.splitlines()[0],
        )
        self.outcomes[p.idx] = outcome
        if self.journal is not None:
            self.journal.record(outcome)
        self.obs.event("tile_fallback", **outcome.to_record())
        self._note_progress(outcome, time.monotonic() - started)

    def _attempt_inline(self, p: _Pending) -> None:
        """One in-parent attempt (serial path or quarantined tile)."""
        tile, subs = self.jobs[p.idx]
        p.started = time.monotonic()
        try:
            if self.fault_plan is not None:
                self.fault_plan.fire(tile.name, p.attempt, inline=True)
            with self.obs.span("tile", tile=tile.name, sub_shapes=len(subs)):
                owned = fracture_tile(self.inner, tile, subs, self.spec)
        except Exception as error:  # noqa: BLE001 — taxonomy boundary
            message = (
                f"tile {tile.name} ({len(subs)} sub-shapes, attempt "
                f"{p.attempt}): {type(error).__name__}: {error}"
            )
            self._settle_failure(p, _kind_of(error), message)
            return
        self._settle_ok(p, owned, telemetry=None)

    def _settle_envelope(self, p: _Pending, envelope: tuple) -> None:
        meta = envelope[4] if len(envelope) > 4 else {}
        if envelope[0] == "ok":
            shots, telemetry = envelope[2], envelope[3]
            self._settle_ok(p, shots, telemetry, worker_pid=meta.get("pid"))
        else:
            kind, message = envelope[2], envelope[3]
            self._settle_failure(p, kind, message)

    # -- graceful shutdown --------------------------------------------------

    def _check_interrupt(self) -> None:
        """Raise :class:`RunInterrupted` when the shutdown hook fires.

        Only called between settlements, so every completed tile is
        already journaled and no partial state escapes.
        """
        if self.stop_check is not None and self.stop_check():
            self.obs.event(
                "run_interrupted", done=self._done, total=len(self.jobs)
            )
            raise RunInterrupted(self._done, len(self.jobs))

    # -- serial path --------------------------------------------------------

    def run_serial(self) -> None:
        while self.pending:
            self._check_interrupt()
            p = self.pending.pop(0)
            delay = p.eligible_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._attempt_inline(p)

    # -- pooled path --------------------------------------------------------

    def run_pool(self) -> None:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        hb_dir: Path | None = None
        monitor: HeartbeatMonitor | None = None
        if self.heartbeat_s is not None and self.heartbeat_s > 0:
            hb_dir = Path(tempfile.mkdtemp(prefix="repro-hb-"))
            # A hung worker's heartbeat *thread* keeps beating, so file
            # age alone cannot catch hangs; the slow-task check fires at
            # half the tile deadline — strictly before the deadline kill.
            slow_task_after = (
                0.5 * self.retry.tile_deadline_s
                if self.retry.tile_deadline_s is not None
                else None
            )
            monitor = HeartbeatMonitor(
                hb_dir,
                self.obs,
                interval_s=self.heartbeat_s,
                stall_after_s=self.stall_after_s,
                slow_task_after_s=slow_task_after,
            )

        def spawn() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(
                    self.inner, self.spec,
                    self.telemetry_enabled, self.fault_plan,
                    str(hb_dir) if hb_dir is not None else None,
                    self.heartbeat_s if self.heartbeat_s else 1.0,
                    self.trace,
                ),
            )

        def kill(pool: ProcessPoolExecutor) -> None:
            procs = list(getattr(pool, "_processes", {}).values())
            for proc in procs:
                proc.kill()
            pool.shutdown(wait=False, cancel_futures=True)
            if hb_dir is not None:
                # Deliberately killed workers are not stalls: retire
                # their heartbeat files so the monitor does not flag
                # the parent's own deadline enforcement.
                for proc in procs:
                    try:
                        (hb_dir / f"hb-{proc.pid}.json").unlink()
                    except OSError:
                        pass

        pool = spawn()
        if monitor is not None:
            monitor.start()
        respawns = 0
        inflight: dict[Any, tuple[_Pending, float]] = {}

        def respawn_pool(reason: str) -> ProcessPoolExecutor:
            nonlocal respawns
            respawns += 1
            self.stats.pool_respawns += 1
            self.obs.incr("windowed.pool_respawns")
            self.obs.event("pool_respawn", reason=reason, respawns=respawns)
            if respawns > self.retry.max_pool_respawns:
                raise PoolBroken(
                    f"process pool died {respawns} times "
                    f"(budget {self.retry.max_pool_respawns}); giving up: {reason}"
                )
            return spawn()

        try:
            while self.pending or inflight:
                self._check_interrupt()
                now = time.monotonic()
                later: list[_Pending] = []
                due_inline: list[_Pending] = []
                submit: list[_Pending] = []
                next_eligible: float | None = None
                for p in self.pending:
                    if p.eligible_at > now:
                        later.append(p)
                        if next_eligible is None or p.eligible_at < next_eligible:
                            next_eligible = p.eligible_at
                    elif p.inline:
                        due_inline.append(p)
                    elif len(inflight) + len(submit) < self.workers:
                        submit.append(p)
                    else:
                        later.append(p)
                self.pending = later
                broken: list[_Pending] = []
                pool_is_broken = False
                for p in submit:
                    tile, subs = self.jobs[p.idx]
                    try:
                        future = pool.submit(_tile_task, tile, subs, p.attempt)
                    except Exception:  # BrokenProcessPool / RuntimeError
                        pool_is_broken = True
                        broken.append(p)
                        continue
                    p.started = time.monotonic()
                    inflight[future] = (p, p.started)
                for p in due_inline:
                    self._attempt_inline(p)
                if pool_is_broken:
                    broken.extend(p for p, _t in inflight.values())
                    inflight.clear()
                    pool = respawn_pool("submit failed: pool already broken")
                    for p in broken:
                        self._settle_failure(
                            p, "crash", "worker process died (BrokenProcessPool)"
                        )
                    continue
                if not inflight:
                    if self.pending and next_eligible is not None:
                        time.sleep(max(0.0, next_eligible - time.monotonic()))
                    continue
                timeouts: list[float] = []
                now = time.monotonic()
                if self.retry.tile_deadline_s is not None:
                    for _p, started in inflight.values():
                        timeouts.append(
                            started + self.retry.tile_deadline_s - now
                        )
                if next_eligible is not None:
                    timeouts.append(next_eligible - now)
                timeout = max(0.0, min(timeouts)) if timeouts else None
                if self.stop_check is not None:
                    # Poll the shutdown hook even while every worker is
                    # deep inside a long tile.
                    timeout = 0.2 if timeout is None else min(timeout, 0.2)
                done, _not_done = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                failed_with_pool: list[_Pending] = []
                for future in done:
                    p, _started = inflight.pop(future)
                    try:
                        envelope = future.result()
                    except BrokenProcessPool:
                        pool_is_broken = True
                        failed_with_pool.append(p)
                        continue
                    except Exception as error:  # noqa: BLE001
                        self._settle_failure(
                            p, "error",
                            f"tile result unavailable: "
                            f"{type(error).__name__}: {error}",
                        )
                        continue
                    self._settle_envelope(p, envelope)
                if pool_is_broken:
                    # Everything still in flight died with the pool;
                    # requeue it all — suspects are quarantined inline by
                    # the "crash" settlement path.
                    failed_with_pool.extend(p for p, _t in inflight.values())
                    inflight.clear()
                    pool = respawn_pool("worker process died abruptly")
                    for p in failed_with_pool:
                        self._settle_failure(
                            p, "crash", "worker process died (BrokenProcessPool)"
                        )
                    continue
                if self.retry.tile_deadline_s is not None and inflight:
                    now = time.monotonic()
                    overdue = [
                        future
                        for future, (_p, started) in inflight.items()
                        if now - started >= self.retry.tile_deadline_s
                    ]
                    if overdue:
                        # A hung worker cannot be preempted individually:
                        # kill the pool, respawn, requeue the innocent
                        # in-flight tiles without penalty and charge the
                        # overdue ones a timeout.
                        overdue_set = set(overdue)
                        victims = list(inflight.items())
                        inflight.clear()
                        kill(pool)
                        pool = respawn_pool("tile deadline exceeded")
                        for future, (p, started) in victims:
                            if future in overdue_set:
                                tile = self.jobs[p.idx][0]
                                self._settle_failure(
                                    p, "hang",
                                    f"tile {tile.name} exceeded deadline "
                                    f"{self.retry.tile_deadline_s:.3g}s "
                                    f"(attempt {p.attempt})",
                                )
                            else:
                                self.pending.append(
                                    _Pending(p.idx, p.attempt, 0.0, p.inline)
                                )
        finally:
            if monitor is not None:
                monitor.stop(final_tick=False)
            if inflight:
                kill(pool)  # hung/dead workers: do not wait on them
            else:
                pool.shutdown(wait=True, cancel_futures=True)
            if hb_dir is not None:
                shutil.rmtree(hb_dir, ignore_errors=True)

    # -- finish -------------------------------------------------------------

    def finish(self) -> list[TileOutcome]:
        outcomes: list[TileOutcome] = []
        for idx, outcome in enumerate(self.outcomes):
            if outcome is None:  # pragma: no cover — defensive
                tile = self.jobs[idx][0]
                raise PoolBroken(f"tile {tile.name} never produced an outcome")
            if outcome.telemetry is not None:
                self.obs.merge_child(outcome.telemetry, label=outcome.tile_name)
                outcome.telemetry = None
            self.obs.event("tile_outcome", **outcome.to_record())
            outcomes.append(outcome)
        return outcomes


def run_tiles(
    jobs: list[tuple[Any, list[MaskShape]]],
    *,
    inner: Any,
    spec: FractureSpec,
    workers: int = 1,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    journal: CheckpointJournal | None = None,
    telemetry_enabled: bool = False,
    fallback: Callable[[Any, list[MaskShape], FractureSpec], list[Rect]]
    | None = None,
    heartbeat_s: float | None = None,
    stall_after_s: float | None = None,
    stop_check: Callable[[], bool] | None = None,
    trace: dict[str, Any] | None = None,
) -> tuple[list[TileOutcome], RunStats]:
    """Execute tile ``jobs`` fault-tolerantly; outcomes in job order.

    The contract the tiled executor's determinism rests on: outcomes are
    returned (and their telemetry merged) in row-major job order no
    matter the worker count, completion order, retries or resume — and
    each job is pure, so any successful attempt yields the same shots.
    The heartbeat channel and the progress events are observational
    only, so enabling them cannot change the merged shot list.
    """
    runner = _TileRunner(
        jobs,
        inner=inner,
        spec=spec,
        workers=workers,
        retry=retry if retry is not None else RetryPolicy(),
        fault_plan=fault_plan,
        journal=journal,
        telemetry_enabled=telemetry_enabled,
        fallback=fallback if fallback is not None else partition_fallback,
        heartbeat_s=heartbeat_s,
        stall_after_s=stall_after_s,
        stop_check=stop_check,
        trace=trace,
    )
    if workers == 1 or len(runner.pending) <= 1:
        runner.run_serial()
    else:
        runner.run_pool()
    return runner.finish(), runner.stats
