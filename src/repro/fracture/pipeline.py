"""The full proposed method: coloring-based initialization + refinement.

``ModelBasedFracturer`` is what the paper's tables call "Our method":
graph-coloring approximate fracturing (§3) hands an initial solution to
iterative shot refinement (§4), which fixes the CD violations while
keeping the shot count low.

Two engineering layers sit on top of the published algorithm (both can
be disabled for paper-faithful ablations):

* a **shot-count polish** (:func:`repro.fracture.refine.reduce_shot_count`)
  after convergence, and
* a **restart portfolio**: the deterministic pipeline is sensitive to
  the coloring order and the stagnation horizon NH, so a handful of
  (coloring strategy, NH) variants are tried and the best feasible
  solution kept.  The first two variants always run; later ones only
  when no feasible solution has been found yet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fracture.base import Fracturer
from repro.fracture.graph_color import GraphBuildConfig, approximate_fracture
from repro.fracture.refine import RefineParams, reduce_shot_count, refine
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec, check_solution
from repro.mask.shape import MaskShape
from repro.obs import get_recorder


@dataclass(frozen=True, slots=True)
class RefineConfig:
    """Tunables for one pipeline run.

    ``polish`` enables the try-remove-and-repair shot-count reduction
    after Algorithm 1 converges (an extension; disable for the
    paper-faithful ablation).

    ``init`` selects the stage-1 initializer: ``"coloring"`` is the
    paper's graph-coloring construction; ``"partition"`` seeds refinement
    from a merge-tolerant scanline partition instead — the conventional
    starting point of optimization-based fracture [15], which excels on
    blocky aggregates where the coloring construction over-fragments.
    """

    graph: GraphBuildConfig = GraphBuildConfig()
    params: RefineParams = RefineParams()
    polish: bool = True
    polish_attempts: int = 8
    init: str = "coloring"
    partition_merge_tolerance: float = 3.0

    def __post_init__(self) -> None:
        if self.init not in ("coloring", "partition"):
            raise ValueError(f"unknown init {self.init!r}")

    @classmethod
    def fast(cls) -> "RefineConfig":
        """Lower iteration budget — for tests and quick experiments."""
        return cls(params=RefineParams(nmax=120, nh=3), polish=False)

    @classmethod
    def thorough(cls) -> "RefineConfig":
        """Higher budget for the hard wavy benchmark shapes (Table 3)."""
        return cls(params=RefineParams(nmax=1200, nh=3))

    @classmethod
    def paper_faithful(cls) -> "RefineConfig":
        """Algorithm 1 exactly as published — no count polish."""
        return cls(polish=False)


DEFAULT_PORTFOLIO: tuple[RefineConfig, ...] = (
    RefineConfig(params=RefineParams(nmax=600, nh=3)),
    RefineConfig(init="partition", params=RefineParams(nmax=600, nh=3)),
    RefineConfig(
        graph=GraphBuildConfig(coloring_strategy="dsatur"),
        params=RefineParams(nmax=600, nh=3),
    ),
    RefineConfig(
        graph=GraphBuildConfig(coloring_strategy="dsatur"),
        params=RefineParams(nmax=600, nh=6),
    ),
    RefineConfig(params=RefineParams(nmax=600, nh=6)),
)

#: How many portfolio entries always run, even after a feasible solution.
_MIN_RUNS = 2


class ModelBasedFracturer(Fracturer):
    """Graph-coloring initialization followed by Algorithm 1 refinement."""

    name = "OURS"

    def __init__(
        self,
        config: RefineConfig | None = None,
        portfolio: tuple[RefineConfig, ...] | None = None,
    ):
        """``config`` forces a single-run pipeline; ``portfolio`` supplies
        an explicit restart list.  With neither, the default portfolio is
        used."""
        if config is not None and portfolio is not None:
            raise ValueError("pass either config or portfolio, not both")
        if config is not None:
            self.portfolio: tuple[RefineConfig, ...] = (config,)
        else:
            self.portfolio = portfolio if portfolio is not None else DEFAULT_PORTFOLIO
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        obs = get_recorder()
        best_shots: list[Rect] | None = None
        best_key: tuple | None = None
        runs: list[dict] = []
        for run_index, config in enumerate(self.portfolio):
            with obs.span(
                "portfolio_run", run=run_index, init=config.init,
                coloring=config.graph.coloring_strategy, nh=config.params.nh,
            ) as span:
                shots, run_info = _run_once(shape, spec, config)
                report = check_solution(shots, shape, spec)
                span.annotate(
                    shots=len(shots), feasible=report.feasible,
                    failing=report.total_failing,
                )
            key = (not report.feasible, len(shots), report.cost)
            runs.append(
                {
                    **run_info,
                    "shots": len(shots),
                    "feasible": report.feasible,
                    "failing": report.total_failing,
                }
            )
            obs.event(
                "pipeline.run_outcome", run=run_index, init=config.init,
                coloring=config.graph.coloring_strategy, nh=config.params.nh,
                shots=len(shots), feasible=report.feasible,
                failing=report.total_failing,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_shots = shots
            have_feasible = best_key is not None and not best_key[0]
            if run_index + 1 >= _MIN_RUNS and have_feasible:
                break
        obs.incr("pipeline.portfolio_runs", len(runs))
        obs.incr(
            "pipeline.feasible_runs", sum(1 for run in runs if run["feasible"])
        )
        self._last_extra = {
            "runs": runs,
            "chosen_shots": len(best_shots or []),
            **(runs[0] if runs else {}),
        }
        return best_shots or []


def _run_once(
    shape: MaskShape, spec: FractureSpec, config: RefineConfig
) -> tuple[list[Rect], dict]:
    """One init → refine → polish pass under a single configuration."""
    obs = get_recorder()
    if config.init == "partition":
        with obs.span("init.partition"):
            initial = _partition_initial(shape, spec, config)
        diagnostics = {"initial_shots": len(initial)}
    else:
        initial, diagnostics = approximate_fracture(shape, spec, config.graph)
    shots, trace = refine(shape, spec, initial, config.params)
    polished_away = 0
    if config.polish and trace.converged:
        shots, polished_away = reduce_shot_count(
            shape, spec, shots, max_attempts=config.polish_attempts
        )
    info = {
        **diagnostics,
        "init": config.init,
        "coloring": config.graph.coloring_strategy,
        "nh": config.params.nh,
        "refine_iterations": trace.iterations,
        "refine_converged": trace.converged,
        "edge_moves": trace.edge_moves,
        "bias_steps": trace.bias_steps,
        "shots_added": trace.shots_added,
        "shots_removed": trace.shots_removed,
        "shots_merged": trace.shots_merged,
        "polished_away": polished_away,
    }
    return shots, info


def _partition_initial(
    shape: MaskShape, spec: FractureSpec, config: RefineConfig
) -> list[Rect]:
    """Merge-tolerant scanline partition as a refinement seed.

    Slivers below the writer minimum are dropped rather than widened —
    refinement re-adds dose where their removal leaves gaps.
    """
    from repro.geometry.partition import scanline_partition

    rects = scanline_partition(
        shape.inside, shape.grid,
        merge_tolerance=config.partition_merge_tolerance,
    )
    return [rect for rect in rects if rect.meets_min_size(spec.lmin)]
