"""Turning color classes of corner points into e-beam shots (paper §3, Fig. 4).

A color class that contains a pair of diagonally opposite corner points
pins the shot completely.  Classes with only one corner point, or only
two non-diagonal ones, leave one or two shot edges free: those start at
the minimum shot size and are extended until they touch the opposite
boundary of the target shape.
"""

from __future__ import annotations

from repro.fracture.corner_points import ShotCornerPoint
from repro.geometry.rect import Rect
from repro.mask.shape import MaskShape

# An extension step keeps going while the swept strip stays mostly inside
# the target; see _extend_edge.
_STRIP_INSIDE_FRACTION = 0.5


def shot_from_class(
    corner_points: list[ShotCornerPoint],
    shape: MaskShape,
    lmin: float,
) -> Rect | None:
    """Construct the shot for one color class.

    Returns ``None`` for classes whose points are geometrically
    inconsistent (can happen when clustering moved centroids); the caller
    simply drops them — refinement re-adds dose where needed.
    """
    if not corner_points:
        return None
    xs_left = [c.point.x for c in corner_points if c.ctype.is_left]
    xs_right = [c.point.x for c in corner_points if not c.ctype.is_left]
    ys_bottom = [c.point.y for c in corner_points if c.ctype.is_bottom]
    ys_top = [c.point.y for c in corner_points if not c.ctype.is_bottom]

    xbl = _mean(xs_left)
    xtr = _mean(xs_right)
    ybl = _mean(ys_bottom)
    ytr = _mean(ys_top)

    # Free edges start at minimum size from the pinned ones (Fig. 4), then
    # get extended toward the opposite target boundary.
    free_edges: list[str] = []
    if xbl is None and xtr is None:
        return None  # no horizontal information at all
    if ybl is None and ytr is None:
        return None
    if xbl is None:
        xbl = xtr - lmin
        free_edges.append("left")
    if xtr is None:
        xtr = xbl + lmin
        free_edges.append("right")
    if ybl is None:
        ybl = ytr - lmin
        free_edges.append("bottom")
    if ytr is None:
        ytr = ybl + lmin
        free_edges.append("top")

    if xtr - xbl < lmin - 1e-9 or ytr - ybl < lmin - 1e-9:
        # Pinned corners closer than the minimum shot size: widen
        # symmetrically to Lmin so the writer constraint holds.
        if xtr - xbl < lmin:
            cx = (xbl + xtr) / 2.0
            xbl, xtr = cx - lmin / 2.0, cx + lmin / 2.0
        if ytr - ybl < lmin:
            cy = (ybl + ytr) / 2.0
            ybl, ytr = cy - lmin / 2.0, cy + lmin / 2.0

    shot = Rect(xbl, ybl, xtr, ytr)
    for edge in free_edges:
        shot = _extend_edge(shot, edge, shape)
    return shot


def _mean(values: list[float]) -> float | None:
    if not values:
        return None
    return sum(values) / len(values)


def _extend_edge(shot: Rect, edge: str, shape: MaskShape) -> Rect:
    """Push a free shot edge outward until it reaches the target boundary.

    Steps the edge one pixel at a time while the newly swept strip is
    still mostly inside the shape (Fig. 4: "the bottom edge of the
    minimum height shot is extended to touch the lower boundary of the
    target shape").
    """
    pitch = shape.grid.pitch
    sign = -1.0 if edge in ("left", "bottom") else 1.0
    extent = shape.grid.extent
    max_steps = int(max(extent.width, extent.height) / pitch)
    current = shot
    for _ in range(max_steps):
        candidate = current.moved_edge(edge, sign * pitch)
        strip = _swept_strip(current, candidate, edge)
        if strip is None:
            break
        fraction = shape.sat.rect_fraction(strip)
        if fraction < _STRIP_INSIDE_FRACTION:
            break
        current = candidate
    return current


def _swept_strip(old: Rect, new: Rect, edge: str) -> Rect | None:
    """The one-pixel strip the edge move sweeps over."""
    if edge == "left":
        return Rect(new.xbl, new.ybl, old.xbl, old.ytr)
    if edge == "right":
        return Rect(old.xtr, old.ybl, new.xtr, old.ytr)
    if edge == "bottom":
        return Rect(new.xbl, new.ybl, new.xtr, old.ybl)
    if edge == "top":
        return Rect(old.xbl, old.ytr, old.xtr, new.ytr)
    return None
