"""Compatibility graph construction and coloring-based fracturing (paper §3).

Two corner points are *compatible* — connected in ``G(V, E)`` — when a
single shot could realize both corners: they have different corner types,
the implied test shot meets the minimum size, and most of the test shot
(≥ 80 %, footnote 2) overlaps the target.  Every clique of ``G`` is then a
feasible shot, and minimizing shots over the corner points is minimum
clique partition, solved greedily by coloring the inverse graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fracture.base import Fracturer
from repro.fracture.corner_points import (
    CornerType,
    ShotCornerPoint,
    extract_corner_points,
)
from repro.fracture.placement import shot_from_class
from repro.geometry.rdp import rdp_simplify
from repro.geometry.rect import Rect
from repro.graphlib.clique_cover import clique_partition
from repro.graphlib.graph import Graph
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape
from repro.obs import get_recorder


@dataclass(frozen=True, slots=True)
class GraphBuildConfig:
    """Tunables of the §3 construction.

    ``min_overlap`` is the paper's 80 % test-shot overlap rule.
    ``align_tolerance_factor`` scales L_th into the alignment slack used
    when pairing two same-side corner points (e.g. bottom-left with
    top-left): their x coordinates must agree within that slack for a
    single left shot edge to serve both.
    """

    min_overlap: float = 0.8
    align_tolerance_factor: float = 0.5
    coloring_strategy: str = "largest_first"


def pair_test_shot(
    a: ShotCornerPoint,
    b: ShotCornerPoint,
    lmin: float,
    align_tol: float,
) -> Rect | None:
    """The unique (diagonal pair) or minimum-size (side pair) test shot.

    Returns ``None`` when the pair cannot be two corners of one valid
    shot — same type, wrong relative position, or below minimum size.
    """
    if a.ctype == b.ctype:
        return None
    if b.ctype == a.ctype.diagonal_opposite:
        lo, hi = (a, b) if a.ctype.is_left else (b, a)
        # lo is the *-left corner; for a valid shot it must be left of hi
        # and on the correct side vertically.
        dx = hi.point.x - lo.point.x
        if dx < lmin:
            return None
        if lo.ctype.is_bottom:
            dy = hi.point.y - lo.point.y
            if dy < lmin:
                return None
            return Rect(lo.point.x, lo.point.y, hi.point.x, hi.point.y)
        dy = lo.point.y - hi.point.y
        if dy < lmin:
            return None
        return Rect(lo.point.x, hi.point.y, hi.point.x, lo.point.y)
    # Side pair: shares the left/right word or the top/bottom word.
    if a.ctype.is_left == b.ctype.is_left:
        # Same vertical shot edge (both left or both right corners).
        if abs(a.point.x - b.point.x) > align_tol:
            return None
        bottom, top = (a, b) if a.ctype.is_bottom else (b, a)
        height = top.point.y - bottom.point.y
        if height < lmin:
            return None
        x_edge = (a.point.x + b.point.x) / 2.0
        if a.ctype.is_left:
            return Rect(x_edge, bottom.point.y, x_edge + lmin, top.point.y)
        return Rect(x_edge - lmin, bottom.point.y, x_edge, top.point.y)
    # Same horizontal shot edge (both bottom or both top corners).
    if abs(a.point.y - b.point.y) > align_tol:
        return None
    left, right = (a, b) if a.ctype.is_left else (b, a)
    width = right.point.x - left.point.x
    if width < lmin:
        return None
    y_edge = (a.point.y + b.point.y) / 2.0
    if a.ctype.is_bottom:
        return Rect(left.point.x, y_edge, right.point.x, y_edge + lmin)
    return Rect(left.point.x, y_edge - lmin, right.point.x, y_edge)


def build_compatibility_graph(
    corner_points: list[ShotCornerPoint],
    shape: MaskShape,
    spec: FractureSpec,
    config: GraphBuildConfig = GraphBuildConfig(),
) -> Graph:
    """The graph ``G(V, E)`` of paper §3 over the given corner points."""
    align_tol = config.align_tolerance_factor * spec.lth
    graph = Graph(len(corner_points))
    overhang = spec.lth / math.sqrt(2.0)
    for i in range(len(corner_points)):
        for j in range(i + 1, len(corner_points)):
            shot = pair_test_shot(
                corner_points[i], corner_points[j], spec.lmin, align_tol
            )
            if shot is None:
                continue
            core = _overlap_core(
                shot, overhang, (corner_points[i].ctype, corner_points[j].ctype)
            )
            if shape.sat.rect_fraction(core) >= config.min_overlap:
                graph.add_edge(i, j)
    return graph


def _overlap_core(
    shot: Rect, overhang: float, ctypes: tuple[CornerType, CornerType]
) -> Rect:
    """The part of a test shot that must overlap the target.

    Corner points are pushed ``L_th/√2`` outside the boundary, so a test
    shot legitimately overhangs the target on every side one of the two
    corner points pins; the 80 % rule is applied to the shot minus those
    overhangs.  Sides not pinned by either corner point (the min-size
    filler edges of side pairs) do not overhang and are not inset.
    """
    pins_left = any(c.is_left for c in ctypes)
    pins_right = any(not c.is_left for c in ctypes)
    pins_bottom = any(c.is_bottom for c in ctypes)
    pins_top = any(not c.is_bottom for c in ctypes)
    max_dx = shot.width / 2.0 * 0.999
    max_dy = shot.height / 2.0 * 0.999
    return Rect(
        shot.xbl + (min(overhang, max_dx) if pins_left else 0.0),
        shot.ybl + (min(overhang, max_dy) if pins_bottom else 0.0),
        shot.xtr - (min(overhang, max_dx) if pins_right else 0.0),
        shot.ytr - (min(overhang, max_dy) if pins_top else 0.0),
    )


class GraphColoringFracturer(Fracturer):
    """Stage 1 alone: the approximate (possibly CD-violating) fracturing.

    Exposed as a :class:`Fracturer` so the benchmark harness can measure
    how much work refinement does (the ablation in
    ``benchmarks/bench_ops.py``); the full method is
    :class:`repro.fracture.pipeline.ModelBasedFracturer`.
    """

    name = "GC-INIT"

    def __init__(self, config: GraphBuildConfig = GraphBuildConfig()):
        self.config = config
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        shots, diagnostics = approximate_fracture(shape, spec, self.config)
        self._last_extra = diagnostics
        return shots


def approximate_fracture(
    shape: MaskShape,
    spec: FractureSpec,
    config: GraphBuildConfig = GraphBuildConfig(),
) -> tuple[list[Rect], dict]:
    """Full §3 pipeline: RDP → corner points → graph → coloring → shots.

    Returns the initial shot list and a diagnostics dict (vertex counts,
    clique count) that the benchmark tables surface.
    """
    obs = get_recorder()
    with obs.span("init.rdp"):
        simplified = rdp_simplify(shape.polygon, spec.gamma)
    with obs.span("init.corner_points"):
        corner_points = extract_corner_points(simplified, spec.lth)
    with obs.span("init.graph", vertices=len(corner_points)):
        graph = build_compatibility_graph(corner_points, shape, spec, config)
    with obs.span("init.coloring", strategy=config.coloring_strategy):
        cliques = clique_partition(graph, strategy=config.coloring_strategy)
    with obs.span("init.placement"):
        shots: list[Rect] = []
        for clique in cliques:
            shot = shot_from_class(
                [corner_points[v] for v in clique], shape, spec.lmin
            )
            if shot is not None:
                shots.append(shot)
    obs.gauge("coloring.corner_points", len(corner_points))
    obs.gauge("coloring.graph_edges", graph.edge_count())
    obs.gauge("coloring.colors_used", len(cliques))
    diagnostics = {
        "simplified_vertices": len(simplified),
        "corner_points": len(corner_points),
        "graph_edges": graph.edge_count(),
        "cliques": len(cliques),
        "initial_shots": len(shots),
    }
    return shots, diagnostics
