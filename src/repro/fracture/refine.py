"""Iterative shot refinement — Algorithm 1 of the paper.

Drives the move modules until every CD violation is fixed or the
iteration budget runs out, tracking the best solution seen (fewest
failing pixels, cost as tie-break).  The driving cost is Eq. 5 — the
summed intensity gap at failing pixels — which is continuous and hence a
more sensitive progress signal than the failing-pixel count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fracture.add_remove import add_shot, remove_shot
from repro.fracture.bias import bias_all_shots
from repro.fracture.edge_adjust import (
    current_pricing_engine,
    greedy_shot_edge_adjustment,
)
from repro.fracture.merge import merge_shots
from repro.fracture.state import RefinementState
from repro.obs import get_recorder
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

_COST_EPS = 1e-6


@dataclass(frozen=True, slots=True)
class RefineParams:
    """Algorithm 1 knobs: ``Nmax`` iteration budget and the ``NH``
    stagnation horizon after which shots are added/removed."""

    nmax: int = 400
    nh: int = 3

    def __post_init__(self) -> None:
        if self.nmax < 0:
            raise ValueError("nmax must be non-negative")
        if self.nh < 1:
            raise ValueError("nh must be at least 1")


@dataclass(slots=True)
class RefineTrace:
    """Diagnostics of one refinement run (used by ablations and figures)."""

    iterations: int = 0
    cost_history: list[float] = field(default_factory=list)
    failing_history: list[int] = field(default_factory=list)
    edge_moves: int = 0
    bias_steps: int = 0
    shots_added: int = 0
    shots_removed: int = 0
    shots_merged: int = 0
    converged: bool = False


def refine(
    shape: MaskShape,
    spec: FractureSpec,
    initial_shots: list[Rect],
    params: RefineParams = RefineParams(),
    *,
    background: tuple[Rect, ...] | list[Rect] = (),
    active_mask=None,
) -> tuple[list[Rect], RefineTrace]:
    """Run Algorithm 1 and return the best shot list found plus a trace.

    On top of the paper's loop we detect exact state revisits (the moves
    are deterministic, so a revisited shot configuration means a limit
    cycle) and break them by inverting the add/remove decision — the
    best-so-far tracking makes this strictly safe.

    ``background`` and ``active_mask`` select the region-restricted mode
    used for seam stitching (see :class:`RefinementState`): background
    shots contribute dose but are frozen, and cost/failures are counted
    only inside the active mask.  The returned list holds the refined
    *movable* shots only — the caller re-attaches the frozen set.
    """
    obs = get_recorder()
    with obs.span("refine", initial_shots=len(initial_shots)) as span:
        state = RefinementState(
            shape, spec, initial_shots,
            background=background, active_mask=active_mask,
        )
        trace = RefineTrace()
        best_shots = state.snapshot()
        best_key: tuple[int, float] | None = None
        visits: dict[tuple, int] = {}

        # Benchmark fidelity: the "legacy" engine measures the
        # pre-batching code path end to end, so its runs also use the
        # original full-grid report instead of the maintained cost field
        # (identical values, original cost).
        legacy = current_pricing_engine() == "legacy"
        for iteration in range(params.nmax):
            report = state.report_legacy() if legacy else state.report()
            key = (report.total_failing, report.cost)
            if best_key is None or key < best_key:
                best_key = key
                best_shots = state.snapshot()
            trace.cost_history.append(report.cost)
            trace.failing_history.append(report.total_failing)
            trace.iterations = iteration + 1
            if report.total_failing == 0:
                trace.converged = True
                obs.convergence(
                    iteration=iteration, cost=report.cost, failing=0,
                    shots=len(state.shots), operator="converged",
                )
                break

            state_key = _state_hash(state.shots, spec.pitch)
            times_seen = visits.get(state_key, 0) + 1
            visits[state_key] = times_seen
            cycling = times_seen > 1

            if cycling or _stagnated(trace.cost_history, params.nh):
                # Escalate: change the shot count (paper lines 5–11).  When a
                # limit cycle is detected, alternate the decision so repeated
                # visits take different exits.
                prefer_add = report.count_on > report.count_off
                if cycling and times_seen > 2:
                    prefer_add = times_seen % 2 == 0
                if prefer_add:
                    operator = "add"
                    if add_shot(state, report) is not None:
                        trace.shots_added += 1
                        obs.incr("refine.shots_added")
                else:
                    operator = "remove"
                    if remove_shot(state, report) is not None:
                        trace.shots_removed += 1
                        obs.incr("refine.shots_removed")
                merged = merge_shots(state)
                trace.shots_merged += merged
                if merged:
                    obs.incr("refine.shots_merged", merged)
                    operator += "+merge"
            else:
                moved = greedy_shot_edge_adjustment(state, report)
                trace.edge_moves += moved
                if moved == 0:
                    bias_all_shots(state, report)
                    trace.bias_steps += 1
                    obs.incr("refine.bias_steps")
                    operator = "bias"
                else:
                    operator = "edge_adjust"
            obs.convergence(
                iteration=iteration, cost=report.cost,
                failing=report.total_failing, shots=len(state.shots),
                operator=operator,
            )
            # Profile-cache lifecycle: the cache is keyed purely by
            # geometry so it never needs invalidating, but its fill level
            # per iteration is the signal for tuning the size bound.
            obs.gauge(
                "cache.profile.size", state.imap.profile_cache_size
            )

        if not trace.converged and params.nmax > 0:
            # Budget exhausted: report the best solution seen, re-checked.
            state.restore(best_shots)
            final = state.report()
            if best_key is not None and (final.total_failing, final.cost) <= best_key:
                best_shots = state.snapshot()
        elif trace.converged:
            best_shots = state.snapshot()
        span.annotate(
            iterations=trace.iterations, converged=trace.converged,
            final_shots=len(best_shots),
        )
        obs.observe("refine.iterations", trace.iterations)
    return best_shots, trace


def _stagnated(cost_history: list[float], nh: int) -> bool:
    """True when the cost has not improved by > 1e-6 over the last NH
    iterations (Algorithm 1, line 5)."""
    if len(cost_history) <= nh:
        return False
    return cost_history[-nh - 1] - cost_history[-1] < _COST_EPS


def _state_hash(shots: list[Rect], pitch: float) -> tuple:
    """Order-insensitive fingerprint of a shot configuration.

    Coordinates are quantized to a tenth of a pixel so float drift from
    incremental updates cannot mask a revisit.
    """
    quantum = pitch / 10.0
    return tuple(
        sorted(
            tuple(round(c / quantum) for c in shot.as_tuple()) for shot in shots
        )
    )


def reduce_shot_count(
    shape: MaskShape,
    spec: FractureSpec,
    shots: list[Rect],
    repair_params: RefineParams = RefineParams(nmax=80, nh=3),
    max_attempts: int = 8,
    overlap_threshold: float = 0.5,
) -> tuple[list[Rect], int]:
    """Post-refinement shot-count polish: try-remove-and-repair.

    Shots whose area is mostly covered by the other shots are redundancy
    suspects.  Each suspect (most-overlapped first) is removed and a
    short repair refinement runs; the removal sticks only when the result
    is feasible with strictly fewer shots.  Returns the polished shot
    list and the number of removals that stuck.

    This is an extension beyond Algorithm 1 (the paper controls count
    only through MergeShots); it is enabled by default and can be turned
    off via ``RefineConfig(polish=False)`` for paper-faithful ablations.
    """
    obs = get_recorder()
    with obs.span("polish", initial_shots=len(shots)) as span:
        current = list(shots)
        removed_total = 0
        attempts = 0
        improved = True
        while improved and attempts < max_attempts:
            improved = False
            suspects = _redundancy_suspects(current, overlap_threshold)
            for index in suspects:
                if attempts >= max_attempts:
                    break
                attempts += 1
                trial = current[:index] + current[index + 1 :]
                repaired, trace = refine(shape, spec, trial, repair_params)
                if trace.converged and len(repaired) < len(current):
                    removed_total += len(current) - len(repaired)
                    current = repaired
                    improved = True
                    break
        span.annotate(attempts=attempts, polished_away=removed_total)
        obs.incr("polish.attempts", attempts)
        obs.incr("polish.shots_removed", removed_total)
    return current, removed_total


def _redundancy_suspects(shots: list[Rect], threshold: float) -> list[int]:
    """Indices of shots mostly overlapped by other shots, most-covered first.

    Pairwise overlap areas are summed as a cheap upper estimate of the
    covered fraction (double counting only makes a shot *more* suspect).
    """
    scored: list[tuple[float, int]] = []
    for i, shot in enumerate(shots):
        if shot.area <= 0.0:
            scored.append((1.0, i))
            continue
        covered = sum(
            shot.intersection_area(other)
            for j, other in enumerate(shots)
            if j != i
        )
        fraction = covered / shot.area
        if fraction >= threshold:
            scored.append((fraction, i))
    scored.sort(key=lambda item: -item[0])
    return [index for _, index in scored]
