"""Bias all shot edges (paper §4.2).

A cheap whole-solution perturbation to escape local minima without
changing the shot count: when underexposure dominates (more failing
pixels in P_on) every shot is grown by one pixel on every edge; when
overexposure dominates every shot is shrunk, with edges that would drop
the shot below L_min left untouched (footnote 3).

Note on direction: §4.2 of the paper text says "shrink" for the
P_on-dominated case, but that contradicts both physics (failing P_on
pixels are underexposed and need more dose) and the paper's own §4.3,
which *adds* a shot in exactly that situation "since adding a shot is
likely to resolve violations in pixels inside the target shape".  We
implement the physically consistent direction and record the discrepancy
in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.fracture.state import RefinementState
from repro.mask.constraints import FailureReport


def bias_all_shots(
    state: RefinementState,
    report: FailureReport,
    paper_text_direction: bool = False,
) -> None:
    """Grow or shrink every shot edge by one pixel.

    ``paper_text_direction=True`` applies §4.2 exactly as written
    (shrink when P_on failures dominate) for the ablation bench; the
    default is the physically consistent direction.
    """
    pitch = state.spec.pitch
    lmin = state.spec.lmin
    grow = report.count_on > report.count_off
    if paper_text_direction:
        grow = not grow
    for index, shot in enumerate(state.shots):
        if grow:
            new = shot.expanded(pitch)
        else:
            new = shot.shrunk(pitch, lmin)
        if new == shot:
            continue
        # Region-restricted refinements may only bias shots whose dose
        # change stays inside the active mask (the changed dose lives in
        # the union window of the two versions).
        if not state.mutation_allowed(state.imap.union_window(shot, new)):
            continue
        state.replace_shot(index, new)
