"""Common interface shared by the proposed method and all baselines."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport, FractureSpec, check_solution
from repro.mask.shape import MaskShape
from repro.obs import get_recorder


@dataclass(slots=True)
class FractureResult:
    """Outcome of fracturing one target shape.

    ``shots`` is the e-beam shot list; ``report`` the authoritative
    feasibility verdict (recomputed from scratch, not the fracturer's
    internal incremental state); ``runtime_s`` the wall time the paper's
    tables report; ``extra`` free-form per-method diagnostics (iteration
    counts, initial shot counts, …).
    """

    method: str
    shape_name: str
    shots: list[Rect]
    runtime_s: float
    report: FailureReport
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def shot_count(self) -> int:
        return len(self.shots)

    @property
    def feasible(self) -> bool:
        return self.report.feasible

    def summary(self) -> str:
        status = "ok" if self.feasible else f"{self.report.total_failing} failing px"
        return (
            f"{self.method:>12s}  {self.shape_name:<10s}  "
            f"{self.shot_count:3d} shots  {self.runtime_s:7.2f}s  {status}"
        )


class Fracturer(abc.ABC):
    """A mask fracturing method: target shape + spec → shot list."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        """Produce the shot list for ``shape``.  Implemented by subclasses."""

    def fracture(self, shape: MaskShape, spec: FractureSpec) -> FractureResult:
        """Run the method, time it, and verify the result independently."""
        obs = get_recorder()
        self._last_extra: dict[str, Any] = {}
        with obs.span("fracture", method=self.name, shape=shape.name) as span:
            start = time.perf_counter()
            shots = self.fracture_shots(shape, spec)
            runtime = time.perf_counter() - start
            with obs.span("verify"):
                report = check_solution(shots, shape, spec)
            span.annotate(shots=len(shots), feasible=report.feasible)
        obs.incr("fracture.shapes")
        obs.observe("fracture.runtime_s", runtime)
        obs.observe("fracture.shots", len(shots))
        return FractureResult(
            method=self.name,
            shape_name=shape.name,
            shots=shots,
            runtime_s=runtime,
            report=report,
            extra=dict(getattr(self, "_last_extra", {})),
        )
