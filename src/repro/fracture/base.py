"""Common interface shared by the proposed method and all baselines."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport, FractureSpec, check_solution
from repro.mask.shape import MaskShape
from repro.obs import get_recorder


@dataclass(slots=True)
class FractureResult:
    """Outcome of fracturing one target shape.

    ``shots`` is the e-beam shot list; ``report`` the authoritative
    feasibility verdict (recomputed from scratch, not the fracturer's
    internal incremental state); ``runtime_s`` the wall time the paper's
    tables report; ``extra`` free-form per-method diagnostics (iteration
    counts, initial shot counts, …).
    """

    method: str
    shape_name: str
    shots: list[Rect]
    runtime_s: float
    report: FailureReport
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def shot_count(self) -> int:
        return len(self.shots)

    @property
    def feasible(self) -> bool:
        return self.report.feasible

    def summary(self) -> str:
        status = "ok" if self.feasible else f"{self.report.total_failing} failing px"
        return (
            f"{self.method:>12s}  {self.shape_name:<10s}  "
            f"{self.shot_count:3d} shots  {self.runtime_s:7.2f}s  {status}"
        )


class Fracturer(abc.ABC):
    """A mask fracturing method: target shape + spec → shot list."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    #: Optional :class:`repro.fracture.cache.FractureCache`.  When set,
    #: :meth:`fracture` serves placement-invariant hits without running
    #: the method or re-verifying, and stores fresh results back.
    cache = None

    #: Registry name used in cache keys (falls back to ``name``) — set by
    #: :func:`repro.methods.make_fracturer` so aliased registrations key
    #: consistently.
    cache_method: str | None = None

    #: Window size folded into cache keys by windowed wrappers (a tiled
    #: run is only interchangeable with an identically windowed one).
    cache_window_nm: float | None = None

    def _cache_key_method(self) -> str:
        return self.cache_method or self.name

    def fracture_cached(self, shape: MaskShape, spec: FractureSpec) -> FractureResult | None:
        """Cache lookup for ``shape``; ``None`` when absent or missing."""
        if self.cache is None:
            return None
        obs = get_recorder()
        hit = self.cache.get_result(
            shape.polygon,
            spec,
            method=self._cache_key_method(),
            window_nm=self.cache_window_nm,
            shape_name=shape.name,
        )
        if hit is None:
            obs.incr("cache.fracture.misses")
            return None
        obs.incr("cache.fracture.hits")
        obs.incr("fracture.shapes")
        obs.observe("fracture.shots", hit.shot_count)
        return hit

    @abc.abstractmethod
    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        """Produce the shot list for ``shape``.  Implemented by subclasses."""

    def fracture(self, shape: MaskShape, spec: FractureSpec) -> FractureResult:
        """Run the method, time it, and verify the result independently.

        With :attr:`cache` set, a placement-invariant hit short-circuits
        both the method and the verification (the stored verdict was
        computed from scratch on identical geometry the first time).
        """
        cached = self.fracture_cached(shape, spec)
        if cached is not None:
            return cached
        obs = get_recorder()
        self._last_extra: dict[str, Any] = {}
        with obs.span("fracture", method=self.name, shape=shape.name) as span:
            start = time.perf_counter()
            shots = self.fracture_shots(shape, spec)
            runtime = time.perf_counter() - start
            with obs.span("verify"):
                report = check_solution(shots, shape, spec)
            span.annotate(shots=len(shots), feasible=report.feasible)
        obs.incr("fracture.shapes")
        obs.observe("fracture.runtime_s", runtime)
        obs.observe("fracture.shots", len(shots))
        result = FractureResult(
            method=self.name,
            shape_name=shape.name,
            shots=shots,
            runtime_s=runtime,
            report=report,
            extra=dict(getattr(self, "_last_extra", {})),
        )
        if self.cache is not None:
            self.cache.put_result(
                shape.polygon,
                spec,
                result,
                window_nm=self.cache_window_nm,
                method=self._cache_key_method(),
            )
        return result
