"""Mutable working state shared by the refinement moves (paper §4).

Holds the shot list, the incrementally maintained intensity map and the
pixel classification, and provides the *windowed* cost evaluation that
makes greedy edge adjustment affordable: the cost change of an edge move
only depends on pixels within the blur reach of the two shot versions.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np

from repro.ebeam.intensity_map import IntensityMap, ProfileKey
from repro.geometry.rect import Rect
from repro.kernels import get_backend
from repro.mask.constraints import FailureReport, FractureSpec, failure_report
from repro.mask.pixels import PixelSets
from repro.mask.shape import MaskShape
from repro.obs import get_recorder


class EdgeMoveCandidate(NamedTuple):
    """One validated candidate edge move, ready for batched pricing.

    ``old``/``new`` are the shot before and after the move and ``window``
    the narrow index window where they differ — everything the pricing
    engine needs without touching the (mutable) shot list again.
    """

    index: int
    edge: str
    delta: float
    window: tuple[slice, slice]
    keys: tuple[ProfileKey, ProfileKey, ProfileKey]


class RefinementState:
    """Shots + intensity + pixel classes for one refinement run.

    The optional *region restriction* turns a full-shape refinement into
    a seam repair: ``background`` shots contribute dose but are frozen —
    they are not in :attr:`shots`, so no move module can adjust, remove
    or merge them — and ``active_mask`` demotes every pixel outside the
    mask to don't-care (its cost sign ``S`` becomes 0, the exact
    mechanism the γ band already uses), so the Eq. 5 cost, the failure
    report and every candidate price see only the active region.  To
    keep the restriction sound, every mutation whose dose-effect window
    leaves the mask is forbidden (:meth:`mutation_allowed`) — otherwise
    a move could damage pixels the restricted cost cannot see.  Both
    parameters default to the unrestricted behaviour.
    """

    __slots__ = (
        "shape", "spec", "pixels", "imap", "shots", "background",
        "active_mask",
        "_cost_sign", "_cost_bias", "_cost_base", "_scratch",
        "_gather_memo", "_delta_memo", "_cost_integral", "_active_integral",
        "_field_scratch", "_active_scratch", "_crop",
    )

    def __init__(
        self,
        shape: MaskShape,
        spec: FractureSpec,
        shots: list[Rect],
        *,
        background: tuple[Rect, ...] | list[Rect] = (),
        active_mask: np.ndarray | None = None,
    ):
        self.shape = shape
        self.spec = spec
        pixels: PixelSets = shape.pixels(spec.gamma)
        if active_mask is not None:
            if active_mask.shape != shape.grid.shape:
                raise ValueError(
                    f"active mask shape {active_mask.shape} != grid "
                    f"shape {shape.grid.shape}"
                )
            pixels = PixelSets(
                on=pixels.on & active_mask,
                off=pixels.off & active_mask,
                band=pixels.band | ~active_mask,
            )
        self.pixels = pixels
        self.active_mask = active_mask
        self.imap = IntensityMap(shape.grid, spec.sigma)
        self.background: tuple[Rect, ...] = tuple(background)
        for shot in self.background:
            self.imap.add(shot)
        self.shots: list[Rect] = list(shots)
        for shot in self.shots:
            self.imap.add(shot)
        # Signed-clamp form of the Eq. 5 cost field: with S = +1 on
        # P_off, −1 on P_on and 0 on don't-care pixels, the per-pixel
        # cost is max(S·I − S·ρ, 0) — an off pixel contributes
        # max(I−ρ, 0), an on pixel max(ρ−I, 0), both exactly the failing
        # gap and 0 otherwise.  ``_cost_base`` holds S·I − S·ρ for the
        # *current* I_tot (refreshed on the touched window after every
        # mutation), so pricing a candidate patch P reduces to
        # Σ max(S·P + base, 0) — three elementwise kernels and a sum,
        # with no boolean masking.
        self._cost_sign = self.pixels.off.astype(np.float64) - self.pixels.on
        self._cost_bias = self._cost_sign * spec.rho
        # Region-restricted refinements confine every nonzero cost-field
        # entry to the active mask's bounding box (S is 0 outside the
        # mask, so S·I − S·ρ is exactly 0.0 there).  When the kernel
        # backend opts in, the per-iteration field work — base refresh,
        # report, cost/active prefix sums — runs on that box only, so
        # stitch cost scales with the seam area instead of the grid.
        # ``_crop`` is ``(r0, r1, c0, c1)`` half-open pixel bounds, or
        # None for full-grid behaviour (the scalar oracle path).
        self._crop: tuple[int, int, int, int] | None = None
        if active_mask is not None and get_backend().crop_stitch_field:
            rows = np.flatnonzero(active_mask.any(axis=1))
            cols = np.flatnonzero(active_mask.any(axis=0))
            if rows.size and cols.size:
                self._crop = (
                    int(rows[0]), int(rows[-1]) + 1,
                    int(cols[0]), int(cols[-1]) + 1,
                )
        ny, nx = self._cost_sign.shape
        if self._crop is not None:
            # Out-of-box entries are never rewritten, so they must start
            # at their exact value: 0.0 (see above).
            self._cost_base = np.zeros_like(self._cost_sign)
            r0, r1, c0, c1 = self._crop
            self._field_scratch = np.empty((r1 - r0, c1 - c0), dtype=np.float64)
            self._active_scratch = np.empty((r1 - r0, c1 - c0), dtype=bool)
            obs = get_recorder()
            obs.gauge("kernels.stitch_grid_px", float(ny * nx))
            obs.gauge(
                "kernels.stitch_bbox_px", float((r1 - r0) * (c1 - c0))
            )
        else:
            self._cost_base = np.empty_like(self._cost_sign)
            self._field_scratch = np.empty_like(self._cost_sign)
            self._active_scratch = np.empty((ny, nx), dtype=bool)
        self._scratch = np.empty(0, dtype=np.float64)
        # Candidate geometry memo (windows + profile keys per shot rect)
        # and reused prefix-sum buffers — rebuilt contents every greedy
        # pass, but the allocations are paid once.
        self._gather_memo: dict[tuple, tuple] = {}
        self._delta_memo: dict[tuple, np.ndarray] = {}
        self._cost_integral = np.zeros((ny + 1, nx + 1), dtype=np.float64)
        self._active_integral = np.zeros((ny + 1, nx + 1), dtype=np.int32)
        self._refresh_cost_base()

    def _refresh_cost_base(
        self, window: tuple[slice, slice] | None = None
    ) -> None:
        """Recompute ``S·I − S·ρ`` where I_tot changed (or everywhere)."""
        if window is None:
            if self._crop is not None:
                # Everything outside the crop box is exactly 0.0 and was
                # initialized so; refresh the box only.
                r0, r1, c0, c1 = self._crop
                window = (slice(r0, r1), slice(c0, c1))
            else:
                np.multiply(
                    self._cost_sign, self.imap.total, out=self._cost_base
                )
                self._cost_base -= self._cost_bias
                return
        base = self._cost_sign[window] * self.imap.total[window]
        base -= self._cost_bias[window]
        self._cost_base[window] = base

    # -- cost evaluation --------------------------------------------------

    def report(self) -> FailureReport:
        """Full-grid Eq. 4 / Eq. 5 evaluation of the current state.

        Reads the maintained ``_cost_base`` field instead of re-deriving
        everything from I_tot: an on pixel fails iff ``ρ − I > 0`` and an
        off pixel iff ``I − ρ ≥ 0``, which are exactly ``base > 0`` /
        ``base ≥ 0`` (the subtraction happens around ρ, where it is exact
        by Sterbenz' lemma, so the masks match
        :func:`~repro.mask.constraints.failure_report` bit for bit), and
        the Eq. 5 cost is the sum of the clamped base field.
        """
        if self._crop is not None:
            # Cropped evaluation: pixels outside the active-mask box are
            # don't-care (S = 0), so they can neither fail nor carry
            # cost; the returned masks are still full-size for the
            # add/remove consumers.  The cost sum runs over the box only
            # — the excluded terms are exact zeros, and NumPy's pairwise
            # summation of the box slice is the documented accumulation
            # order for cropped states (gated against the full-grid
            # oracle at the shot level, not the ULP level).
            r0, r1, c0, c1 = self._crop
            box = (slice(r0, r1), slice(c0, c1))
            base_box = self._cost_base[box]
            fail_on = np.zeros(self._cost_base.shape, dtype=bool)
            fail_off = np.zeros(self._cost_base.shape, dtype=bool)
            fail_on[box] = self.pixels.on[box] & (base_box > 0.0)
            fail_off[box] = self.pixels.off[box] & (base_box >= 0.0)
            cost = float(
                np.maximum(base_box, 0.0, out=self._field_scratch).sum()
            )
        else:
            base = self._cost_base
            fail_on = self.pixels.on & (base > 0.0)
            fail_off = self.pixels.off & (base >= 0.0)
            cost = float(np.maximum(base, 0.0).sum())
        return FailureReport(
            fail_on=fail_on,
            fail_off=fail_off,
            cost=cost,
            _count_on=int(np.count_nonzero(fail_on)),
            _count_off=int(np.count_nonzero(fail_off)),
        )

    def report_legacy(self) -> FailureReport:
        """Pre-batching :meth:`report`, re-deriving everything from I_tot.

        Identical values (see :meth:`report`); preserved so benchmark runs
        of the ``"legacy"`` pricing engine pay the original per-iteration
        evaluation cost rather than inheriting this PR's maintained cost
        field.
        """
        return failure_report(self.imap.total, self.pixels, self.spec.rho)

    def window_cost(
        self, window: tuple[slice, slice], total_window: np.ndarray
    ) -> float:
        """Eq. 5 cost restricted to one index window.

        ``total_window`` is the (hypothetical or current) I_tot values on
        that window, so candidate moves can be priced without mutating
        the map.
        """
        clamped = total_window * self._cost_sign[window]
        clamped -= self._cost_bias[window]
        np.maximum(clamped, 0.0, out=clamped)
        return float(clamped.sum())

    def score_move_patch(
        self, window: tuple[slice, slice], patch_delta: np.ndarray
    ) -> float:
        """Eq. 5 cost of ``I_tot + patch_delta`` on the window.

        Destroys ``patch_delta`` (it becomes the clamped cost field) so
        the pricing loops run entirely in-place.  Both pricing engines
        run exactly this operation sequence, which is what makes their
        Δcosts bit-identical: same kernels, same order, same shapes.
        """
        patch_delta *= self._cost_sign[window]
        patch_delta += self._cost_base[window]
        np.maximum(patch_delta, 0.0, out=patch_delta)
        return float(patch_delta.sum())

    def patch_bound(self) -> float:
        """Upper bound on |ΔI| of any single-pitch edge move, anywhere.

        The moved-axis profile difference is ``0.5·(erf((t−a−Δp)/σ) −
        erf((t−a)/σ))`` and erf is (2/√π)-Lipschitz, so no pixel's
        intensity changes by more than ``Δp/(σ·√π)``; the fixed-axis
        profile is < 1.  Piecewise-linear LUT interpolation preserves the
        bound (chord slopes never exceed the true maximum slope).
        """
        return (self.spec.pitch / self.spec.sigma) / math.sqrt(math.pi)

    def active_integral(self) -> np.ndarray:
        """Prefix counts of pixels a ±Δp move could possibly affect.

        A pixel with ``base ≤ −patch_bound`` is clamped to zero cost both
        before and after any single-pitch move (``max(base ± |ΔI|, 0) =
        0`` exactly), so it contributes *exactly nothing* to any Δcost.
        Candidate windows are cropped to the bounding box of the
        remaining "active" pixels — typically a thin band around the
        contour — before the per-pixel scoring runs.  Rebuild per greedy
        pass, like :meth:`cost_integral`.
        """
        # int32 is plenty (counts are bounded by the pixel count) and
        # halves the cumsum traffic; the buffer (zero first row/column,
        # interior fully overwritten — box interior only when cropped,
        # the rest stays at its exact initial value) is reused across
        # passes and only valid until the next call.
        integral = self._active_integral
        if self._crop is not None:
            # Outside the box, base ≡ 0 > −patch_bound: those pixels
            # count as "active", but crop_to_active consumes only
            # *differences* of the prefix counts, and every candidate
            # window lies inside the active mask (gather/mutation
            # guards), where box-local and full prefix counts differ by
            # a constant per row/column that cancels.
            r0, r1, c0, c1 = self._crop
            box = (slice(r0, r1), slice(c0, c1))
            interior = integral[r0 + 1 : r1 + 1, c0 + 1 : c1 + 1]
            active = np.greater(
                self._cost_base[box], -self.patch_bound(),
                out=self._active_scratch,
            )
            np.cumsum(active, axis=0, out=interior)
            np.cumsum(interior, axis=1, out=interior)
            # The box's leading guard row/column and everything outside
            # the box stay at the buffer's initial zeros (they are never
            # written in cropped mode), which is their exact value.
            return integral
        active = np.greater(
            self._cost_base, -self.patch_bound(), out=self._active_scratch
        )
        np.cumsum(active, axis=0, out=integral[1:, 1:])
        np.cumsum(integral[1:, 1:], axis=1, out=integral[1:, 1:])
        return integral

    @staticmethod
    def crop_to_active(
        active_integral: np.ndarray, window: tuple[slice, slice]
    ) -> tuple[int, int, int, int] | None:
        """Row/column sub-range of ``window`` holding all active pixels.

        Returns ``(r0, r1, c0, c1)`` offsets within the window, or
        ``None`` when the window contains no active pixel (the move's
        Δcost is exactly zero).  Marginal counts come straight from the
        2-D prefix sums, so the crop costs two small 1-D subtractions.
        """
        ys, xs = window
        rowcum = (
            active_integral[ys.start : ys.stop + 1, xs.stop]
            - active_integral[ys.start : ys.stop + 1, xs.start]
        )
        if rowcum[-1] == rowcum[0]:
            return None
        # ndarray.searchsorted skips the np.searchsorted dispatch layer;
        # this runs four times per candidate.
        r0 = int(rowcum.searchsorted(rowcum[0], side="right")) - 1
        r1 = int(rowcum.searchsorted(rowcum[-1], side="left"))
        colcum = (
            active_integral[ys.stop, xs.start : xs.stop + 1]
            - active_integral[ys.start, xs.start : xs.stop + 1]
        )
        c0 = int(colcum.searchsorted(colcum[0], side="right")) - 1
        c1 = int(colcum.searchsorted(colcum[-1], side="left"))
        return r0, r1, c0, c1

    def cost_integral(self) -> np.ndarray:
        """Prefix sums of the per-pixel Eq. 5 cost field.

        ``integral[y2, x2] - integral[y1, x2] - integral[y2, x1] +
        integral[y1, x1]`` gives the *current* cost of any index window
        in O(1) — edge pricing then only has to evaluate the candidate
        side.  Rebuild after every committed change (one per refinement
        iteration is enough; GreedyShotEdgeAdjustment does so itself).
        """
        integral = self._cost_integral
        if self._crop is not None:
            # Cost is exactly 0.0 outside the crop box (S = 0 there), so
            # the prefix sums only have to cover the box: entries above
            # or left of it are exact zeros from the buffer's init, and
            # any lookup whose corner lands beyond the box is clamped to
            # the box edge (same value — nothing accumulates past it).
            # Work per iteration scales with the seam-band bounding box,
            # not the grid.
            r0, r1, c0, c1 = self._crop
            box = (slice(r0, r1), slice(c0, c1))
            interior = integral[r0 + 1 : r1 + 1, c0 + 1 : c1 + 1]
            cost_field = np.maximum(
                self._cost_base[box], 0.0, out=self._field_scratch
            )
            np.cumsum(cost_field, axis=0, out=interior)
            np.cumsum(interior, axis=1, out=interior)
            return integral
        cost_field = np.maximum(self._cost_base, 0.0, out=self._field_scratch)
        # Reused buffer: zero first row/column, interior fully
        # overwritten; only valid until the next call.
        np.cumsum(cost_field, axis=0, out=integral[1:, 1:])
        np.cumsum(integral[1:, 1:], axis=1, out=integral[1:, 1:])
        return integral

    def window_cost_from_integral(
        self, integral: np.ndarray, window: tuple[slice, slice]
    ) -> float:
        ys, xs = window
        y0, y1 = ys.start, ys.stop
        x0, x1 = xs.start, xs.stop
        if self._crop is not None:
            # Clamp to the crop box: the cost field is exactly zero past
            # it, so the true prefix value at any outside corner equals
            # the value at the clamped edge (which the cropped buffer
            # holds; beyond it the buffer is stale zeros).
            r1, c1 = self._crop[1], self._crop[3]
            y0, y1 = min(y0, r1), min(y1, r1)
            x0, x1 = min(x0, c1), min(x1, c1)
        return float(
            integral[y1, x1]
            - integral[y0, x1]
            - integral[y1, x0]
            + integral[y0, x0]
        )

    def edge_move_delta_cost(
        self,
        index: int,
        edge: str,
        delta: float,
        cost_integral: np.ndarray | None = None,
        active_integral: np.ndarray | None = None,
    ) -> float | None:
        """Cost change of moving one edge of shot ``index`` by ``delta``.

        Returns ``None`` for invalid moves (shot would fall below L_min or
        invert).  Does not modify the state.  ``cost_integral`` (from
        :meth:`cost_integral`, current as of the last committed change)
        makes the old-cost side an O(1) lookup; ``active_integral`` (from
        :meth:`active_integral`, only valid for ``|delta| ≤ Δp``) crops
        the scoring to the active sub-window.
        """
        shot = self.shots[index]
        try:
            candidate = shot.moved_edge(edge, delta)
        except ValueError:
            return None
        if not candidate.meets_min_size(self.spec.lmin):
            return None
        if self.active_mask is not None and not self.mutation_allowed(
            self.imap.edge_move_window(shot, candidate, edge)
        ):
            return None
        window, patch_delta = self.imap.edge_move_delta(shot, candidate, edge)
        if active_integral is not None:
            crop = self.crop_to_active(active_integral, window)
            if crop is None:
                return 0.0
            r0, r1, c0, c1 = crop
            ys, xs = window
            window = (
                slice(ys.start + r0, ys.start + r1),
                slice(xs.start + c0, xs.start + c1),
            )
            # Contiguous copy so the clamped sum reduces in the same
            # order as the batched engine's scratch segment.
            patch_delta = np.ascontiguousarray(patch_delta[r0:r1, c0:c1])
        if cost_integral is not None:
            old_cost = self.window_cost_from_integral(cost_integral, window)
        else:
            old_cost = self.window_cost(window, self.imap.total[window])
        return self.score_move_patch(window, patch_delta) - old_cost

    # -- legacy (pre-batching) pricing --------------------------------------

    def window_cost_legacy(
        self, window: tuple[slice, slice], total_window: np.ndarray
    ) -> float:
        """Eq. 5 window cost in the original boolean-masking formulation.

        Preserved verbatim as the benchmark baseline: build the failing
        mask, fancy-index the gaps out and sum them.  Numerically equal
        to :meth:`window_cost` (same per-pixel gaps), but every call pays
        two comparisons, two mask combines and a gather.
        """
        rho = self.spec.rho
        on = self.pixels.on[window]
        off = self.pixels.off[window]
        fail = (on & (total_window < rho)) | (off & (total_window >= rho))
        if not fail.any():
            return 0.0
        return float(np.abs(total_window[fail] - rho).sum())

    def edge_move_delta_cost_legacy(
        self,
        index: int,
        edge: str,
        delta: float,
        cost_integral: np.ndarray | None = None,
    ) -> float | None:
        """Pre-batching candidate pricing, preserved as the baseline.

        Exactly the original :meth:`edge_move_delta_cost`: full (uncropped)
        windows, an allocated ``total + patch`` array and the
        boolean-masking window cost.  Run under ``profile_caching(False)``
        this reproduces the pre-engine pricing path end to end — the
        benchmark's "before" measurement.
        """
        shot = self.shots[index]
        try:
            candidate = shot.moved_edge(edge, delta)
        except ValueError:
            return None
        if not candidate.meets_min_size(self.spec.lmin):
            return None
        window, patch_delta = self.imap.edge_move_delta(shot, candidate, edge)
        total_window = self.imap.total[window]
        if cost_integral is not None:
            old_cost = self.window_cost_from_integral(cost_integral, window)
        else:
            old_cost = self.window_cost_legacy(window, total_window)
        new_cost = self.window_cost_legacy(window, total_window + patch_delta)
        return new_cost - old_cost

    def cost_integral_legacy(self) -> np.ndarray:
        """Pre-batching :meth:`cost_integral`, preserved as the baseline.

        Rebuilds the failing mask and cost field from the raw intensity
        map and allocates a fresh integral every call, exactly as the
        original did.  Bit-identical values to :meth:`cost_integral`
        (``max(base, 0)`` equals ``where(fail, |I - ρ|, 0)`` per pixel —
        see :meth:`report`), so the legacy engine prices the same numbers
        while paying the original per-iteration rebuild cost.
        """
        rho = self.spec.rho
        total = self.imap.total
        fail = (self.pixels.on & (total < rho)) | (
            self.pixels.off & (total >= rho)
        )
        cost_field = np.where(fail, np.abs(total - rho), 0.0)
        integral = np.zeros(
            (cost_field.shape[0] + 1, cost_field.shape[1] + 1), dtype=np.float64
        )
        np.cumsum(cost_field, axis=0, out=integral[1:, 1:])
        np.cumsum(integral[1:, 1:], axis=1, out=integral[1:, 1:])
        return integral

    # -- batched pricing ----------------------------------------------------

    def make_edge_move_candidate(
        self, index: int, edge: str, delta: float
    ) -> EdgeMoveCandidate | None:
        """Validate one edge move and package it for batched pricing.

        Returns ``None`` under the same conditions for which
        :meth:`edge_move_delta_cost` does (inverted shot or L_min
        violation), so the two pricing paths see identical candidates.
        """
        shot = self.shots[index]
        try:
            candidate = shot.moved_edge(edge, delta)
        except ValueError:
            return None
        if not candidate.meets_min_size(self.spec.lmin):
            return None
        window = self.imap.edge_move_window(shot, candidate, edge)
        if not self.mutation_allowed(window):
            return None
        keys = self.imap.edge_move_profile_keys(shot, candidate, edge, window)
        return EdgeMoveCandidate(index, edge, delta, window, keys)

    def edge_pricing_window(
        self, shot: Rect, edge: str
    ) -> tuple[slice, slice]:
        """Window the ±Δp moves of one edge can influence.

        Spans one pitch *outward* of the edge plus the blur reach — the
        geometry the greedy pass uses to skip edges whose neighbourhood
        carries no failure cost (a move can only reduce cost where old
        cost is positive).
        """
        grid = self.imap.grid
        reach = self.imap.reach
        pitch = self.spec.pitch
        if edge == "left":
            return (
                grid.y_span_to_slice(shot.ybl, shot.ytr, reach),
                grid.x_span_to_slice(shot.xbl - pitch, shot.xbl, reach),
            )
        if edge == "right":
            return (
                grid.y_span_to_slice(shot.ybl, shot.ytr, reach),
                grid.x_span_to_slice(shot.xtr, shot.xtr + pitch, reach),
            )
        if edge == "bottom":
            return (
                grid.y_span_to_slice(shot.ybl - pitch, shot.ybl, reach),
                grid.x_span_to_slice(shot.xbl, shot.xtr, reach),
            )
        return (
            grid.y_span_to_slice(shot.ytr, shot.ytr + pitch, reach),
            grid.x_span_to_slice(shot.xbl, shot.xtr, reach),
        )

    def _build_move_geometry(self, shot: Rect) -> tuple:
        """Pricing regions, windows and profile keys of a shot's ±Δp
        edge moves.

        Computed with direct scalar math — per candidate this is the
        equivalent of ``moved_edge`` + ``meets_min_size`` +
        ``edge_move_window`` without intermediate :class:`Rect`
        allocations — and memoized per shot rectangle (pure geometry, so
        no invalidation is ever needed; see :meth:`gather_edge_moves`).
        """
        pitch = self.spec.pitch
        lmin = self.spec.lmin
        grid = self.imap.grid
        reach = self.imap.reach
        xbl, ybl, xtr, ytr = shot.xbl, shot.ybl, shot.xtr, shot.ytr
        groups: list[tuple] = []
        if ytr - ybl >= lmin:
            for edge in ("left", "right"):
                region = self.edge_pricing_window(shot, edge)
                rows = region[0]
                k_fixed = ("y", ybl, ytr, rows.start, rows.stop)
                coord = xbl if edge == "left" else xtr
                moves: list[tuple] = []
                for delta in (pitch, -pitch):
                    moved = coord + delta
                    if edge == "left":
                        new_lo, new_hi = moved, xtr
                    else:
                        new_lo, new_hi = xbl, moved
                    if new_hi - new_lo < lmin:
                        continue
                    cols = grid.x_span_to_slice(
                        min(coord, moved), max(coord, moved), reach
                    )
                    key_cols = (cols.start, cols.stop)
                    moves.append((
                        delta, (rows, cols),
                        (
                            ("x", xbl, xtr) + key_cols,
                            ("x", new_lo, new_hi) + key_cols,
                            k_fixed,
                        ),
                    ))
                groups.append((edge, region, tuple(moves)))
        if xtr - xbl >= lmin:
            for edge in ("bottom", "top"):
                region = self.edge_pricing_window(shot, edge)
                cols = region[1]
                k_fixed = ("x", xbl, xtr, cols.start, cols.stop)
                coord = ybl if edge == "bottom" else ytr
                moves = []
                for delta in (pitch, -pitch):
                    moved = coord + delta
                    if edge == "bottom":
                        new_lo, new_hi = moved, ytr
                    else:
                        new_lo, new_hi = ybl, moved
                    if new_hi - new_lo < lmin:
                        continue
                    rows = grid.y_span_to_slice(
                        min(coord, moved), max(coord, moved), reach
                    )
                    key_rows = (rows.start, rows.stop)
                    moves.append((
                        delta, (rows, cols),
                        (
                            ("y", ybl, ytr) + key_rows,
                            ("y", new_lo, new_hi) + key_rows,
                            k_fixed,
                        ),
                    ))
                groups.append((edge, region, tuple(moves)))
        return tuple(groups)

    def gather_edge_moves(
        self, cost_integral: np.ndarray
    ) -> list[EdgeMoveCandidate]:
        """All valid ±Δp edge-move candidates worth pricing, in the same
        (shot, edge, +Δp, −Δp) order the scalar loop enumerates.

        Candidate geometry comes from a per-rectangle memo (most shots
        do not move between greedy passes); only the skip test — edges
        whose pricing region carries no failure cost can never yield an
        accepted move — reads the current cost integral.  In
        region-restricted mode, moves whose effect window leaves the
        active mask are dropped before pricing (they could never be
        applied — see :meth:`mutation_allowed` — so pricing them would
        only inflate the candidate count the seam stitch is supposed to
        keep proportional to the seam area).
        """
        memo = self._gather_memo
        mask = self.active_mask
        crop = self._crop
        candidates: list[EdgeMoveCandidate] = []
        append = candidates.append
        for index, shot in enumerate(self.shots):
            key = (shot.xbl, shot.ybl, shot.xtr, shot.ytr)
            groups = memo.get(key)
            if groups is None:
                if len(memo) >= 4096:
                    memo.clear()
                groups = memo[key] = self._build_move_geometry(shot)
            for edge, (ys, xs), moves in groups:
                y0, y1, x0, x1 = ys.start, ys.stop, xs.start, xs.stop
                if crop is not None:
                    # Pricing regions reach one pitch + blur outside the
                    # shot and can leave the crop box; clamp like
                    # window_cost_from_integral (zero cost past the box).
                    y0, y1 = min(y0, crop[1]), min(y1, crop[1])
                    x0, x1 = min(x0, crop[3]), min(x1, crop[3])
                if (
                    cost_integral[y1, x1]
                    - cost_integral[y0, x1]
                    - cost_integral[y1, x0]
                    + cost_integral[y0, x0]
                ) <= 0.0:
                    continue
                for delta, window, keys in moves:
                    if mask is not None and not mask[window].all():
                        continue
                    append(EdgeMoveCandidate(index, edge, delta, window, keys))
        return candidates

    def price_edge_moves(
        self,
        candidates: list[EdgeMoveCandidate],
        cost_integral: np.ndarray | None = None,
        active_integral: np.ndarray | None = None,
    ) -> np.ndarray:
        """Δcost of every candidate, priced with one batched LUT pass.

        Equivalent to calling :meth:`edge_move_delta_cost` per candidate
        (the scalar oracle) but structured for throughput: all 1-D
        profile arguments of the sweep are concatenated and interpolated
        in a single LUT evaluation (via the profile cache), and each
        candidate's windowed Eq. 5 Δcost is then scored from cached
        profiles.  When the kernel backend provides fused pricing, the
        scoring itself runs as one gather/scatter clamped-sum kernel
        over all candidates' contour bands
        (:meth:`~repro.kernels.backend.KernelBackend.clamped_band_sums`);
        otherwise (the ``scalar`` backend) each candidate is scored by
        the per-candidate loop.  Both are bit-identical to the scalar
        path — the profiles, patches and window costs go through the
        same elementwise operations and per-candidate pairwise sums.
        """
        backend = get_backend()
        if (
            backend.fused_pricing
            and cost_integral is not None
            and active_integral is not None
        ):
            return self._price_edge_moves_fused(
                candidates, cost_integral, active_integral, backend
            )
        return self._price_edge_moves_loop(
            candidates, cost_integral, active_integral
        )

    def _price_edge_moves_fused(
        self,
        candidates: list[EdgeMoveCandidate],
        cost_integral: np.ndarray,
        active_integral: np.ndarray,
        backend,
    ) -> np.ndarray:
        """Batch scoring via the backend's fused clamped-sum kernel.

        The per-candidate Python work shrinks to gathering geometry:
        crop each window to its active sub-band and collect the two 1-D
        profile factors whose outer product is the candidate's patch.
        The entire elementwise Eq. 5 pipeline — patch, sign gather, base
        gather, clamp — then runs once over one contiguous buffer
        holding every candidate's contour band.

        The gather/scatter layout pays per-element index arithmetic to
        eliminate per-candidate call overhead, so it wins when the
        cropped bands are thin (the seam-stitch/contour regime, where
        the loop's ~6 NumPy calls per candidate dominate) and loses to
        in-place slice scoring when bands are bulky.  The batch knows
        its exact element count after cropping, so it picks per batch:
        mean band size ≤ ``backend.fused_band_limit`` → fused kernel,
        larger → in-place scoring of the already-gathered factors.
        Both score with identical elementwise ops and per-candidate
        pairwise sums, so the choice never changes a single bit.
        """
        imap = self.imap
        ncand = len(candidates)
        get_recorder().incr("intensity.edge_deltas", ncand)
        costs = np.zeros(ncand, dtype=np.float64)
        if not ncand:
            return costs
        caching = imap.profile_cache_enabled
        if caching:
            imap.ensure_profiles(key for c in candidates for key in c.keys)
        delta_profile = imap.delta_profile
        profile = imap.profile
        # Per-candidate geometry of the cropped windows, plus the 1-D
        # row/column factors, laid out candidate-major for the kernel.
        rows = np.zeros(ncand, dtype=np.int64)
        cols = np.zeros(ncand, dtype=np.int64)
        y0s = np.zeros(ncand, dtype=np.int64)
        x0s = np.zeros(ncand, dtype=np.int64)
        wr0 = np.zeros(ncand, dtype=np.intp)
        wr1 = np.zeros(ncand, dtype=np.intp)
        wc0 = np.zeros(ncand, dtype=np.intp)
        wc1 = np.zeros(ncand, dtype=np.intp)
        kept: list[int] = []
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        for i, cand in enumerate(candidates):
            _, edge, _, (ys, xs), (k_old, k_new, k_fixed) = cand
            y_lo = ys.start
            x_lo = xs.start
            # crop_to_active, inlined (see _price_edge_moves_loop).
            rowcum = (
                active_integral[y_lo : ys.stop + 1, xs.stop]
                - active_integral[y_lo : ys.stop + 1, x_lo]
            )
            if rowcum[-1] == rowcum[0]:
                continue
            r0 = int(rowcum.searchsorted(rowcum[0], side="right")) - 1
            r1 = int(rowcum.searchsorted(rowcum[-1], side="left"))
            colcum = (
                active_integral[ys.stop, x_lo : xs.stop + 1]
                - active_integral[y_lo, x_lo : xs.stop + 1]
            )
            c0 = int(colcum.searchsorted(colcum[0], side="right")) - 1
            c1 = int(colcum.searchsorted(colcum[-1], side="left"))
            delta = delta_profile(k_old, k_new, caching)
            p_fixed = profile(k_fixed) if not caching else imap.cached_profile(
                k_fixed
            )
            if edge in ("left", "right"):
                row_parts.append(p_fixed[r0:r1])
                col_parts.append(delta[c0:c1])
            else:
                row_parts.append(delta[r0:r1])
                col_parts.append(p_fixed[c0:c1])
            kept.append(i)
            rows[i] = r1 - r0
            cols[i] = c1 - c0
            y0s[i] = y_lo + r0
            x0s[i] = x_lo + c0
            wr0[i] = y_lo + r0
            wr1[i] = y_lo + r1
            wc0[i] = x_lo + c0
            wc1[i] = x_lo + c1
        counts = rows * cols
        total = int(counts.sum())
        limit = backend.fused_band_limit
        if kept and (limit is None or total <= limit * len(kept)):
            col_lens = cols[cols > 0]
            col_off = np.zeros(ncand, dtype=np.int64)
            col_off[cols > 0] = np.cumsum(col_lens) - col_lens
            costs = backend.clamped_band_sums(
                np.concatenate(row_parts),
                np.concatenate(col_parts),
                rows,
                cols,
                y0s,
                x0s,
                col_off,
                self._cost_sign,
                self._cost_base,
            )
        elif kept:
            # Bulky bands: per-element index math would cost more than
            # it saves — score each gathered factor pair in place, with
            # the exact operation sequence of the scoring loop.
            get_recorder().incr("kernels.band_loop_batches")
            sign = self._cost_sign
            base = self._cost_base
            maximum = np.maximum
            multiply = np.multiply
            scratch = self._scratch
            if scratch.size < int(counts.max()):
                scratch = np.empty(int(counts.max()), dtype=np.float64)
                self._scratch = scratch
            for j, i in enumerate(kept):
                r = int(rows[i])
                c = int(cols[i])
                seg = scratch[: r * c].reshape(r, c)
                window = (
                    slice(int(y0s[i]), int(y0s[i]) + r),
                    slice(int(x0s[i]), int(x0s[i]) + c),
                )
                multiply(
                    row_parts[j][:, None], col_parts[j][None, :], out=seg
                )
                seg *= sign[window]
                seg += base[window]
                maximum(seg, 0.0, out=seg)
                costs[i] = seg.sum()
        # Deferred old-cost lookup, same A − B − C + D order as
        # window_cost_from_integral; all-zero corners (skipped
        # candidates) contribute a zero old cost by construction.
        costs -= (
            cost_integral[wr1, wc1]
            - cost_integral[wr0, wc1]
            - cost_integral[wr1, wc0]
            + cost_integral[wr0, wc0]
        )
        return costs

    def _price_edge_moves_loop(
        self,
        candidates: list[EdgeMoveCandidate],
        cost_integral: np.ndarray | None = None,
        active_integral: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-candidate scoring loop (the pre-kernel batched engine).

        Kept verbatim as the selectable oracle the fused kernel is gated
        against, and as the fallback when pricing runs without the
        prefix-sum integrals.
        """
        imap = self.imap
        get_recorder().incr("intensity.edge_deltas", len(candidates))
        caching = imap.profile_cache_enabled
        if caching:
            imap.ensure_profiles(key for c in candidates for key in c.keys)
        cache_get = imap._profile_cache.get
        profile = imap.profile
        # Moved-axis difference profiles are memoized too: they are a
        # deterministic function of two immutable cached profiles, so the
        # memo needs no invalidation — recomputing reproduces the exact
        # same bits.  Only active while the profile cache is (the
        # profile_caching(False) baseline must not cache anything).
        delta_memo = self._delta_memo if caching else None
        sign = self._cost_sign
        base = self._cost_base
        maximum = np.maximum
        multiply = np.multiply
        scratch = self._scratch
        do_crop = active_integral is not None
        use_integral = cost_integral is not None
        ncand = len(candidates)
        costs = np.zeros(ncand, dtype=np.float64)
        # Deferred old-cost lookup: final window corners per candidate,
        # gathered from the cost integral in one vectorized pass after
        # the loop.  All-zero corners (skipped candidates) contribute a
        # zero old cost by construction.
        wr0 = np.zeros(ncand, dtype=np.intp)
        wr1 = np.zeros(ncand, dtype=np.intp)
        wc0 = np.zeros(ncand, dtype=np.intp)
        wc1 = np.zeros(ncand, dtype=np.intp)
        for i, cand in enumerate(candidates):
            _, edge, _, (ys, xs), (k_old, k_new, k_fixed) = cand
            if do_crop:
                # crop_to_active, inlined: this runs once per candidate
                # and the call/tuple overhead is measurable.
                y_lo = ys.start
                x_lo = xs.start
                rowcum = (
                    active_integral[y_lo : ys.stop + 1, xs.stop]
                    - active_integral[y_lo : ys.stop + 1, x_lo]
                )
                if rowcum[-1] == rowcum[0]:
                    continue
                r0 = int(rowcum.searchsorted(rowcum[0], side="right")) - 1
                r1 = int(rowcum.searchsorted(rowcum[-1], side="left"))
                colcum = (
                    active_integral[ys.stop, x_lo : xs.stop + 1]
                    - active_integral[y_lo, x_lo : xs.stop + 1]
                )
                c0 = int(colcum.searchsorted(colcum[0], side="right")) - 1
                c1 = int(colcum.searchsorted(colcum[-1], side="left"))
                ys = slice(y_lo + r0, y_lo + r1)
                xs = slice(x_lo + c0, x_lo + c1)
            else:
                r0, c0 = 0, 0
                r1 = ys.stop - ys.start
                c1 = xs.stop - xs.start
            if delta_memo is not None:
                dkey = (k_old, k_new)
                delta = delta_memo.get(dkey)
                if delta is None:
                    if len(delta_memo) >= 4096:
                        delta_memo.clear()
                    p_new = cache_get(k_new)
                    if p_new is None:
                        p_new = profile(k_new)
                    p_old = cache_get(k_old)
                    if p_old is None:
                        p_old = profile(k_old)
                    delta = p_new - p_old
                    delta.flags.writeable = False
                    delta_memo[dkey] = delta
                p_fixed = cache_get(k_fixed)
                if p_fixed is None:
                    p_fixed = profile(k_fixed)
            else:
                delta = profile(k_new) - profile(k_old)
                p_fixed = profile(k_fixed)
            rows = r1 - r0
            cols = c1 - c0
            n = rows * cols
            if scratch.size < n:
                scratch = np.empty(n, dtype=np.float64)
                self._scratch = scratch
            # The patch is materialized into a reused scratch buffer; the
            # 2-D view has the same shape/contiguity as the (cropped)
            # array the scalar path scores, and the ops below mirror
            # score_move_patch exactly, so the Δcost is bit-identical.
            seg = scratch[:n].reshape(rows, cols)
            window = (ys, xs)
            if edge in ("left", "right"):
                multiply(p_fixed[r0:r1, None], delta[None, c0:c1], out=seg)
            else:
                multiply(delta[r0:r1, None], p_fixed[None, c0:c1], out=seg)
            seg *= sign[window]
            seg += base[window]
            maximum(seg, 0.0, out=seg)
            if use_integral:
                costs[i] = seg.sum()
                wr0[i] = ys.start
                wr1[i] = ys.stop
                wc0[i] = xs.start
                wc1[i] = xs.stop
            else:
                costs[i] = seg.sum() - self.window_cost(
                    window, imap.total[window]
                )
        if use_integral and ncand:
            # Same A − B − C + D order as window_cost_from_integral, in
            # float64 — elementwise results match the scalar lookups bit
            # for bit.
            costs -= (
                cost_integral[wr1, wc1]
                - cost_integral[wr0, wc1]
                - cost_integral[wr1, wc0]
                + cost_integral[wr0, wc0]
            )
        return costs

    # -- mutation -----------------------------------------------------------

    def mutation_allowed(self, window: tuple[slice, slice]) -> bool:
        """True when a mutation's dose-effect window is fully scored.

        Unrestricted refinements allow everything.  With an active mask,
        a mutation is only sound when every pixel its dose change can
        touch lies inside the mask — a window that leaks outside could
        damage pixels the restricted cost treats as don't-care, damage
        that would only surface in the full-shape check afterwards.
        """
        if self.active_mask is None:
            return True
        return bool(self.active_mask[window].all())

    def apply_edge_move(self, index: int, edge: str, delta: float) -> bool:
        """Commit an edge move; returns False if it became invalid."""
        shot = self.shots[index]
        try:
            candidate = shot.moved_edge(edge, delta)
        except ValueError:
            return False
        if not candidate.meets_min_size(self.spec.lmin):
            return False
        if self.active_mask is not None and not self.mutation_allowed(
            self.imap.edge_move_window(shot, candidate, edge)
        ):
            return False
        window = self.imap.apply_edge_move(shot, candidate, edge)
        self._refresh_cost_base(window)
        self.shots[index] = candidate
        return True

    def replace_shot(self, index: int, new: Rect) -> None:
        old = self.shots[index]
        window = self.imap.union_window(old, new)
        self.imap.replace(old, new, window)
        self._refresh_cost_base(window)
        self.shots[index] = new

    def add_shot(self, shot: Rect) -> None:
        window = self.imap.window_of(shot)
        self.imap.add(shot, window)
        self._refresh_cost_base(window)
        self.shots.append(shot)

    def remove_shot(self, index: int) -> Rect:
        shot = self.shots.pop(index)
        window = self.imap.window_of(shot)
        self.imap.remove(shot, window)
        self._refresh_cost_base(window)
        return shot

    def snapshot(self) -> list[Rect]:
        return list(self.shots)

    def restore(self, shots: list[Rect]) -> None:
        """Reset to a previously snapshotted shot list."""
        self.shots = list(shots)
        self.imap.rebuild(list(self.background) + self.shots)
        self._refresh_cost_base()
