"""Mutable working state shared by the refinement moves (paper §4).

Holds the shot list, the incrementally maintained intensity map and the
pixel classification, and provides the *windowed* cost evaluation that
makes greedy edge adjustment affordable: the cost change of an edge move
only depends on pixels within the blur reach of the two shot versions.
"""

from __future__ import annotations

import numpy as np

from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport, FractureSpec, failure_report
from repro.mask.pixels import PixelSets
from repro.mask.shape import MaskShape


class RefinementState:
    """Shots + intensity + pixel classes for one refinement run."""

    __slots__ = ("shape", "spec", "pixels", "imap", "shots")

    def __init__(
        self,
        shape: MaskShape,
        spec: FractureSpec,
        shots: list[Rect],
    ):
        self.shape = shape
        self.spec = spec
        self.pixels: PixelSets = shape.pixels(spec.gamma)
        self.imap = IntensityMap(shape.grid, spec.sigma)
        self.shots: list[Rect] = list(shots)
        for shot in self.shots:
            self.imap.add(shot)

    # -- cost evaluation --------------------------------------------------

    def report(self) -> FailureReport:
        """Full-grid Eq. 4 / Eq. 5 evaluation of the current state."""
        return failure_report(self.imap.total, self.pixels, self.spec.rho)

    def window_cost(
        self, window: tuple[slice, slice], total_window: np.ndarray
    ) -> float:
        """Eq. 5 cost restricted to one index window.

        ``total_window`` is the (hypothetical or current) I_tot values on
        that window, so candidate moves can be priced without mutating
        the map.
        """
        rho = self.spec.rho
        on = self.pixels.on[window]
        off = self.pixels.off[window]
        fail = (on & (total_window < rho)) | (off & (total_window >= rho))
        if not fail.any():
            return 0.0
        return float(np.abs(total_window[fail] - rho).sum())

    def cost_integral(self) -> np.ndarray:
        """Prefix sums of the per-pixel Eq. 5 cost field.

        ``integral[y2, x2] - integral[y1, x2] - integral[y2, x1] +
        integral[y1, x1]`` gives the *current* cost of any index window
        in O(1) — edge pricing then only has to evaluate the candidate
        side.  Rebuild after every committed change (one per refinement
        iteration is enough; GreedyShotEdgeAdjustment does so itself).
        """
        rho = self.spec.rho
        total = self.imap.total
        fail = (self.pixels.on & (total < rho)) | (
            self.pixels.off & (total >= rho)
        )
        cost_field = np.where(fail, np.abs(total - rho), 0.0)
        integral = np.zeros(
            (cost_field.shape[0] + 1, cost_field.shape[1] + 1), dtype=np.float64
        )
        np.cumsum(cost_field, axis=0, out=integral[1:, 1:])
        np.cumsum(integral[1:, 1:], axis=1, out=integral[1:, 1:])
        return integral

    @staticmethod
    def window_cost_from_integral(
        integral: np.ndarray, window: tuple[slice, slice]
    ) -> float:
        ys, xs = window
        return float(
            integral[ys.stop, xs.stop]
            - integral[ys.start, xs.stop]
            - integral[ys.stop, xs.start]
            + integral[ys.start, xs.start]
        )

    def edge_move_delta_cost(
        self,
        index: int,
        edge: str,
        delta: float,
        cost_integral: np.ndarray | None = None,
    ) -> float | None:
        """Cost change of moving one edge of shot ``index`` by ``delta``.

        Returns ``None`` for invalid moves (shot would fall below L_min or
        invert).  Does not modify the state.  ``cost_integral`` (from
        :meth:`cost_integral`, current as of the last committed change)
        makes the old-cost side an O(1) lookup.
        """
        shot = self.shots[index]
        try:
            candidate = shot.moved_edge(edge, delta)
        except ValueError:
            return None
        if not candidate.meets_min_size(self.spec.lmin):
            return None
        window, patch_delta = self.imap.edge_move_delta(shot, candidate, edge)
        total_window = self.imap.total[window]
        if cost_integral is not None:
            old_cost = self.window_cost_from_integral(cost_integral, window)
        else:
            old_cost = self.window_cost(window, total_window)
        new_cost = self.window_cost(window, total_window + patch_delta)
        return new_cost - old_cost

    # -- mutation -----------------------------------------------------------

    def apply_edge_move(self, index: int, edge: str, delta: float) -> bool:
        """Commit an edge move; returns False if it became invalid."""
        shot = self.shots[index]
        try:
            candidate = shot.moved_edge(edge, delta)
        except ValueError:
            return False
        if not candidate.meets_min_size(self.spec.lmin):
            return False
        self.imap.replace(shot, candidate)
        self.shots[index] = candidate
        return True

    def replace_shot(self, index: int, new: Rect) -> None:
        self.imap.replace(self.shots[index], new)
        self.shots[index] = new

    def add_shot(self, shot: Rect) -> None:
        self.imap.add(shot)
        self.shots.append(shot)

    def remove_shot(self, index: int) -> Rect:
        shot = self.shots.pop(index)
        self.imap.remove(shot)
        return shot

    def snapshot(self) -> list[Rect]:
        return list(self.shots)

    def restore(self, shots: list[Rect]) -> None:
        """Reset to a previously snapshotted shot list."""
        self.shots = list(shots)
        self.imap.rebuild(self.shots)
