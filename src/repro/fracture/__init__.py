"""Model-based mask fracturing — the paper's proposed method.

The public entry point is :class:`~repro.fracture.pipeline.ModelBasedFracturer`,
which chains the two stages of the paper:

1. *Graph-coloring-based approximate fracturing* (§3):
   :mod:`~repro.fracture.corner_points` extracts typed shot corner points
   from the RDP-simplified boundary, :mod:`~repro.fracture.graph_color`
   builds the compatibility graph and solves clique partition via inverse
   coloring, and :mod:`~repro.fracture.placement` turns each color class
   into a shot.
2. *Iterative shot refinement* (§4): :mod:`~repro.fracture.refine`
   implements Algorithm 1 on top of the move modules
   (:mod:`~repro.fracture.edge_adjust`, :mod:`~repro.fracture.bias`,
   :mod:`~repro.fracture.add_remove`, :mod:`~repro.fracture.merge`).
"""

from repro.fracture.base import FractureResult, Fracturer
from repro.fracture.cache import (
    FractureCache,
    canonical_fingerprint,
    fingerprint_polygon,
)
from repro.fracture.corner_points import CornerType, ShotCornerPoint, extract_corner_points
from repro.fracture.graph_color import GraphColoringFracturer, build_compatibility_graph
from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.runtime import (
    CheckpointJournal,
    FaultPlan,
    PoolBroken,
    RetryPolicy,
    RuntimePolicy,
    TileCrash,
    TileError,
    TileInfeasible,
    TileOutcome,
    TileTimeout,
)
from repro.fracture.tiling import Tile, TilePlan, plan_tiles
from repro.fracture.windowed import LegacyWindowedFracturer, WindowedFracturer

__all__ = [
    "CheckpointJournal",
    "CornerType",
    "FaultPlan",
    "FractureCache",
    "FractureResult",
    "Fracturer",
    "canonical_fingerprint",
    "fingerprint_polygon",
    "GraphColoringFracturer",
    "LegacyWindowedFracturer",
    "ModelBasedFracturer",
    "PoolBroken",
    "RefineConfig",
    "RetryPolicy",
    "RuntimePolicy",
    "ShotCornerPoint",
    "Tile",
    "TileCrash",
    "TileError",
    "TileInfeasible",
    "TileOutcome",
    "TilePlan",
    "TileTimeout",
    "WindowedFracturer",
    "build_compatibility_graph",
    "extract_corner_points",
    "plan_tiles",
]
