"""Lightweight graph algorithms (Boost Graph Library substitute).

Provides exactly what the fracturer and the partition baseline need:

* :class:`~repro.graphlib.graph.Graph` — undirected graph on integer
  vertices with adjacency sets.
* :func:`~repro.graphlib.coloring.greedy_color` — sequential greedy
  coloring with selectable vertex orderings (paper §3, reference [25]).
* :func:`~repro.graphlib.clique_cover.clique_partition` — minimum clique
  partition via coloring of the inverse graph (references [23], [24]).
* :func:`~repro.graphlib.matching.hopcroft_karp` /
  :func:`~repro.graphlib.matching.min_vertex_cover` — bipartite matching
  and König vertex cover, used by the optimal rectilinear partition.
"""

from repro.graphlib.clique_cover import clique_partition
from repro.graphlib.coloring import greedy_color
from repro.graphlib.graph import Graph
from repro.graphlib.matching import hopcroft_karp, maximum_independent_set, min_vertex_cover

__all__ = [
    "Graph",
    "clique_partition",
    "greedy_color",
    "hopcroft_karp",
    "maximum_independent_set",
    "min_vertex_cover",
]
