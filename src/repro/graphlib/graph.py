"""Undirected graphs on integer vertex ids ``0..n-1``."""

from __future__ import annotations

from typing import Iterable, Iterator


class Graph:
    """Simple undirected graph backed by adjacency sets.

    Vertices are the integers ``0..n-1``; self-loops are rejected because
    neither the shot-compatibility graph nor its inverse can contain them.
    """

    __slots__ = ("_adjacency",)

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()):
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self._adjacency: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def n(self) -> int:
        return len(self._adjacency)

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        self._check(u)
        self._check(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def has_edge(self, u: int, v: int) -> bool:
        self._check(u)
        self._check(v)
        return v in self._adjacency[u]

    def neighbors(self, u: int) -> frozenset[int]:
        self._check(u)
        return frozenset(self._adjacency[u])

    def degree(self, u: int) -> int:
        self._check(u)
        return len(self._adjacency[u])

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adjacency) // 2

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, adj in enumerate(self._adjacency):
            for v in adj:
                if u < v:
                    yield (u, v)

    def complement(self) -> "Graph":
        """Inverse graph ``G_inv`` (paper §3): edge iff no edge in ``self``."""
        inv = Graph(self.n)
        for u in range(self.n):
            adj = self._adjacency[u]
            for v in range(u + 1, self.n):
                if v not in adj:
                    inv.add_edge(u, v)
        return inv

    def is_clique(self, vertices: Iterable[int]) -> bool:
        """True when the given vertices are pairwise adjacent."""
        vs = list(vertices)
        return all(
            self.has_edge(vs[i], vs[j])
            for i in range(len(vs))
            for j in range(i + 1, len(vs))
        )

    def subgraph_degrees(self) -> list[int]:
        return [len(adj) for adj in self._adjacency]

    def _check(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise IndexError(f"vertex {u} out of range [0, {self.n})")

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.edge_count()})"
