"""Exact graph coloring / clique partition for small instances.

The paper colors the inverse compatibility graph greedily and notes that
"better heuristics exist … but we found this fast and simple method to
be sufficient".  To *quantify* that claim, this module provides an exact
branch-and-bound chromatic-number solver, practical up to a few dozen
vertices — precisely the corner-point graph sizes fracturing produces.
The stage-1 ablation bench compares greedy vs exact clique partition.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphlib.coloring import color_count, greedy_color
from repro.graphlib.graph import Graph

_DEFAULT_NODE_LIMIT = 2_000_000


class SearchBudgetExceeded(RuntimeError):
    """The branch-and-bound search hit its node budget."""


def exact_color(
    graph: Graph, node_limit: int = _DEFAULT_NODE_LIMIT
) -> list[int]:
    """Minimum proper coloring by branch and bound.

    Vertices are assigned in a static largest-degree-first order; at each
    step a vertex may take any color already in use that no neighbour
    holds, or one fresh color (symmetry breaking).  The greedy coloring
    provides the initial upper bound.  Raises
    :class:`SearchBudgetExceeded` beyond ``node_limit`` search nodes.
    """
    n = graph.n
    if n == 0:
        return []
    order = sorted(range(n), key=lambda v: -graph.degree(v))
    position = {v: i for i, v in enumerate(order)}
    # Neighbours that come earlier in the assignment order.
    earlier_neighbors: list[list[int]] = [
        [u for u in graph.neighbors(v) if position[u] < position[v]]
        for v in order
    ]

    best = greedy_color(graph, "dsatur")
    best_count = color_count(best)
    assignment = [-1] * n  # indexed by order position
    nodes_visited = 0

    def assigned_color(vertex: int) -> int:
        return assignment[position[vertex]]

    def search(index: int, used: int) -> None:
        nonlocal best, best_count, nodes_visited
        nodes_visited += 1
        if nodes_visited > node_limit:
            raise SearchBudgetExceeded(
                f"exceeded {node_limit} nodes on a {n}-vertex graph"
            )
        if used >= best_count:
            return  # cannot improve
        if index == n:
            best_count = used
            out = [-1] * n
            for pos, vertex in enumerate(order):
                out[vertex] = assignment[pos]
            best = out
            return
        vertex = order[index]
        taken = {assigned_color(u) for u in earlier_neighbors[index]}
        for color in range(min(used + 1, best_count - 1)):
            if color in taken:
                continue
            assignment[index] = color
            search(index + 1, max(used, color + 1))
        assignment[index] = -1

    search(0, 0)
    return best


def exact_chromatic_number(graph: Graph, node_limit: int = _DEFAULT_NODE_LIMIT) -> int:
    return color_count(exact_color(graph, node_limit))


def exact_clique_partition(
    graph: Graph, node_limit: int = _DEFAULT_NODE_LIMIT
) -> list[list[int]]:
    """Minimum clique partition = exact coloring of the inverse graph."""
    if graph.n == 0:
        return []
    colors = exact_color(graph.complement(), node_limit)
    groups: dict[int, list[int]] = defaultdict(list)
    for vertex, color in enumerate(colors):
        groups[color].append(vertex)
    cliques = [sorted(group) for group in groups.values()]
    cliques.sort(key=lambda clique: clique[0])
    return cliques
