"""Sequential greedy graph coloring (Matula–Marble–Isaacson [25]).

The paper colors the inverse compatibility graph with "a simple sequential
greedy coloring heuristic"; we provide the classic orderings so the effect
of the ordering choice can be benchmarked (see ``benchmarks/bench_ops.py``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.graphlib.graph import Graph

Ordering = Callable[[Graph], Sequence[int]]


def order_given(graph: Graph) -> Sequence[int]:
    """Natural vertex order — the paper's 'simple sequential' choice."""
    return range(graph.n)


def order_largest_first(graph: Graph) -> Sequence[int]:
    """Welsh–Powell: non-increasing degree."""
    return sorted(range(graph.n), key=lambda v: -graph.degree(v))


def order_smallest_last(graph: Graph) -> Sequence[int]:
    """Matula's smallest-last ordering (optimal on chordal graphs)."""
    degrees = list(graph.subgraph_degrees())
    removed = [False] * graph.n
    order: list[int] = []
    for _ in range(graph.n):
        v = min(
            (u for u in range(graph.n) if not removed[u]),
            key=lambda u: degrees[u],
        )
        removed[v] = True
        order.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degrees[w] -= 1
    order.reverse()
    return order


_ORDERINGS: dict[str, Ordering] = {
    "given": order_given,
    "largest_first": order_largest_first,
    "smallest_last": order_smallest_last,
}


def greedy_color(graph: Graph, strategy: str = "largest_first") -> list[int]:
    """Color vertices greedily; returns a color id per vertex.

    ``strategy`` is one of ``given``, ``largest_first``, ``smallest_last``
    or ``dsatur``.  The coloring is always proper; the number of colors
    depends on the ordering.
    """
    if strategy == "dsatur":
        return _dsatur(graph)
    try:
        ordering = _ORDERINGS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of "
            f"{sorted(_ORDERINGS) + ['dsatur']}"
        ) from None
    colors = [-1] * graph.n
    for v in ordering(graph):
        taken = {colors[w] for w in graph.neighbors(v) if colors[w] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def _dsatur(graph: Graph) -> list[int]:
    """DSATUR: always color the vertex with the most distinct neighbour colors."""
    colors = [-1] * graph.n
    saturation: list[set[int]] = [set() for _ in range(graph.n)]
    uncolored = set(range(graph.n))
    while uncolored:
        v = max(
            uncolored,
            key=lambda u: (len(saturation[u]), graph.degree(u)),
        )
        taken = saturation[v]
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
        uncolored.discard(v)
        for w in graph.neighbors(v):
            saturation[w].add(color)
    return colors


def color_count(colors: Sequence[int]) -> int:
    return 0 if not colors else max(colors) + 1


def is_proper_coloring(graph: Graph, colors: Sequence[int]) -> bool:
    return all(colors[u] != colors[v] for u, v in graph.edges())
