"""Bipartite matching, König vertex cover and maximum independent set.

Drives the optimal chord selection inside
:func:`repro.geometry.partition.partition_rectilinear`: the maximum set of
pairwise non-crossing chords is the maximum independent set of the
bipartite horizontal-vs-vertical chord crossing graph, obtained as the
complement of a minimum vertex cover (König's theorem).
"""

from __future__ import annotations

from collections import deque

_INF = float("inf")


def hopcroft_karp(
    adjacency: dict[int, list[int]], n_right: int
) -> dict[int, int]:
    """Maximum matching of a bipartite graph in O(E sqrt(V)).

    ``adjacency`` maps each left vertex to its right neighbours (right
    vertices are ``0..n_right-1``).  Returns ``{left: right}`` for matched
    pairs.
    """
    left_vertices = sorted(adjacency)
    match_left: dict[int, int] = {}
    match_right: list[int | None] = [None] * n_right
    dist: dict[int, float] = {}

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in left_vertices:
            if u not in match_left:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                nxt = match_right[v]
                if nxt is None:
                    found = True
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[u] + 1.0
                    queue.append(nxt)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            nxt = match_right[v]
            if nxt is None or (dist[nxt] == dist[u] + 1.0 and dfs(nxt)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in left_vertices:
            if u not in match_left:
                dfs(u)
    return match_left


def min_vertex_cover(
    adjacency: dict[int, list[int]],
    n_right: int,
    matching: dict[int, int],
) -> tuple[set[int], set[int]]:
    """König construction: minimum vertex cover from a maximum matching.

    Returns ``(cover_left, cover_right)``.  Alternating BFS from the
    unmatched left vertices marks reachable vertices Z; the cover is
    (L − Z) ∪ (R ∩ Z).
    """
    match_right: dict[int, int] = {v: u for u, v in matching.items()}
    visited_left: set[int] = set()
    visited_right: set[int] = set()
    queue: deque[int] = deque(u for u in adjacency if u not in matching)
    visited_left.update(queue)
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v in visited_right or matching.get(u) == v:
                continue
            visited_right.add(v)
            owner = match_right.get(v)
            if owner is not None and owner not in visited_left:
                visited_left.add(owner)
                queue.append(owner)
    cover_left = {u for u in adjacency if u not in visited_left}
    cover_right = set(visited_right)
    return cover_left, cover_right


def maximum_independent_set(
    adjacency: dict[int, list[int]], n_right: int
) -> tuple[set[int], set[int]]:
    """Maximum independent set of a bipartite graph (complement of the cover)."""
    matching = hopcroft_karp(adjacency, n_right)
    cover_left, cover_right = min_vertex_cover(adjacency, n_right, matching)
    free_left = set(adjacency) - cover_left
    free_right = set(range(n_right)) - cover_right
    return free_left, free_right
