"""Minimum clique partition via inverse-graph coloring (paper §3).

Clique partition of ``G`` equals proper coloring of the complement
``G_inv`` ([24]): vertices sharing a color in ``G_inv`` are pairwise
*non*-adjacent there, hence pairwise adjacent in ``G`` — a clique.  Each
clique becomes one e-beam shot.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphlib.coloring import greedy_color
from repro.graphlib.graph import Graph


def clique_partition(graph: Graph, strategy: str = "largest_first") -> list[list[int]]:
    """Partition the vertices of ``graph`` into cliques.

    Returns the cliques as sorted vertex lists, ordered by first vertex.
    The partition is heuristic (greedy coloring of the inverse graph) but
    always valid: every returned group is a clique of ``graph`` and every
    vertex appears exactly once.
    """
    if graph.n == 0:
        return []
    inverse = graph.complement()
    colors = greedy_color(inverse, strategy=strategy)
    groups: dict[int, list[int]] = defaultdict(list)
    for vertex, color in enumerate(colors):
        groups[color].append(vertex)
    cliques = [sorted(group) for group in groups.values()]
    cliques.sort(key=lambda clique: clique[0])
    return cliques


def is_clique_partition(graph: Graph, cliques: list[list[int]]) -> bool:
    """Validity check used by tests and by debug assertions."""
    seen: set[int] = set()
    for clique in cliques:
        if any(v in seen for v in clique):
            return False
        seen.update(clique)
        if not graph.is_clique(clique):
            return False
    return seen == set(range(graph.n))
