"""Analytic shot intensity (paper Eq. 1–3).

The intensity of a rectangular shot is the convolution of its indicator
function with the Gaussian proximity kernel.  Because the kernel is
separable, the convolution factorizes:

    I_s(x, y) = f(x; xbl, xtr) · f(y; ybl, ytr)
    f(t; a, b) = ½ · (erf((t − a)/σ) − erf((t − b)/σ))

``f`` is the 1-D *shot profile*: ≈1 deep inside [a, b], 0.5 exactly on an
isolated edge, ≈0 beyond 3σ outside.  All intensity evaluation in the
library funnels through :func:`shot_profile_1d` so the LUT speedup applies
everywhere.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy.special import erf

from repro.ebeam.lut import ErfLookupTable, default_lut
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect


def shot_profile_1d(
    coords: np.ndarray,
    lo: float,
    hi: float,
    sigma: float,
    lut: ErfLookupTable | None = None,
) -> np.ndarray:
    """1-D blurred profile of the interval ``[lo, hi]`` at ``coords``."""
    if hi < lo:
        raise ValueError(f"interval [{lo}, {hi}] is inverted")
    coords = np.asarray(coords, dtype=np.float64)
    erf_fn = lut if lut is not None else erf
    return 0.5 * (erf_fn((coords - lo) / sigma) - erf_fn((coords - hi) / sigma))


def shot_intensity(
    shot: Rect,
    grid: PixelGrid,
    sigma: float,
    window: tuple[slice, slice] | None = None,
    lut: ErfLookupTable | None = None,
) -> np.ndarray:
    """Intensity of ``shot`` at the pixel centres of ``grid``.

    When ``window`` (a pair of index slices) is given, only that sub-array
    is computed — the refinement loop passes the shot's 3σ neighbourhood.
    """
    if lut is None:
        lut = default_lut()
    ys = grid.y_centers()
    xs = grid.x_centers()
    if window is not None:
        ys = ys[window[0]]
        xs = xs[window[1]]
    fx = shot_profile_1d(xs, shot.xbl, shot.xtr, sigma, lut)
    fy = shot_profile_1d(ys, shot.ybl, shot.ytr, sigma, lut)
    return np.outer(fy, fx)


def point_intensity(
    shots: Iterable[Rect], x: float, y: float, sigma: float
) -> float:
    """Exact (no LUT) total intensity of ``shots`` at a single point."""
    total = 0.0
    for shot in shots:
        fx = 0.5 * (erf((x - shot.xbl) / sigma) - erf((x - shot.xtr) / sigma))
        fy = 0.5 * (erf((y - shot.ybl) / sigma) - erf((y - shot.ytr) / sigma))
        total += float(fx * fy)
    return total


def edge_profile(distance: np.ndarray | float, sigma: float) -> np.ndarray:
    """Blurred step of an isolated infinite edge.

    ``distance`` is signed, positive on the exposed side.  Equal to the
    limit of :func:`shot_profile_1d` for a half-infinite shot; 0.5 at the
    edge itself — which is why the print threshold ρ = 0.5 reproduces
    large shot geometry exactly.
    """
    distance = np.asarray(distance, dtype=np.float64)
    return 0.5 * (1.0 + erf(distance / sigma))
