"""The Gaussian e-beam proximity kernel (paper Eq. 2).

Forward scattering of electrons in the resist blurs every shot by

    G(x, y) = 1 / (π σ²) · exp(−(x² + y²) / σ²)   for  √(x² + y²) ≤ 3σ

and 0 outside the 3σ disc.  Note the paper's convention: the exponent is
``−r²/σ²`` (not ``−r²/2σ²``), i.e. the per-axis standard deviation is
``σ/√2``; the normalization makes the *untruncated* kernel integrate to 1.
The truncation removes < 1.3e-4 of the mass, so the analytic erf closed
form in :mod:`repro.ebeam.intensity` treats the kernel as untruncated —
tests verify the discrepancy stays below that bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class GaussianKernel:
    """Proximity kernel with scattering range ``sigma`` (nm)."""

    sigma: float
    truncation: float = 3.0  # radius in units of sigma

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise ValueError("sigma must be positive")
        if self.truncation <= 0.0:
            raise ValueError("truncation radius must be positive")

    def value(self, x: np.ndarray | float, y: np.ndarray | float) -> np.ndarray:
        """Kernel value at (x, y), truncated at ``truncation · sigma``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        r2 = x * x + y * y
        out = np.exp(-r2 / (self.sigma**2)) / (np.pi * self.sigma**2)
        out = np.where(r2 <= (self.truncation * self.sigma) ** 2, out, 0.0)
        return out

    def support_radius(self) -> float:
        """Radius beyond which the kernel is identically zero."""
        return self.truncation * self.sigma

    def discretized(self, pitch: float) -> np.ndarray:
        """Kernel sampled on a pixel grid, for brute-force convolution.

        Returns a square array of odd side length covering the truncated
        support, normalized so the samples sum to 1/pitch² times the true
        mass (i.e. direct convolution with a pitch²-weighted sum
        reproduces the continuous convolution).  Used by tests and by the
        toy ILT generator's blur step.
        """
        if pitch <= 0.0:
            raise ValueError("pitch must be positive")
        half = int(np.ceil(self.support_radius() / pitch))
        coords = np.arange(-half, half + 1) * pitch
        xx, yy = np.meshgrid(coords, coords)
        return self.value(xx, yy)

    def truncated_mass(self) -> float:
        """Total integral of the truncated kernel (slightly below 1)."""
        # ∫∫ over the disc of radius Tσ: 1 − exp(−T²).
        return 1.0 - float(np.exp(-(self.truncation**2)))
