"""Corner rounding analysis and the numeric derivation of ``L_th``.

A rectangular shot prints with rounded corners: at the corner the 2-D
intensity is the product of two edge profiles, so the ρ-contour pulls
inside the geometric corner by several nanometres (Fig. 2).  Model-based
fracturing *exploits* the rounding to write 45° boundary segments: ``L_th``
is the longest 45° segment the rounded corner approximates within the CD
tolerance γ (paper §3, following the benchmarking methodology [16]).

The contour of a quarter-plane shot (edges along the −x and −y axes,
exposed quadrant x<0, y<0) satisfies

    e(x) · e(y) = ρ      with  e(t) = ½ (1 − erf(t/σ)),

which we solve explicitly for y(x) with the inverse error function and
then measure the longest run whose perpendicular deviation from the best
45° chord stays within γ.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy.special import erf, erfinv


def _edge(t: np.ndarray | float, sigma: float) -> np.ndarray:
    """Edge profile of a half-plane shot occupying t < 0."""
    return 0.5 * (1.0 - erf(np.asarray(t, dtype=np.float64) / sigma))


def corner_rounding_contour(
    sigma: float, rho: float = 0.5, samples: int = 801
) -> np.ndarray:
    """ρ-contour of a quarter-plane shot corner at the origin.

    Returns an ``(n, 2)`` array of (x, y) contour points for x in
    ``[-3σ, x_max]`` where ``x_max`` is where the contour leaves the 3σ
    corner region.  Far from the corner the contour asymptotes to the
    straight printed edges (x = x_edge with e(x_edge) = ρ).
    """
    if not 0.0 < rho < 1.0:
        raise ValueError("rho must lie in (0, 1)")
    # Solvability: need e(x) > rho so that e(y) = rho / e(x) < 1.
    x_lo = -3.0 * sigma
    # Upper x limit: e(x) must stay above rho (e is decreasing).
    x_hi = sigma * float(erfinv(1.0 - 2.0 * rho)) if rho != 0.5 else 0.0
    xs = np.linspace(x_lo, x_hi, samples, endpoint=False)
    ex = _edge(xs, sigma)
    v = rho / ex
    valid = (v > 0.0) & (v < 1.0)
    xs = xs[valid]
    v = v[valid]
    ys = sigma * erfinv(1.0 - 2.0 * v)
    return np.column_stack([xs, ys])


@lru_cache(maxsize=32)
def compute_lth(sigma: float, gamma: float, rho: float = 0.5) -> float:
    """Longest 45° segment a shot corner can write within tolerance γ.

    Scans candidate diagonal chords ``x + y = c`` against the corner
    contour; for each, measures the longest contiguous contour run whose
    perpendicular deviation from the chord is ≤ γ, and returns the best
    chord length over all candidates.  For the paper's parameters
    (σ = 6.25 nm, γ = 2 nm) this lands in the low-teens of nanometres.
    """
    if gamma <= 0.0:
        raise ValueError("gamma must be positive")
    contour = corner_rounding_contour(sigma, rho, samples=2001)
    if len(contour) < 2:
        raise RuntimeError("degenerate corner contour")
    s = contour[:, 0] + contour[:, 1]  # chord offset of each contour point
    c_candidates = np.linspace(s.min(), s.max(), 401)
    best = 0.0
    for c in c_candidates:
        deviation = np.abs(s - c) / math.sqrt(2.0)
        ok = deviation <= gamma
        best = max(best, _longest_run_length(contour, ok))
    return best


def _longest_run_length(contour: np.ndarray, ok: np.ndarray) -> float:
    """Euclidean length of the longest contiguous True run along the contour."""
    best = 0.0
    run_start: int | None = None
    for i, flag in enumerate(ok):
        if flag and run_start is None:
            run_start = i
        elif not flag and run_start is not None:
            best = max(best, _span(contour, run_start, i - 1))
            run_start = None
    if run_start is not None:
        best = max(best, _span(contour, run_start, len(ok) - 1))
    return best


def _span(contour: np.ndarray, i: int, j: int) -> float:
    dx = contour[j, 0] - contour[i, 0]
    dy = contour[j, 1] - contour[i, 1]
    return math.hypot(dx, dy)


def corner_pullback(sigma: float, rho: float = 0.5) -> float:
    """Distance from the geometric corner to the ρ-contour along the 45° axis.

    The contour passes through (t, t) with e(t)² = ρ; returns ``−t·√2``
    (positive: the contour is inside the shot corner).  A closed-form
    sanity anchor for the numeric contour, used by tests.
    """
    t = sigma * float(erfinv(1.0 - 2.0 * math.sqrt(rho)))
    return -t * math.sqrt(2.0)
