"""Shot scheduling: deflection travel and write-order optimization.

Write time is dominated by shot count (paper §1), but the second-order
term is beam/stage travel between consecutive shots: a VSB column blanks
the beam and settles after every deflection, with settle time growing
with jump distance.  This module provides a simple travel model and a
greedy nearest-neighbour ordering — the classic mask-writer optimization
that typically recovers tens of percent of deflection time on scattered
shot lists.

Model: writing shot ``i`` after shot ``j`` costs

    t = flash + settle_per_um · distance(centre_i, centre_j)

with the distance in micrometres.  The model is deliberately first-order
(real writers have subfield hierarchies); it ranks orderings correctly,
which is all the optimization needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class TravelModel:
    """Per-shot flash time and distance-proportional settle time."""

    flash_us: float = 15.0
    settle_us_per_um: float = 2.0

    def __post_init__(self) -> None:
        if self.flash_us <= 0.0 or self.settle_us_per_um < 0.0:
            raise ValueError("flash time must be positive, settle non-negative")

    def segment_time_us(self, a: Rect, b: Rect) -> float:
        distance_um = a.center.distance_to(b.center) / 1000.0
        return self.flash_us + self.settle_us_per_um * distance_um


@dataclass(slots=True)
class ShotSchedule:
    """An ordered shot list with its projected write time."""

    order: list[int]
    total_time_us: float
    travel_nm: float

    def shots_in_order(self, shots: list[Rect]) -> list[Rect]:
        return [shots[i] for i in self.order]


def schedule_time(
    shots: list[Rect], order: list[int], model: TravelModel = TravelModel()
) -> tuple[float, float]:
    """(total time µs, total travel nm) of writing ``shots`` in ``order``."""
    if not order:
        return (0.0, 0.0)
    total = model.flash_us  # first shot: flash only
    travel = 0.0
    for prev, nxt in zip(order, order[1:]):
        total += model.segment_time_us(shots[prev], shots[nxt])
        travel += shots[prev].center.distance_to(shots[nxt].center)
    return (total, travel)


def natural_schedule(
    shots: list[Rect], model: TravelModel = TravelModel()
) -> ShotSchedule:
    """Shots written in list order (what a naive flow would do)."""
    order = list(range(len(shots)))
    total, travel = schedule_time(shots, order, model)
    return ShotSchedule(order=order, total_time_us=total, travel_nm=travel)


def greedy_schedule(
    shots: list[Rect], model: TravelModel = TravelModel()
) -> ShotSchedule:
    """Nearest-neighbour ordering from the bottom-left-most shot.

    O(n²); shot lists are tens of shots per shape, so exactness is not
    worth a k-d tree here.  Always at least as good as writing in list
    order is *not* guaranteed by nearest-neighbour alone, so the better
    of the two orderings is returned.
    """
    n = len(shots)
    if n == 0:
        return ShotSchedule(order=[], total_time_us=0.0, travel_nm=0.0)
    centers = np.array([[s.center.x, s.center.y] for s in shots])
    start = int(np.lexsort((centers[:, 0], centers[:, 1]))[0])
    remaining = set(range(n))
    remaining.discard(start)
    order = [start]
    while remaining:
        here = centers[order[-1]]
        candidates = list(remaining)
        distances = np.linalg.norm(centers[candidates] - here, axis=1)
        nxt = candidates[int(np.argmin(distances))]
        order.append(nxt)
        remaining.discard(nxt)
    total, travel = schedule_time(shots, order, model)
    greedy = ShotSchedule(order=order, total_time_us=total, travel_nm=travel)
    naive = natural_schedule(shots, model)
    return greedy if greedy.total_time_us <= naive.total_time_us else naive


def travel_saving(
    shots: list[Rect], model: TravelModel = TravelModel()
) -> float:
    """Fractional write-time saving of greedy ordering vs list order."""
    naive = natural_schedule(shots, model)
    if naive.total_time_us == 0.0:
        return 0.0
    best = greedy_schedule(shots, model)
    return 1.0 - best.total_time_us / naive.total_time_us


def subfield_schedule(
    shots: list[Rect],
    model: TravelModel = TravelModel(),
    subfield_nm: float = 500.0,
) -> ShotSchedule:
    """Two-level ordering: serpentine over subfields, greedy within.

    Real VSB columns write subfield by subfield (major deflection moves
    between subfields are far slower than minor deflection within one).
    Shots are bucketed by subfield, subfields visited in a serpentine
    row order, and the shots inside each subfield ordered greedily.
    Returns the better of this and the flat greedy ordering.
    """
    if subfield_nm <= 0.0:
        raise ValueError("subfield size must be positive")
    if not shots:
        return ShotSchedule(order=[], total_time_us=0.0, travel_nm=0.0)
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, shot in enumerate(shots):
        key = (
            int(np.floor(shot.center.y / subfield_nm)),
            int(np.floor(shot.center.x / subfield_nm)),
        )
        buckets.setdefault(key, []).append(index)
    order: list[int] = []
    for row_rank, row in enumerate(sorted({key[0] for key in buckets})):
        cols = sorted(key[1] for key in buckets if key[0] == row)
        if row_rank % 2:
            cols = cols[::-1]  # serpentine: alternate sweep direction
        for col in cols:
            members = buckets[(row, col)]
            local = greedy_schedule([shots[i] for i in members], model)
            order.extend(members[i] for i in local.order)
    total, travel = schedule_time(shots, order, model)
    two_level = ShotSchedule(order=order, total_time_us=total, travel_nm=travel)
    flat = greedy_schedule(shots, model)
    return two_level if two_level.total_time_us <= flat.total_time_us else flat
