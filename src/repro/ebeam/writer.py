"""Variable-shaped-beam (VSB) mask writer time and throughput model.

The economic argument of the paper (§1) rests on two proportionalities:
mask write time is proportional to shot count [3, 4], and mask write is
roughly 20 % of mask manufacturing cost [4], so a 10 % shot-count
reduction buys ≈ 2 % mask cost.  This module provides the write-time side;
:mod:`repro.mask.cost` converts write time into cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class VsbWriterModel:
    """First-order VSB writer throughput model.

    ``shot_cycle_us`` is the per-shot flash + settle time; ``stage_overhead``
    is a fixed fraction of total time spent on stage moves, subfield
    stitching and calibration.  Defaults give the "more than two days for
    critical masks" regime of [2] at ~10^10 shots.
    """

    shot_cycle_us: float = 15.0
    stage_overhead: float = 0.25
    max_shot_size_nm: float = 2000.0

    def __post_init__(self) -> None:
        if self.shot_cycle_us <= 0.0:
            raise ValueError("shot cycle time must be positive")
        if not 0.0 <= self.stage_overhead < 1.0:
            raise ValueError("stage overhead must be in [0, 1)")

    def write_time_seconds(self, shot_count: int) -> float:
        """Total write time for ``shot_count`` shots."""
        if shot_count < 0:
            raise ValueError("shot count must be non-negative")
        beam_time = shot_count * self.shot_cycle_us * 1e-6
        return beam_time / (1.0 - self.stage_overhead)

    def write_time_hours(self, shot_count: int) -> float:
        return self.write_time_seconds(shot_count) / 3600.0

    def validate_shots(self, shots: Iterable[Rect], lmin: float) -> list[str]:
        """Machine-constraint check: min and max shot dimensions.

        Returns a list of human-readable violations (empty = writable).
        """
        problems = []
        for i, shot in enumerate(shots):
            if not shot.meets_min_size(lmin):
                problems.append(
                    f"shot {i} is {shot.width:.1f}x{shot.height:.1f} nm, "
                    f"below Lmin={lmin:.1f} nm"
                )
            if shot.width > self.max_shot_size_nm or shot.height > self.max_shot_size_nm:
                problems.append(
                    f"shot {i} is {shot.width:.1f}x{shot.height:.1f} nm, "
                    f"above the {self.max_shot_size_nm:.0f} nm aperture limit"
                )
        return problems

    def full_mask_estimate(
        self, shots_per_shape: float, shape_count: float
    ) -> float:
        """Extrapolate clip-level results to a full-field mask (hours).

        A mask contains billions of polygons (paper §2); this scales the
        average per-shape shot count to a full mask write time.
        """
        return self.write_time_hours(int(shots_per_shape * shape_count))
