"""Variable-dose shot extension (paper §2, reference [18]).

The paper fixes every shot at unit dose, citing Elayat et al. [21]:
fixed-dose rectangular shots are the most viable option on current
writers.  Dose modulation is the known extension — "modified dose
correction strategy for better pattern contrast" [18] — so we provide it
as an optional post-pass: hold the shot geometry fixed and optimize the
per-shot dose vector ``d`` to minimize a smooth penalty on CD
violations,

    L(d) = Σ_{p ∈ P_on} relu(ρ + m − I(p))² + Σ_{p ∈ P_off} relu(I(p) − ρ + m)²

with a margin ``m`` that pushes doses until every constraint holds with
slack.  Because ``I(p) = Σ_i d_i · I_i(p)`` is linear in ``d``, the
gradient is available in closed form and projected gradient descent with
box constraints (writer dose range) converges in tens of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ebeam.intensity import shot_intensity
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@dataclass(frozen=True, slots=True)
class DosedShot:
    """A rectangular shot with an explicit dose multiplier."""

    rect: Rect
    dose: float = 1.0

    def __post_init__(self) -> None:
        if self.dose <= 0.0:
            raise ValueError("dose must be positive")


@dataclass(slots=True)
class DoseOptimizeResult:
    """Outcome of a dose optimization run."""

    shots: list[DosedShot]
    failing_before: int
    failing_after: int
    iterations: int

    @property
    def improved(self) -> bool:
        return self.failing_after < self.failing_before


def total_intensity(
    shots: list[DosedShot], shape: MaskShape, spec: FractureSpec
) -> np.ndarray:
    """I_tot of a dosed shot list on the shape's grid."""
    total = np.zeros(shape.grid.shape)
    for dosed in shots:
        window = shape.grid.rect_to_slices(dosed.rect, margin=4.0 * spec.sigma)
        total[window] += dosed.dose * shot_intensity(
            dosed.rect, shape.grid, spec.sigma, window
        )
    return total


def count_failing(
    shots: list[DosedShot], shape: MaskShape, spec: FractureSpec
) -> int:
    pixels = shape.pixels(spec.gamma)
    total = total_intensity(shots, shape, spec)
    return int(
        (pixels.on & (total < spec.rho)).sum()
        + (pixels.off & (total >= spec.rho)).sum()
    )


def optimize_doses(
    shots: list[Rect],
    shape: MaskShape,
    spec: FractureSpec,
    dose_bounds: tuple[float, float] = (0.6, 1.6),
    iterations: int = 60,
    margin: float = 0.02,
    step: float = 0.5,
) -> DoseOptimizeResult:
    """Optimize per-shot doses at fixed geometry (see module docstring).

    Returns dosed shots clipped to ``dose_bounds`` (the writer's dose
    modulation range).  The unit-dose solution is always a feasible
    starting point of the search, so the result never has more failing
    pixels than the input (the best iterate is kept).
    """
    if not shots:
        return DoseOptimizeResult([], 0, 0, 0)
    lo, hi = dose_bounds
    if not 0.0 < lo <= 1.0 <= hi:
        raise ValueError("dose bounds must bracket the nominal dose 1.0")
    pixels = shape.pixels(spec.gamma)
    # Precompute each shot's intensity restricted to the constrained
    # pixels (dense matrix: shots × constrained pixels).
    on_idx = np.nonzero(pixels.on.ravel())[0]
    off_idx = np.nonzero(pixels.off.ravel())[0]
    basis = np.stack(
        [
            shot_intensity(shot, shape.grid, spec.sigma).ravel()
            for shot in shots
        ]
    )
    basis_on = basis[:, on_idx]
    basis_off = basis[:, off_idx]

    doses = np.ones(len(shots))
    rho = spec.rho

    def failing(d: np.ndarray) -> int:
        i_on = d @ basis_on
        i_off = d @ basis_off
        return int((i_on < rho).sum() + (i_off >= rho).sum())

    best_doses = doses.copy()
    best_failing = failing(doses)
    initial_failing = best_failing
    used = 0
    for used in range(1, iterations + 1):
        i_on = doses @ basis_on
        i_off = doses @ basis_off
        under = np.maximum(rho + margin - i_on, 0.0)
        over = np.maximum(i_off - rho + margin, 0.0)
        # dL/dd = -2 Σ under · I_i(on) + 2 Σ over · I_i(off)
        gradient = -2.0 * (basis_on @ under) + 2.0 * (basis_off @ over)
        norm = np.linalg.norm(gradient)
        if norm < 1e-12:
            break
        doses = np.clip(doses - step * gradient / norm, lo, hi)
        now = failing(doses)
        if now < best_failing:
            best_failing = now
            best_doses = doses.copy()
        if best_failing == 0:
            break
    dosed = [DosedShot(shot, float(d)) for shot, d in zip(shots, best_doses)]
    return DoseOptimizeResult(
        shots=dosed,
        failing_before=initial_failing,
        failing_after=best_failing,
        iterations=used,
    )
