"""Double-Gaussian point spread function (forward + backscatter).

The paper's model (Eq. 2) keeps only the forward-scattering Gaussian —
appropriate for shot-level fracturing, where the backscattered dose is a
slowly varying background.  This module provides the standard two-term
e-beam PSF used by proximity-effect correction,

    PSF(r) = 1/(1+η) · [ g(r; σ_f) + η · g(r; β) ],

with forward range ``σ_f`` (nanometres), backscatter range ``β``
(micrometres at mask scale) and backscatter ratio ``η``.  Because β is
orders of magnitude larger than a clip, the backscatter term is computed
as a Gaussian blur of the exposed-area density rather than per shot —
the usual PEC approximation.

It answers the question the fixed-σ model cannot: *how much dose margin
does a fracturing solution keep once pattern-density backscatter shifts
the effective threshold?*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.raster import PixelGrid, rasterize_rect
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@dataclass(frozen=True, slots=True)
class DoubleGaussianPsf:
    """Two-Gaussian PSF parameters.

    Defaults: σ_f = 6.25 nm (the paper's forward range), β = 2 µm and
    η = 0.5 — representative 50 kV mask-writer values.
    """

    sigma_forward: float = 6.25
    beta: float = 2000.0
    eta: float = 0.5

    def __post_init__(self) -> None:
        if self.sigma_forward <= 0.0 or self.beta <= 0.0:
            raise ValueError("scattering ranges must be positive")
        if self.eta < 0.0:
            raise ValueError("backscatter ratio must be non-negative")
        if self.beta <= self.sigma_forward:
            raise ValueError("backscatter range must exceed the forward range")


class DoubleGaussianExposure:
    """Exposure simulation under the two-term PSF."""

    def __init__(self, grid: PixelGrid, psf: DoubleGaussianPsf = DoubleGaussianPsf()):
        self.grid = grid
        self.psf = psf

    def forward(self, shots: list[Rect]) -> np.ndarray:
        imap = IntensityMap(self.grid, self.psf.sigma_forward)
        for shot in shots:
            imap.add(shot)
        return imap.total.copy()

    def coverage(self, shots: list[Rect]) -> np.ndarray:
        """Exposure multiplicity per pixel (overlaps count double)."""
        total = np.zeros(self.grid.shape)
        for shot in shots:
            total += rasterize_rect(shot, self.grid)
        return total

    def backscatter(self, shots: list[Rect]) -> np.ndarray:
        """Slowly varying backscatter dose: blurred exposure density.

        The β-Gaussian blur of the coverage map; for clip-sized windows
        (≪ β) this is nearly uniform and equals η × (local density)
        after normalization.
        """
        sigma_px = self.psf.beta / (np.sqrt(2.0) * self.grid.pitch)
        return gaussian_filter(self.coverage(shots), sigma_px, mode="constant")

    def total(self, shots: list[Rect]) -> np.ndarray:
        """Normalized double-Gaussian exposure (η = 0 → paper's model)."""
        eta = self.psf.eta
        combined = self.forward(shots) + eta * self.backscatter(shots)
        return combined / (1.0 + eta)


def dose_margin(
    shots: list[Rect],
    shape: MaskShape,
    spec: FractureSpec,
    psf: DoubleGaussianPsf = DoubleGaussianPsf(),
) -> dict[str, float]:
    """Worst-case dose margins of a solution under the two-term PSF.

    Returns the minimum margin above threshold on P_on and below
    threshold on P_off, both under the forward-only model and under the
    full PSF.  Shrinking margins quantify how much headroom pattern
    density consumes — the motivation for dose correction flows.
    """
    exposure = DoubleGaussianExposure(shape.grid, psf)
    pixels = shape.pixels(spec.gamma)
    forward = exposure.forward(shots)
    full = exposure.total(shots)
    out: dict[str, float] = {}
    for label, field in (("forward", forward), ("full", full)):
        on_vals = field[pixels.on]
        off_vals = field[pixels.off]
        out[f"{label}_on_margin"] = float(
            on_vals.min() - spec.rho if len(on_vals) else np.inf
        )
        out[f"{label}_off_margin"] = float(
            spec.rho - off_vals.max() if len(off_vals) else np.inf
        )
    return out


def effective_threshold_shift(psf: DoubleGaussianPsf, density: float) -> float:
    """Threshold shift caused by uniform backscatter at a pattern density.

    With a locally uniform density ``d`` the backscatter adds
    ``η·d/(1+η)`` everywhere, which is equivalent to lowering the print
    threshold by that amount — the classic PEC rule of thumb.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("pattern density must be in [0, 1]")
    return psf.eta * density / (1.0 + psf.eta)
