"""E-beam proximity-effect model and exposure simulation.

Implements the fixed-dose exposure model of paper §2:

* :mod:`repro.ebeam.kernel` — the truncated Gaussian proximity kernel
  ``G(x, y)`` (Eq. 2) caused by forward scattering.
* :mod:`repro.ebeam.intensity` — analytic shot intensity ``I_s`` (Eq. 3):
  the convolution of the shot's rectangular function (Eq. 1) with the
  kernel is separable and closes to a product of erf differences.
* :mod:`repro.ebeam.lut` — the lookup-table acceleration the paper uses to
  speed up the convolutions inside shot refinement (§4.1).
* :mod:`repro.ebeam.intensity_map` — incrementally maintained total
  intensity ``I_tot`` over the pixel grid; shots can be added, removed and
  edge-moved with updates restricted to their 3σ neighbourhood.
* :mod:`repro.ebeam.corner` — corner-rounding analysis and the numeric
  derivation of ``L_th``, the longest 45° segment a shot corner can write
  within the CD tolerance (Fig. 2).
* :mod:`repro.ebeam.writer` — variable-shaped-beam writer time model used
  by the mask cost analysis.
* :mod:`repro.ebeam.dose` — optional variable-dose extension (import the
  module directly; it sits above the mask layer and is therefore not
  re-exported here).
"""

from repro.ebeam.corner import compute_lth, corner_rounding_contour
from repro.ebeam.intensity import point_intensity, shot_intensity, shot_profile_1d
from repro.ebeam.intensity_map import IntensityMap
from repro.ebeam.kernel import GaussianKernel
from repro.ebeam.lut import ErfLookupTable
from repro.ebeam.writer import VsbWriterModel

__all__ = [
    "ErfLookupTable",
    "GaussianKernel",
    "IntensityMap",
    "VsbWriterModel",
    "compute_lth",
    "corner_rounding_contour",
    "point_intensity",
    "shot_intensity",
    "shot_profile_1d",
]
