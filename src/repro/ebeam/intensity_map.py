"""Incrementally maintained total intensity ``I_tot`` over the pixel grid.

Shot refinement (paper §4) evaluates thousands of candidate edge moves.
Recomputing all shots every time would dominate runtime, so — like the
paper's implementation — intensity is maintained incrementally: adding,
removing or moving a shot only touches the pixels within the shot's
blur reach.  The reach is 4σ (erf tail < 2e-8) rather than the kernel's
3σ truncation so incremental and from-scratch evaluation agree to float
precision; tests assert the drift bound.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.ebeam.intensity import shot_intensity
from repro.ebeam.lut import ErfLookupTable, default_lut
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.obs import get_recorder


class IntensityMap:
    """Sum of shot intensities sampled at the pixel centres of ``grid``."""

    __slots__ = ("grid", "sigma", "reach", "_lut", "_total")

    def __init__(
        self,
        grid: PixelGrid,
        sigma: float,
        lut: ErfLookupTable | None = None,
        reach_sigmas: float = 4.0,
    ):
        if sigma <= 0.0:
            raise ValueError("sigma must be positive")
        self.grid = grid
        self.sigma = sigma
        self.reach = reach_sigmas * sigma
        self._lut = lut if lut is not None else default_lut()
        self._total = np.zeros(grid.shape, dtype=np.float64)

    # -- queries -------------------------------------------------------------

    @property
    def total(self) -> np.ndarray:
        """The full I_tot array (read-only view by convention)."""
        return self._total

    def window_of(self, rect: Rect) -> tuple[slice, slice]:
        """Index window of all pixels the shot ``rect`` can influence."""
        return self.grid.rect_to_slices(rect, margin=self.reach)

    def union_window(self, a: Rect, b: Rect) -> tuple[slice, slice]:
        """Window of pixels influenced by either of two shots (edge moves)."""
        return self.grid.rect_to_slices(a.union_bbox(b), margin=self.reach)

    def shot_patch(
        self, shot: Rect, window: tuple[slice, slice] | None = None
    ) -> tuple[tuple[slice, slice], np.ndarray]:
        """Intensity of a single shot restricted to its influence window."""
        if window is None:
            window = self.window_of(shot)
        get_recorder().incr("intensity.patch_evals")
        return window, shot_intensity(shot, self.grid, self.sigma, window, self._lut)

    # -- mutation --------------------------------------------------------------

    def add(self, shot: Rect) -> None:
        window, patch = self.shot_patch(shot)
        self._total[window] += patch

    def remove(self, shot: Rect) -> None:
        window, patch = self.shot_patch(shot)
        self._total[window] -= patch

    def replace(self, old: Rect, new: Rect) -> None:
        """Swap ``old`` for ``new`` touching only the union window once."""
        window = self.union_window(old, new)
        _, old_patch = self.shot_patch(old, window)
        _, new_patch = self.shot_patch(new, window)
        self._total[window] += new_patch - old_patch

    def rebuild(self, shots: Iterable[Rect]) -> None:
        """Recompute from scratch (used to bound incremental drift)."""
        self._total[:] = 0.0
        for shot in shots:
            self.add(shot)

    def candidate_total(
        self, old: Rect, new: Rect, window: tuple[slice, slice] | None = None
    ) -> tuple[tuple[slice, slice], np.ndarray]:
        """What I_tot would look like in the affected window if ``old``
        were replaced by ``new`` — without committing the change.

        This is the hot path of GreedyShotEdgeAdjustment: two calls per
        shot edge per iteration.  Callers that know the change is local
        (single-edge moves) pass a tighter ``window``; intensity outside
        it differs only by the erf tail beyond the blur reach (< 2e-8).
        """
        if window is None:
            window = self.union_window(old, new)
        _, old_patch = self.shot_patch(old, window)
        _, new_patch = self.shot_patch(new, window)
        return window, self._total[window] - old_patch + new_patch

    def edge_move_delta(
        self, old: Rect, new: Rect, edge: str
    ) -> tuple[tuple[slice, slice], np.ndarray]:
        """Intensity change of a single-edge move, on its narrow window.

        Only one axis profile differs between ``old`` and ``new``, so the
        delta is one outer product of (changed-axis profile difference) ×
        (unchanged-axis profile) — the cheapest possible pricing of a
        candidate edge move.
        """
        window = self.edge_move_window(old, new, edge)
        ys = self.grid.y_centers()[window[0]]
        xs = self.grid.x_centers()[window[1]]
        # One batched LUT evaluation for all six erf arguments — the
        # arrays here are tiny, so per-call overhead dominates otherwise.
        if edge in ("left", "right"):
            changed, fixed = xs, ys
            c_lo_old, c_hi_old = old.xbl, old.xtr
            c_lo_new, c_hi_new = new.xbl, new.xtr
            f_lo, f_hi = old.ybl, old.ytr
        else:
            changed, fixed = ys, xs
            c_lo_old, c_hi_old = old.ybl, old.ytr
            c_lo_new, c_hi_new = new.ybl, new.ytr
            f_lo, f_hi = old.xbl, old.xtr
        n_c, n_f = len(changed), len(fixed)
        args = np.empty(4 * n_c + 2 * n_f)
        args[0:n_c] = changed - c_lo_old
        args[n_c : 2 * n_c] = changed - c_hi_old
        args[2 * n_c : 3 * n_c] = changed - c_lo_new
        args[3 * n_c : 4 * n_c] = changed - c_hi_new
        args[4 * n_c : 4 * n_c + n_f] = fixed - f_lo
        args[4 * n_c + 2 * n_f - n_f :] = fixed - f_hi
        args /= self.sigma
        obs = get_recorder()
        obs.incr("intensity.edge_deltas")
        obs.incr("intensity.lut_hits", len(args))
        e = self._lut(args)
        profile_old = 0.5 * (e[0:n_c] - e[n_c : 2 * n_c])
        profile_new = 0.5 * (e[2 * n_c : 3 * n_c] - e[3 * n_c : 4 * n_c])
        profile_fixed = 0.5 * (
            e[4 * n_c : 4 * n_c + n_f] - e[4 * n_c + n_f : 4 * n_c + 2 * n_f]
        )
        delta = profile_new - profile_old
        if edge in ("left", "right"):
            return window, np.outer(profile_fixed, delta)
        return window, np.outer(delta, profile_fixed)

    def edge_move_window(self, old: Rect, new: Rect, edge: str) -> tuple[slice, slice]:
        """Window where a single-edge move changes the intensity.

        For a vertical-edge move only the x profile changes, and only
        within the blur reach of the swept strip — the window is a narrow
        band spanning the shot's full (padded) height, and vice versa for
        horizontal edges.  Roughly an order of magnitude smaller than the
        full union window, which is what makes edge pricing cheap.
        """
        if edge in ("left", "right"):
            x_old = old.edge_coordinate(edge)
            x_new = new.edge_coordinate(edge)
            band = Rect(
                min(x_old, x_new), min(old.ybl, new.ybl),
                max(x_old, x_new), max(old.ytr, new.ytr),
            )
        else:
            y_old = old.edge_coordinate(edge)
            y_new = new.edge_coordinate(edge)
            band = Rect(
                min(old.xbl, new.xbl), min(y_old, y_new),
                max(old.xtr, new.xtr), max(y_old, y_new),
            )
        return self.grid.rect_to_slices(band, margin=self.reach)

    def copy(self) -> "IntensityMap":
        clone = IntensityMap.__new__(IntensityMap)
        clone.grid = self.grid
        clone.sigma = self.sigma
        clone.reach = self.reach
        clone._lut = self._lut
        clone._total = self._total.copy()
        return clone
