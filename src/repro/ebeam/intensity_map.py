"""Incrementally maintained total intensity ``I_tot`` over the pixel grid.

Shot refinement (paper §4) evaluates thousands of candidate edge moves.
Recomputing all shots every time would dominate runtime, so — like the
paper's implementation — intensity is maintained incrementally: adding,
removing or moving a shot only touches the pixels within the shot's
blur reach.  The reach is 4σ (erf tail < 2e-8) rather than the kernel's
3σ truncation so incremental and from-scratch evaluation agree to float
precision; tests assert the drift bound.

Because the kernel is separable, every patch this module produces is an
outer product of two 1-D axis profiles ``0.5·(erf((t−lo)/σ) −
erf((t−hi)/σ))``.  Shots snap to the pixel pitch, so the same (axis, lo,
hi, window) profile recurs heavily across candidate pricing and committed
updates; :class:`IntensityMap` therefore memoizes profiles in a keyed
cache (hit/miss counters exported through ``repro.obs``).  The cache
needs no invalidation: a profile depends only on the grid, σ and the LUT
— all immutable — never on the current shot list.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from repro.ebeam.intensity import shot_intensity
from repro.ebeam.lut import ErfLookupTable, default_lut
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.obs import get_recorder

# A profile-cache key: (axis, lo, hi, window start, window stop).
ProfileKey = tuple[str, float, float, int, int]

_PROFILE_CACHE_DEFAULT = True
_PROFILE_CACHE_LIMIT = 20_000
_DELTA_CACHE_LIMIT = 4096


class ProfileBank:
    """Process-level store of 1-D profile caches, shared across jobs.

    A profile depends only on (grid geometry, σ, LUT tabulation) — never
    on the current shot list — so two fracture runs over the *same
    layout* recompute identical profiles from scratch when each builds a
    private :class:`IntensityMap`.  The service daemon installs a bank
    (:func:`set_profile_bank`); every map constructed while it is
    installed adopts the bank's shared cache dict for its key instead of
    a private one, so a resubmitted layout starts with every profile of
    the previous run already warm.

    Thread safety: ``cache_for`` is guarded by a lock (it runs once per
    map construction, never on the pricing hot path); the per-key dicts
    themselves are mutated only through single ``dict`` operations,
    which are atomic under the GIL — concurrent jobs sharing a cache can
    at worst duplicate a profile computation, never corrupt one.
    """

    def __init__(self, max_caches: int = 64):
        if max_caches < 1:
            raise ValueError("max_caches must be at least 1")
        self.max_caches = max_caches
        self._lock = threading.Lock()
        self._caches: dict[tuple, dict[ProfileKey, np.ndarray]] = {}
        self.attach_count = 0
        self.warm_attach_count = 0

    @staticmethod
    def bank_key(grid, sigma: float, lut: ErfLookupTable) -> tuple:
        """Cache identity: grid geometry + σ + LUT tabulation."""
        return (
            grid.x0, grid.y0, grid.pitch, grid.nx, grid.ny,
            sigma, lut.key,
        )

    def cache_for(self, key: tuple) -> dict[ProfileKey, np.ndarray]:
        """The shared cache dict for ``key`` (created on first use).

        When the bank is full the oldest cache is dropped whole — a
        layout-granular LRU keeps the memory bound without touching the
        per-profile hot path.
        """
        with self._lock:
            cache = self._caches.pop(key, None)
            if cache is not None:
                self._caches[key] = cache  # re-insert: most recently used
                self.attach_count += 1
                if cache:
                    self.warm_attach_count += 1
                return cache
            while len(self._caches) >= self.max_caches:
                oldest = next(iter(self._caches))
                del self._caches[oldest]
            cache = {}
            self._caches[key] = cache
            self.attach_count += 1
            return cache

    @property
    def layouts(self) -> int:
        return len(self._caches)

    @property
    def profiles(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._caches.values())

    def clear(self) -> None:
        with self._lock:
            self._caches.clear()


_PROFILE_BANK: ProfileBank | None = None
_PROFILE_BANK_LOCK = threading.Lock()


def set_profile_bank(bank: ProfileBank | None) -> ProfileBank | None:
    """Install (or, with ``None``, remove) the process profile bank.

    Returns the previously installed bank.  Maps constructed while a
    bank is installed share its caches; existing maps are unaffected
    (copy-on-swap: they keep whatever cache dict they already hold).
    """
    global _PROFILE_BANK
    with _PROFILE_BANK_LOCK:
        previous = _PROFILE_BANK
        _PROFILE_BANK = bank
        return previous


def get_profile_bank() -> ProfileBank | None:
    return _PROFILE_BANK


class profile_caching:
    """Temporarily set the default for new maps: ``with profile_caching(False): ...``.

    Used by the pricing benchmarks to time the uncached per-candidate
    baseline without threading a flag through every constructor.
    """

    def __init__(self, enabled: bool):
        self._enabled = bool(enabled)

    def __enter__(self) -> "profile_caching":
        global _PROFILE_CACHE_DEFAULT
        self._previous = _PROFILE_CACHE_DEFAULT
        _PROFILE_CACHE_DEFAULT = self._enabled
        return self

    def __exit__(self, *exc: object) -> bool:
        global _PROFILE_CACHE_DEFAULT
        _PROFILE_CACHE_DEFAULT = self._previous
        return False


class IntensityMap:
    """Sum of shot intensities sampled at the pixel centres of ``grid``."""

    __slots__ = (
        "grid",
        "sigma",
        "reach",
        "_lut",
        "_total",
        "_x_centers",
        "_y_centers",
        "_profile_cache",
        "_profile_cache_limit",
        "_cache_profiles",
        "_delta_cache",
    )

    def __init__(
        self,
        grid: PixelGrid,
        sigma: float,
        lut: ErfLookupTable | None = None,
        reach_sigmas: float = 4.0,
        profile_cache: bool | None = None,
        profile_cache_limit: int = _PROFILE_CACHE_LIMIT,
    ):
        if sigma <= 0.0:
            raise ValueError("sigma must be positive")
        self.grid = grid
        self.sigma = sigma
        self.reach = reach_sigmas * sigma
        self._lut = lut if lut is not None else default_lut()
        self._total = np.zeros(grid.shape, dtype=np.float64)
        self._x_centers = grid.x_centers()
        self._y_centers = grid.y_centers()
        self._profile_cache_limit = profile_cache_limit
        self._cache_profiles = (
            _PROFILE_CACHE_DEFAULT if profile_cache is None else profile_cache
        )
        bank = _PROFILE_BANK
        if bank is not None and self._cache_profiles:
            # Adopt the process bank's shared cache for this geometry:
            # a rerun of the same layout starts fully warm.
            self._profile_cache = bank.cache_for(
                ProfileBank.bank_key(grid, sigma, self._lut)
            )
        else:
            self._profile_cache: dict[ProfileKey, np.ndarray] = {}
        self._delta_cache: dict[tuple[ProfileKey, ProfileKey], np.ndarray] = {}

    # -- queries -------------------------------------------------------------

    @property
    def total(self) -> np.ndarray:
        """The full I_tot array (read-only view by convention)."""
        return self._total

    @property
    def profile_cache_enabled(self) -> bool:
        return self._cache_profiles

    @property
    def profile_cache_size(self) -> int:
        return len(self._profile_cache)

    def window_of(self, rect: Rect) -> tuple[slice, slice]:
        """Index window of all pixels the shot ``rect`` can influence."""
        return self.grid.rect_to_slices(rect, margin=self.reach)

    def union_window(self, a: Rect, b: Rect) -> tuple[slice, slice]:
        """Window of pixels influenced by either of two shots (edge moves)."""
        return self.grid.rect_to_slices(a.union_bbox(b), margin=self.reach)

    def shot_patch(
        self, shot: Rect, window: tuple[slice, slice] | None = None
    ) -> tuple[tuple[slice, slice], np.ndarray]:
        """Intensity of a single shot restricted to its influence window."""
        if window is None:
            window = self.window_of(shot)
        get_recorder().incr("intensity.patch_evals")
        if not self._cache_profiles:
            return window, shot_intensity(
                shot, self.grid, self.sigma, window, self._lut
            )
        fy = self.axis_profile("y", shot.ybl, shot.ytr, window[0])
        fx = self.axis_profile("x", shot.xbl, shot.xtr, window[1])
        return window, fy[:, None] * fx[None, :]

    # -- 1-D profile cache ---------------------------------------------------

    def axis_profile(
        self, axis: str, lo: float, hi: float, index_slice: slice
    ) -> np.ndarray:
        """Cached ``0.5·(erf((t−lo)/σ) − erf((t−hi)/σ))`` on a coord window.

        ``axis`` is ``"x"`` or ``"y"``; ``index_slice`` selects the pixel
        centres.  Returned arrays are read-only and shared between all
        callers with the same key.
        """
        key: ProfileKey = (axis, lo, hi, index_slice.start, index_slice.stop)
        profile = self._profile_cache.get(key)
        obs = get_recorder()
        if profile is not None:
            obs.incr("cache.profile.hits")
            return profile
        obs.incr("cache.profile.misses")
        args = self._profile_args(key)
        obs.incr("cache.lut.hits", len(args))
        profile = self._finish_profile(self._lut(args))
        self._store_profile(key, profile)
        return profile

    def ensure_profiles(self, keys: Iterable[ProfileKey]) -> None:
        """Batch-fill the cache: one LUT evaluation for every missing key.

        This is the iteration-level entry point of the batched pricing
        engine — all erf arguments of an entire candidate sweep are
        concatenated and interpolated in a single call, making profile
        evaluation throughput-bound instead of dispatch-bound.
        """
        cache = self._profile_cache
        missing: list[ProfileKey] = []
        pending: set[ProfileKey] = set()
        hits = 0
        for key in keys:
            if key in cache or key in pending:
                hits += 1
            else:
                pending.add(key)
                missing.append(key)
        obs = get_recorder()
        if hits:
            obs.incr("cache.profile.hits", hits)
        if not missing:
            return
        obs.incr("cache.profile.misses", len(missing))
        segments = [self._profile_args(key) for key in missing]
        obs.incr("cache.lut.hits", sum(len(s) for s in segments))
        for key, values in zip(missing, self._lut.eval_concat(segments)):
            self._store_profile(key, self._finish_profile(values))

    def profile(self, key: ProfileKey) -> np.ndarray:
        """Fetch a cached profile, computing it on the fly if absent."""
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        return self.axis_profile(key[0], key[1], key[2], slice(key[3], key[4]))

    def cached_profile(self, key: ProfileKey) -> np.ndarray:
        """:meth:`profile` without the tuple packing of a cache miss.

        Identical values; used by the pricing hot loops, which have
        usually pre-warmed the cache via :meth:`ensure_profiles`.
        """
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        return self.profile(key)

    def delta_profile(
        self, k_old: ProfileKey, k_new: ProfileKey, cache: bool = True
    ) -> np.ndarray:
        """Moved-axis difference profile ``profile(k_new) − profile(k_old)``.

        Memoized when ``cache`` is true: the difference is a
        deterministic function of two immutable cached profiles, so the
        memo needs no invalidation — recomputing reproduces the exact
        same bits.  The ``profile_caching(False)`` baseline passes
        ``cache=False`` and must not retain anything.
        """
        if not cache:
            return self.profile(k_new) - self.profile(k_old)
        memo = self._delta_cache
        dkey = (k_old, k_new)
        delta = memo.get(dkey)
        if delta is None:
            if len(memo) >= _DELTA_CACHE_LIMIT:
                memo.clear()
            delta = self.cached_profile(k_new) - self.cached_profile(k_old)
            delta.flags.writeable = False
            memo[dkey] = delta
        return delta

    def clear_profile_cache(self) -> None:
        self._profile_cache.clear()
        self._delta_cache.clear()

    def _profile_args(self, key: ProfileKey) -> np.ndarray:
        """The ``2n`` erf arguments of one profile: (t−lo)/σ then (t−hi)/σ."""
        axis, lo, hi, start, stop = key
        coords = (self._x_centers if axis == "x" else self._y_centers)[start:stop]
        n = len(coords)
        args = np.empty(2 * n)
        args[:n] = coords - lo
        args[n:] = coords - hi
        args /= self.sigma
        return args

    @staticmethod
    def _finish_profile(e: np.ndarray) -> np.ndarray:
        n = len(e) // 2
        profile = 0.5 * (e[:n] - e[n:])
        profile.flags.writeable = False
        return profile

    def _store_profile(self, key: ProfileKey, profile: np.ndarray) -> None:
        if not self._cache_profiles:
            return
        cache = self._profile_cache
        if len(cache) >= self._profile_cache_limit:
            cache.clear()
            get_recorder().incr("cache.profile.evictions")
        cache[key] = profile

    # -- mutation --------------------------------------------------------------

    def add(self, shot: Rect, window: tuple[slice, slice] | None = None) -> None:
        window, patch = self.shot_patch(shot, window)
        self._total[window] += patch

    def remove(self, shot: Rect, window: tuple[slice, slice] | None = None) -> None:
        window, patch = self.shot_patch(shot, window)
        self._total[window] -= patch

    def replace(
        self,
        old: Rect,
        new: Rect,
        window: tuple[slice, slice] | None = None,
    ) -> None:
        """Swap ``old`` for ``new`` touching only the union window once."""
        if window is None:
            window = self.union_window(old, new)
        _, old_patch = self.shot_patch(old, window)
        _, new_patch = self.shot_patch(new, window)
        self._total[window] += new_patch - old_patch

    def apply_edge_move(
        self, old: Rect, new: Rect, edge: str
    ) -> tuple[slice, slice]:
        """Commit a single-edge move by adding its narrow-window delta.

        The committed change is exactly the patch the pricing engines
        scored (same profiles, same window), so an accepted Δcost matches
        the realized cost change to fp precision — and the update touches
        a fraction of the pixels a union-window :meth:`replace` would.
        """
        window, patch = self.edge_move_delta(old, new, edge)
        self._total[window] += patch
        return window

    def rebuild(self, shots: Iterable[Rect]) -> None:
        """Recompute from scratch (used to bound incremental drift)."""
        self._total[:] = 0.0
        for shot in shots:
            self.add(shot)

    def candidate_total(
        self, old: Rect, new: Rect, window: tuple[slice, slice] | None = None
    ) -> tuple[tuple[slice, slice], np.ndarray]:
        """What I_tot would look like in the affected window if ``old``
        were replaced by ``new`` — without committing the change.

        This is the hot path of GreedyShotEdgeAdjustment: two calls per
        shot edge per iteration.  Callers that know the change is local
        (single-edge moves) pass a tighter ``window``; intensity outside
        it differs only by the erf tail beyond the blur reach (< 2e-8).
        """
        if window is None:
            window = self.union_window(old, new)
        _, old_patch = self.shot_patch(old, window)
        _, new_patch = self.shot_patch(new, window)
        return window, self._total[window] - old_patch + new_patch

    def edge_move_profile_keys(
        self, old: Rect, new: Rect, edge: str, window: tuple[slice, slice]
    ) -> tuple[ProfileKey, ProfileKey, ProfileKey]:
        """The (old, new, fixed) profile keys pricing an edge move needs."""
        ys, xs = window
        if edge in ("left", "right"):
            return (
                ("x", old.xbl, old.xtr, xs.start, xs.stop),
                ("x", new.xbl, new.xtr, xs.start, xs.stop),
                ("y", old.ybl, old.ytr, ys.start, ys.stop),
            )
        return (
            ("y", old.ybl, old.ytr, ys.start, ys.stop),
            ("y", new.ybl, new.ytr, ys.start, ys.stop),
            ("x", old.xbl, old.xtr, xs.start, xs.stop),
        )

    @staticmethod
    def outer_delta(
        edge: str,
        profile_old: np.ndarray,
        profile_new: np.ndarray,
        profile_fixed: np.ndarray,
    ) -> np.ndarray:
        """Outer-product intensity delta of an edge move from its profiles."""
        delta = profile_new - profile_old
        if edge in ("left", "right"):
            return profile_fixed[:, None] * delta[None, :]
        return delta[:, None] * profile_fixed[None, :]

    def edge_move_delta(
        self, old: Rect, new: Rect, edge: str
    ) -> tuple[tuple[slice, slice], np.ndarray]:
        """Intensity change of a single-edge move, on its narrow window.

        Only one axis profile differs between ``old`` and ``new``, so the
        delta is one outer product of (changed-axis profile difference) ×
        (unchanged-axis profile) — the cheapest possible pricing of a
        candidate edge move.  With the profile cache enabled the three
        profiles are dictionary lookups on the hot path; the uncached
        branch below is the original per-candidate evaluation, kept as
        the benchmark baseline and bit-identical oracle.
        """
        window = self.edge_move_window(old, new, edge)
        get_recorder().incr("intensity.edge_deltas")
        if self._cache_profiles:
            k_old, k_new, k_fixed = self.edge_move_profile_keys(
                old, new, edge, window
            )
            return window, self.outer_delta(
                edge, self.profile(k_old), self.profile(k_new), self.profile(k_fixed)
            )
        ys = self.grid.y_centers()[window[0]]
        xs = self.grid.x_centers()[window[1]]
        # One batched LUT evaluation for all six erf arguments — the
        # arrays here are tiny, so per-call overhead dominates otherwise.
        if edge in ("left", "right"):
            changed, fixed = xs, ys
            c_lo_old, c_hi_old = old.xbl, old.xtr
            c_lo_new, c_hi_new = new.xbl, new.xtr
            f_lo, f_hi = old.ybl, old.ytr
        else:
            changed, fixed = ys, xs
            c_lo_old, c_hi_old = old.ybl, old.ytr
            c_lo_new, c_hi_new = new.ybl, new.ytr
            f_lo, f_hi = old.xbl, old.xtr
        n_c, n_f = len(changed), len(fixed)
        args = np.empty(4 * n_c + 2 * n_f)
        args[0:n_c] = changed - c_lo_old
        args[n_c : 2 * n_c] = changed - c_hi_old
        args[2 * n_c : 3 * n_c] = changed - c_lo_new
        args[3 * n_c : 4 * n_c] = changed - c_hi_new
        args[4 * n_c : 4 * n_c + n_f] = fixed - f_lo
        args[4 * n_c + n_f :] = fixed - f_hi
        args /= self.sigma
        obs = get_recorder()
        obs.incr("cache.lut.hits", len(args))
        e = self._lut(args)
        profile_old = 0.5 * (e[0:n_c] - e[n_c : 2 * n_c])
        profile_new = 0.5 * (e[2 * n_c : 3 * n_c] - e[3 * n_c : 4 * n_c])
        profile_fixed = 0.5 * (
            e[4 * n_c : 4 * n_c + n_f] - e[4 * n_c + n_f : 4 * n_c + 2 * n_f]
        )
        delta = profile_new - profile_old
        if edge in ("left", "right"):
            return window, np.outer(profile_fixed, delta)
        return window, np.outer(delta, profile_fixed)

    def edge_move_window(self, old: Rect, new: Rect, edge: str) -> tuple[slice, slice]:
        """Window where a single-edge move changes the intensity.

        For a vertical-edge move only the x profile changes, and only
        within the blur reach of the swept strip — the window is a narrow
        band spanning the shot's full (padded) height, and vice versa for
        horizontal edges.  Roughly an order of magnitude smaller than the
        full union window, which is what makes edge pricing cheap.
        """
        if edge in ("left", "right"):
            x_old = old.edge_coordinate(edge)
            x_new = new.edge_coordinate(edge)
            band = Rect(
                min(x_old, x_new), min(old.ybl, new.ybl),
                max(x_old, x_new), max(old.ytr, new.ytr),
            )
        else:
            y_old = old.edge_coordinate(edge)
            y_new = new.edge_coordinate(edge)
            band = Rect(
                min(old.xbl, new.xbl), min(y_old, y_new),
                max(old.xtr, new.xtr), max(y_old, y_new),
            )
        return self.grid.rect_to_slices(band, margin=self.reach)

    def copy(self) -> "IntensityMap":
        clone = IntensityMap.__new__(IntensityMap)
        clone.grid = self.grid
        clone.sigma = self.sigma
        clone.reach = self.reach
        clone._lut = self._lut
        clone._total = self._total.copy()
        clone._x_centers = self._x_centers
        clone._y_centers = self._y_centers
        # Profiles are immutable (read-only arrays keyed by geometry), so
        # the clone can share them; only the dict itself is copied.
        clone._profile_cache = dict(self._profile_cache)
        clone._profile_cache_limit = self._profile_cache_limit
        clone._cache_profiles = self._cache_profiles
        clone._delta_cache = dict(self._delta_cache)
        return clone
