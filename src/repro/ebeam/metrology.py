"""Contour metrology: CD and edge-placement measurement of solutions.

CD-SEM style verification of a fracturing solution: cast horizontal or
vertical cutlines across the shape, find where the printed intensity
crosses the threshold ρ (sub-pixel, by linear interpolation), and
compare the printed critical dimension (CD) and edge positions against
the drawn target.  This is the measurement view of the γ tolerance: a
solution is in spec when every printed edge lies within γ of its drawn
position (equivalent, up to sampling, to the Eq. 4 pixel constraints).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@dataclass(frozen=True, slots=True)
class CutlineMeasurement:
    """Printed vs drawn segments along one cutline."""

    position: float  # the cutline's fixed coordinate (nm)
    orientation: str  # "h" (varying x) or "v" (varying y)
    printed: tuple[tuple[float, float], ...]  # threshold-crossing intervals
    drawn: tuple[tuple[float, float], ...]  # target mask intervals

    @property
    def printed_cd(self) -> float:
        """Width of the widest printed segment (0 if nothing prints)."""
        return max((hi - lo for lo, hi in self.printed), default=0.0)

    @property
    def drawn_cd(self) -> float:
        return max((hi - lo for lo, hi in self.drawn), default=0.0)

    @property
    def cd_error(self) -> float:
        return self.printed_cd - self.drawn_cd

    def worst_edge_error(self) -> float:
        """Largest |printed edge − nearest drawn edge| on this cutline."""
        drawn_edges = [e for seg in self.drawn for e in seg]
        printed_edges = [e for seg in self.printed for e in seg]
        if not drawn_edges or not printed_edges:
            return float("inf") if drawn_edges != printed_edges else 0.0
        return max(
            min(abs(p - d) for d in drawn_edges) for p in printed_edges
        )


def _crossings(values: np.ndarray, coords: np.ndarray, level: float) -> list[tuple[float, float]]:
    """Sub-pixel intervals where ``values >= level`` along ``coords``."""
    above = values >= level
    intervals: list[tuple[float, float]] = []
    start: float | None = None
    for i in range(len(values)):
        if above[i] and start is None:
            if i == 0:
                start = float(coords[0])
            else:
                t = (level - values[i - 1]) / (values[i] - values[i - 1])
                start = float(coords[i - 1] + t * (coords[i] - coords[i - 1]))
        elif not above[i] and start is not None:
            t = (level - values[i - 1]) / (values[i] - values[i - 1])
            end = float(coords[i - 1] + t * (coords[i] - coords[i - 1]))
            intervals.append((start, end))
            start = None
    if start is not None:
        intervals.append((start, float(coords[-1])))
    return intervals


def _mask_intervals(row: np.ndarray, coords: np.ndarray, pitch: float) -> list[tuple[float, float]]:
    """Drawn intervals from a boolean mask row (cell-edge resolution)."""
    intervals: list[tuple[float, float]] = []
    start: float | None = None
    for i in range(len(row)):
        if row[i] and start is None:
            start = float(coords[i] - pitch / 2.0)
        elif not row[i] and start is not None:
            intervals.append((start, float(coords[i - 1] + pitch / 2.0)))
            start = None
    if start is not None:
        intervals.append((start, float(coords[-1] + pitch / 2.0)))
    return intervals


def measure_cutline(
    shots: list[Rect],
    shape: MaskShape,
    spec: FractureSpec,
    position: float,
    orientation: str = "h",
    intensity: np.ndarray | None = None,
) -> CutlineMeasurement:
    """Measure one cutline (``orientation`` "h": y=position; "v": x=position)."""
    if orientation not in ("h", "v"):
        raise ValueError("orientation must be 'h' or 'v'")
    if intensity is None:
        imap = IntensityMap(shape.grid, spec.sigma)
        for shot in shots:
            imap.add(shot)
        intensity = imap.total
    grid = shape.grid
    if orientation == "h":
        iy, _ = grid.index_of(Point(grid.x0, position))
        values = intensity[iy, :]
        row = shape.inside[iy, :]
        coords = grid.x_centers()
    else:
        _, ix = grid.index_of(Point(position, grid.y0))
        values = intensity[:, ix]
        row = shape.inside[:, ix]
        coords = grid.y_centers()
    return CutlineMeasurement(
        position=position,
        orientation=orientation,
        printed=tuple(_crossings(values, coords, spec.rho)),
        drawn=tuple(_mask_intervals(row, coords, grid.pitch)),
    )


def epe_report(
    shots: list[Rect],
    shape: MaskShape,
    spec: FractureSpec,
    cutlines: int = 9,
) -> dict[str, float]:
    """Edge-placement summary over evenly spaced h+v cutlines.

    Returns the worst and mean edge error and CD error across cutlines
    that intersect the target.  A CD-clean solution (Eq. 4) keeps the
    worst edge error within ~γ + one pixel of sampling slack.
    """
    imap = IntensityMap(shape.grid, spec.sigma)
    for shot in shots:
        imap.add(shot)
    bbox = shape.polygon.bounding_box()
    edge_errors: list[float] = []
    cd_errors: list[float] = []
    for orientation, lo, hi in (
        ("h", bbox.ybl, bbox.ytr),
        ("v", bbox.xbl, bbox.xtr),
    ):
        for position in np.linspace(lo, hi, cutlines + 2)[1:-1]:
            cut = measure_cutline(
                shots, shape, spec, float(position), orientation, imap.total
            )
            if not cut.drawn:
                continue
            error = cut.worst_edge_error()
            if np.isfinite(error):
                edge_errors.append(error)
                cd_errors.append(abs(cut.cd_error))
    if not edge_errors:
        return {"worst_epe": float("inf"), "mean_epe": float("inf"),
                "worst_cd_error": float("inf")}
    return {
        "worst_epe": float(max(edge_errors)),
        "mean_epe": float(np.mean(edge_errors)),
        "worst_cd_error": float(max(cd_errors)),
    }
