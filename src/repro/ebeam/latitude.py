"""Dose latitude and edge-slope analysis of fracturing solutions.

Two solutions with the same shot count are not equally manufacturable:
writer dose drifts, and a solution that only just clears the Eq. 4
constraints prints out of spec at the first percent of drift.  Because
total intensity is linear in dose, the window of global dose scale
factors that keeps a solution feasible has a closed form:

    s_min = ρ / min_{p ∈ P_on} I(p)      (scale up until every on-pixel prints)
    s_max = ρ / max_{p ∈ P_off} I(p)     (scale down before any off-pixel prints)

and the *dose latitude* is the width of [s_min, s_max] relative to the
nominal dose — the standard process-window number.  The related
edge-slope statistic (|I − ρ| gradient across the CD band) flags sliver
shots: their shallow dose profiles are exactly why yield-driven
fracturing [6, 7] penalizes slivers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@dataclass(frozen=True, slots=True)
class DoseWindow:
    """Feasible global dose scale range for a solution."""

    s_min: float
    s_max: float

    @property
    def feasible_at_nominal(self) -> bool:
        return self.s_min <= 1.0 <= self.s_max

    @property
    def latitude(self) -> float:
        """Window width as a fraction of nominal dose (0 if empty)."""
        return max(0.0, self.s_max - self.s_min)

    @property
    def margin(self) -> float:
        """Smallest one-sided slack from nominal dose (can be negative)."""
        return min(1.0 - self.s_min, self.s_max - 1.0)


def dose_window(
    shots: list[Rect], shape: MaskShape, spec: FractureSpec
) -> DoseWindow:
    """Closed-form dose window of a solution (see module docstring)."""
    imap = IntensityMap(shape.grid, spec.sigma)
    for shot in shots:
        imap.add(shot)
    pixels = shape.pixels(spec.gamma)
    on_values = imap.total[pixels.on]
    off_values = imap.total[pixels.off]
    if len(on_values) == 0 or float(on_values.min()) <= 0.0:
        s_min = np.inf  # some on-pixel gets no dose: no scale can fix it
    else:
        s_min = spec.rho / float(on_values.min())
    if len(off_values) and float(off_values.max()) > 0.0:
        s_max = spec.rho / float(off_values.max())
    else:
        s_max = np.inf
    return DoseWindow(s_min=s_min, s_max=s_max)


def edge_slope_stats(
    shots: list[Rect], shape: MaskShape, spec: FractureSpec
) -> dict[str, float]:
    """Dose-gradient statistics across the CD band.

    The image log-slope analogue for e-beam: steep gradients through the
    γ band mean edge positions move little under dose drift.  Returns
    the minimum and mean gradient magnitude (per nm) over band pixels.
    """
    imap = IntensityMap(shape.grid, spec.sigma)
    for shot in shots:
        imap.add(shot)
    gy, gx = np.gradient(imap.total, shape.grid.pitch)
    magnitude = np.hypot(gx, gy)
    band = shape.pixels(spec.gamma).band
    values = magnitude[band]
    if len(values) == 0:
        return {"min_slope": 0.0, "mean_slope": 0.0}
    return {
        "min_slope": float(values.min()),
        "mean_slope": float(values.mean()),
    }


def compare_latitude(
    solutions: dict[str, list[Rect]], shape: MaskShape, spec: FractureSpec
) -> dict[str, DoseWindow]:
    """Dose windows for several methods' solutions on one shape."""
    return {
        name: dose_window(shots, shape, spec)
        for name, shots in solutions.items()
    }
