"""Lookup-table acceleration of the erf edge profile (paper §4.1).

Shot-edge adjustment evaluates three convolutions per candidate edge move;
the paper speeds the convolution up with a lookup table.  The 1-D edge
profile of a shot boundary is ``0.5 · (1 + erf(d / σ))`` as a function of
the signed distance ``d`` to the edge.  We tabulate erf once on a fine
grid and interpolate linearly — the error is far below the 1e-6 cost
resolution used by the refinement loop's improvement test.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np
from scipy.special import erf


class ErfLookupTable:
    """Linear-interpolation table for ``erf`` on ``[-bound, bound]``.

    Outside the tabulated range erf is saturated to ±1, which is exact to
    < 1e-8 for ``bound >= 4``.
    """

    __slots__ = ("bound", "step", "_table", "_inv_step")

    def __init__(self, bound: float = 5.0, samples: int = 20001):
        if bound <= 0.0:
            raise ValueError("bound must be positive")
        if samples < 2:
            raise ValueError("need at least 2 samples")
        self.bound = float(bound)
        xs = np.linspace(-bound, bound, samples)
        self._table = erf(xs)
        self.step = xs[1] - xs[0]
        self._inv_step = 1.0 / self.step

    def __call__(self, u: np.ndarray | float) -> np.ndarray | float:
        """Interpolated erf of ``u``; scalar in, Python float out."""
        scalar = np.ndim(u) == 0
        pos = np.asarray(
            (np.asarray(u, dtype=np.float64) + self.bound) * self._inv_step
        )
        last = len(self._table) - 1
        np.clip(pos, 0.0, float(last), out=pos)
        idx = pos.astype(np.int64)
        # The base index of the interpolation cell can be at most
        # samples - 2, so the idx + 1 read below stays in bounds; at the
        # upper table edge frac becomes exactly 1.0 and the interpolation
        # returns the last table entry.
        np.minimum(idx, last - 1, out=idx)
        frac = pos - idx
        lo = self._table[idx]
        out = lo + (self._table[idx + 1] - lo) * frac
        return float(out) if scalar else out

    def eval_concat(self, segments: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Evaluate several argument arrays with one table interpolation.

        The batched pricing engine concatenates every 1-D profile argument
        of an iteration into a single flat array so the clip/index/gather
        sequence of :meth:`__call__` runs once instead of per candidate.
        The returned views partition the flat result in input order, and
        each element is bit-identical to a per-array evaluation (the
        interpolation is elementwise).
        """
        if not segments:
            return []
        flat = segments[0] if len(segments) == 1 else np.concatenate(segments)
        values = self(flat)
        out: list[np.ndarray] = []
        offset = 0
        for segment in segments:
            out.append(values[offset : offset + len(segment)])
            offset += len(segment)
        return out

    def max_abs_error(self, samples: int = 4096) -> float:
        """Worst interpolation error over the table range (for tests)."""
        xs = np.linspace(-self.bound, self.bound, samples)
        return float(np.max(np.abs(self(xs) - erf(xs))))

    @property
    def key(self) -> tuple[float, int]:
        """Identity of the tabulation: ``(bound, samples)``.

        Two tables with the same key interpolate identically, so caches
        of values derived from a LUT (the 1-D profile bank of the
        service daemon) may key on this instead of object identity.
        """
        return (self.bound, len(self._table))


_DEFAULT_LUT: ErfLookupTable | None = None
# Concurrent jobs in the service daemon share the default table; the
# lock makes the lazy build and the swap race-free.  The fast path
# (table already built) reads one reference without locking — atomic
# under the GIL — so per-evaluation cost is unchanged.
_DEFAULT_LUT_LOCK = threading.Lock()


def default_lut() -> ErfLookupTable:
    """Process-wide shared table (construction costs ~1 ms, reuse is free).

    Thread-safe: concurrent first calls build the table exactly once
    (double-checked under a module lock), so parallel service jobs never
    observe a half-initialized default or build duplicate tables.
    """
    global _DEFAULT_LUT
    lut = _DEFAULT_LUT
    if lut is not None:
        return lut
    with _DEFAULT_LUT_LOCK:
        if _DEFAULT_LUT is None:
            _DEFAULT_LUT = ErfLookupTable()
        return _DEFAULT_LUT


def set_default_lut(lut: ErfLookupTable | None) -> ErfLookupTable | None:
    """Swap the process-wide table; returns the previous one.

    The LUT-resolution sweep benchmark uses this to re-run the same
    fracture under tables of different ``(bound, samples)`` without
    threading a table through every constructor.  Pass ``None`` to reset
    to lazy default construction.  Existing :class:`IntensityMap`
    instances keep the table they captured at construction.  The swap is
    serialized against concurrent :func:`default_lut` builds, so readers
    always observe either the old or the new table, never a torn state.
    """
    global _DEFAULT_LUT
    with _DEFAULT_LUT_LOCK:
        previous = _DEFAULT_LUT
        _DEFAULT_LUT = lut
        return previous
