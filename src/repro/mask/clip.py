"""Multi-polygon clips: one mask window containing several shapes.

Real mask windows hold a main feature plus its assist features; each
polygon is fractured independently (paper §2: "for a full-field mask,
each shape can be fractured independently"), so a clip is simply a
splitter: one boolean mask → one :class:`~repro.mask.shape.MaskShape`
per connected component, each on its own padded sub-grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.labeling import label_components
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid, rasterize_polygon
from repro.mask.shape import MaskShape


@dataclass(slots=True)
class MaskClip:
    """A named collection of independent target shapes."""

    name: str
    shapes: list[MaskShape] = field(default_factory=list)

    @property
    def total_area(self) -> float:
        return sum(shape.area for shape in self.shapes)

    @classmethod
    def from_mask(
        cls,
        mask: np.ndarray,
        grid: PixelGrid,
        name: str = "",
        margin: float = 30.0,
        min_area_px: int = 16,
    ) -> "MaskClip":
        """Split a boolean mask into per-component shapes.

        Components smaller than ``min_area_px`` are dropped (raster
        debris below any printable feature size).  Each component gets a
        fresh sub-grid padded by ``margin`` so its P_off neighbourhood is
        represented without carrying the whole clip window around.
        """
        labels, count = label_components(mask)
        clip = cls(name=name)
        sizes = np.bincount(labels.ravel())
        for label in range(1, count + 1):
            if sizes[label] < min_area_px:
                continue
            ys, xs = np.nonzero(labels == label)
            pad = int(np.ceil(margin / grid.pitch))
            y_lo = max(0, int(ys.min()) - pad)
            y_hi = min(grid.ny, int(ys.max()) + 1 + pad)
            x_lo = max(0, int(xs.min()) - pad)
            x_hi = min(grid.nx, int(xs.max()) + 1 + pad)
            sub_mask = (labels[y_lo:y_hi, x_lo:x_hi] == label)
            sub_grid = PixelGrid(
                grid.x0 + x_lo * grid.pitch,
                grid.y0 + y_lo * grid.pitch,
                grid.pitch,
                x_hi - x_lo,
                y_hi - y_lo,
            )
            index = len(clip.shapes) + 1
            clip.shapes.append(
                MaskShape.from_mask(sub_mask, sub_grid, name=f"{name}/{index}")
            )
        return clip

    @classmethod
    def from_polygons(
        cls,
        polygons: list[Polygon],
        name: str = "",
        pitch: float = 1.0,
        margin: float = 30.0,
    ) -> "MaskClip":
        """One shape per polygon (polygons are assumed disjoint)."""
        clip = cls(name=name)
        for index, polygon in enumerate(polygons, 1):
            clip.shapes.append(
                MaskShape.from_polygon(
                    polygon, pitch=pitch, margin=margin, name=f"{name}/{index}"
                )
            )
        return clip

    @classmethod
    def from_gds(
        cls,
        path,
        name: str = "",
        pitch: float = 1.0,
        margin: float = 30.0,
    ) -> "MaskClip":
        """Load the target-layer polygons of a GDSII file as a clip."""
        from repro.mask.gds import read_gds

        cell = read_gds(path)
        return cls.from_polygons(
            cell.targets, name=name or cell.name, pitch=pitch, margin=margin
        )

    def rasterized_check(self) -> bool:
        """Every shape's polygon re-rasterizes to its own mask (debug)."""
        for shape in self.shapes:
            mask = rasterize_polygon(shape.polygon, shape.grid)
            if not np.array_equal(mask, shape.inside):
                return False
        return True
