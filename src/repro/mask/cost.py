"""Mask manufacturing cost model (paper §1).

The paper's economics: mask write is ≈ 20 % of mask manufacturing cost
[4], write time is proportional to shot count [3, 4] (write cost is
dominated by e-beam tool depreciation, footnote 1), so a shot-count
reduction of ``x`` translates to a mask cost reduction of ≈ ``0.2 · x``.
A modern mask set costs more than a million dollars, which is what makes
a 10 % shot reduction (→ ≈ 2 % mask cost) economically significant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ebeam.writer import VsbWriterModel


@dataclass(frozen=True, slots=True)
class MaskCostModel:
    """Shot count → relative mask cost."""

    write_cost_fraction: float = 0.20
    mask_set_cost_usd: float = 1_500_000.0
    writer: VsbWriterModel = VsbWriterModel()

    def __post_init__(self) -> None:
        if not 0.0 < self.write_cost_fraction <= 1.0:
            raise ValueError("write cost fraction must be in (0, 1]")
        if self.mask_set_cost_usd <= 0.0:
            raise ValueError("mask set cost must be positive")

    def relative_mask_cost(self, shot_ratio: float) -> float:
        """Mask cost relative to a baseline, given the shot-count ratio.

        ``shot_ratio`` = new shots / baseline shots.  Only the write
        fraction of the cost scales with shots; the rest is fixed.
        """
        if shot_ratio < 0.0:
            raise ValueError("shot ratio must be non-negative")
        return (1.0 - self.write_cost_fraction) + self.write_cost_fraction * shot_ratio

    def cost_saving_fraction(self, shot_reduction: float) -> float:
        """Fractional mask-cost saving from a fractional shot reduction.

        The paper's headline arithmetic: ``cost_saving_fraction(0.10)``
        ≈ 0.02.
        """
        return 1.0 - self.relative_mask_cost(1.0 - shot_reduction)

    def mask_set_saving_usd(self, shot_reduction: float) -> float:
        return self.mask_set_cost_usd * self.cost_saving_fraction(shot_reduction)

    def write_time_saving_hours(
        self, baseline_shots: int, new_shots: int
    ) -> float:
        """Absolute write-time saving for a full mask."""
        return self.writer.write_time_hours(baseline_shots) - self.writer.write_time_hours(
            new_shots
        )
