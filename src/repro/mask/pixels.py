"""Pixel sampling and the P_on / P_off / P_x partition (paper §2).

The target shape is sampled at pixel pitch Δp.  Pixels within the CD
tolerance γ of the shape boundary form the don't-care band P_x; the
remaining inside pixels are P_on (must print) and outside pixels P_off
(must not print).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import distance_transform_edt

from repro.geometry.raster import PixelGrid


@dataclass(frozen=True, slots=True)
class PixelSets:
    """Boolean masks of the three pixel classes on a common grid."""

    on: np.ndarray
    off: np.ndarray
    band: np.ndarray

    def __post_init__(self) -> None:
        if not (self.on.shape == self.off.shape == self.band.shape):
            raise ValueError("pixel class arrays must share one shape")

    @property
    def count_on(self) -> int:
        return int(self.on.sum())

    @property
    def count_off(self) -> int:
        return int(self.off.sum())

    @property
    def count_band(self) -> int:
        return int(self.band.sum())

    def is_partition(self) -> bool:
        """Every pixel belongs to exactly one class (test invariant)."""
        total = (
            self.on.astype(np.int8) + self.off.astype(np.int8) + self.band.astype(np.int8)
        )
        return bool((total == 1).all())


def boundary_distance(inside: np.ndarray, grid: PixelGrid) -> np.ndarray:
    """Unsigned distance (nm) from each pixel centre to the shape boundary.

    Computed with two Euclidean distance transforms.  The boundary lies
    between pixel centres, so distances are offset by half a pixel to make
    a pixel adjacent to the boundary report ≈ Δp/2 rather than Δp.
    """
    if inside.shape != grid.shape:
        raise ValueError(f"mask shape {inside.shape} != grid shape {grid.shape}")
    d_inside = distance_transform_edt(inside, sampling=grid.pitch)
    d_outside = distance_transform_edt(~inside, sampling=grid.pitch)
    distance = np.where(inside, d_inside, d_outside)
    return np.maximum(distance - 0.5 * grid.pitch, 0.0)


def classify_pixels(inside: np.ndarray, grid: PixelGrid, gamma: float) -> PixelSets:
    """Partition the grid into P_on, P_off and the γ band P_x."""
    if gamma < 0.0:
        raise ValueError("gamma must be non-negative")
    distance = boundary_distance(inside, grid)
    band = distance <= gamma
    return PixelSets(on=inside & ~band, off=~inside & ~band, band=band)
