"""Hierarchy-aware fracturing: fracture unique geometry once, place many.

Real mask layouts are deeply hierarchical — a wafer plate is a small
unit cell arrayed thousands of times — yet a flattened flow re-fractures
every placement from scratch.  This module walks the
:class:`~repro.mask.gds.Layout` cell graph instead:

1. every placed target polygon (placement order identical to
   :meth:`Layout.flatten`) is canonicalized —
   translation-normalized, orientation-canonical vertex loop
   (:func:`repro.geometry.polygon.canonical_form`) — to a content hash;
2. the first placement of each unique geometry is fractured *in place*
   (so it is literally the flattened computation) and stored in a
   :class:`~repro.fracture.cache.FractureCache` keyed by the canonical
   hash, remembering the frame it was fractured in;
3. every later placement is instantiated by translating the stored
   template's shots by the (exact) frame difference.

Rotated or mirrored placements canonicalize to different vertex loops
and therefore get their own template — exactness beats cross-orientation
reuse, since fracturers are only translation-equivariant bit-for-bit
(integer-nanometre GDSII coordinates make every translation exact; see
:mod:`repro.geometry.transform`).  The result: the total shot list is
bit-identical to the flattened run, with unique-geometry fractures ≤
distinct cell geometries, and repeat placements cost a hash plus a
translation.

``hierarchy=False`` runs the same loop with no cache — the flattened
reference path with identical placement ordering, used by tests, the CI
bit-identity gate and ``benchmarks/bench_hierarchy.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.fracture.base import FractureResult, Fracturer
from repro.fracture.cache import (
    FractureCache,
    fingerprint_polygon,
    result_from_payload,
    result_to_payload,
)
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.gds import TARGET_LAYER, Layout
from repro.mask.shape import MaskShape
from repro.obs import get_logger, get_recorder

__all__ = ["HierarchyReport", "fracture_layout", "placed_polygons"]

logger = get_logger(__name__)


@dataclass(slots=True)
class HierarchyReport:
    """Outcome of fracturing a layout, hierarchical or flattened.

    ``results`` holds one :class:`FractureResult` per placed target
    polygon, in placement order; ``stats`` the cell/instance/cache
    accounting that also lands in manifests and telemetry.
    """

    results: list[FractureResult] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def shots(self) -> list[Rect]:
        """Total shot list, placement order (flatten-comparable)."""
        return [shot for result in self.results for shot in result.shots]

    @property
    def shot_count(self) -> int:
        return sum(r.shot_count for r in self.results)

    @property
    def total_runtime_s(self) -> float:
        return sum(r.runtime_s for r in self.results)

    @property
    def feasible_count(self) -> int:
        return sum(1 for r in self.results if r.feasible)

    @property
    def all_feasible(self) -> bool:
        return self.feasible_count == len(self.results)

    def summary(self) -> str:
        s = self.stats
        return (
            f"{s.get('mode', '?')}: {s.get('polygon_instances', 0)} placed "
            f"polygons ({s.get('unique_geometries', 0)} unique) → "
            f"{self.shot_count} shots, {s.get('template_fractures', 0)} "
            f"fractured fresh, {s.get('cache_hits', 0)} instantiated from "
            f"cache, {self.total_runtime_s:.2f}s"
        )


def placed_polygons(layout: Layout) -> list[tuple[str, Polygon]]:
    """Target-layer polygons of every placement, deterministic order.

    The order is :meth:`Layout.placements` order with each cell's
    polygons in declaration order — exactly the polygon order of
    :meth:`Layout.flatten` restricted to the target layer — so shot
    lists produced by walking this list align element for element with
    the flattened run.
    """
    placed: list[tuple[str, Polygon]] = []
    for path, cell_name, transform in layout.placements():
        for index, (layer, polygon) in enumerate(
            layout.cells[cell_name].polygons
        ):
            if layer != TARGET_LAYER:
                continue
            if not transform.is_identity:
                polygon = transform.apply_polygon(polygon)
            placed.append((f"{path}#p{index}", polygon))
    return placed


def fracture_layout(
    layout: Layout,
    fracturer: Fracturer,
    spec: FractureSpec,
    cache: FractureCache | None = None,
    hierarchy: bool = True,
    verbose: bool = False,
) -> HierarchyReport:
    """Fracture every placed target polygon of ``layout``.

    With ``hierarchy=True`` (default), unique geometry is fractured once
    and repeat placements are instantiated from ``cache`` (an ephemeral
    in-memory cache is created when none is given — pass a persistent
    one to share templates across runs).  With ``hierarchy=False`` the
    same placements are fractured fresh one by one — the flattened
    reference path.

    Either way the concatenated shot list is bit-identical: a fresh
    fracture *is* the flattened computation for that placement, and an
    instantiated one differs from it by an exact translation round-trip.
    """
    obs = get_recorder()
    placed = placed_polygons(layout)
    report = HierarchyReport()
    run_cache: FractureCache | None = None
    if hierarchy:
        run_cache = cache if cache is not None else FractureCache(
            max_entries=max(4096, len(placed))
        )
    method = fracturer.cache_method or fracturer.name
    window_nm = fracturer.cache_window_nm

    # Drive the cache at this level: detach the fracturer's own hook so
    # a shared cache is not consulted twice per placement.
    fracturer_cache = fracturer.cache
    fracturer.cache = None
    unique: set[str] = set()
    template_fractures = 0
    cache_hits = 0
    try:
        with obs.span(
            "hierarchy.fracture",
            mode="hierarchy" if hierarchy else "flatten",
            cells=len(layout.cells),
            instances=len(placed),
        ):
            for name, polygon in placed:
                obs.incr("hierarchy.instances")
                start = time.perf_counter()
                fingerprint, offset = fingerprint_polygon(
                    polygon, spec, method, window_nm
                )
                unique.add(fingerprint)
                payload = (
                    run_cache.get(fingerprint)
                    if run_cache is not None
                    else None
                )
                if payload is not None:
                    result = result_from_payload(
                        payload,
                        shape_name=name,
                        frame=offset,
                        lookup_s=time.perf_counter() - start,
                    )
                    cache_hits += 1
                    obs.incr("cache.hierarchy.hits")
                else:
                    shape = MaskShape.from_polygon(
                        polygon,
                        pitch=spec.pitch,
                        margin=spec.grid_margin,
                        name=name,
                    )
                    result = fracturer.fracture(shape, spec)
                    template_fractures += 1
                    obs.incr("hierarchy.template_fractures")
                    if run_cache is not None:
                        run_cache.put(
                            fingerprint,
                            result_to_payload(result, frame=offset),
                        )
                if verbose:
                    logger.info("%s", result.summary())
                report.results.append(result)
    finally:
        fracturer.cache = fracturer_cache

    report.stats = {
        "mode": "hierarchy" if hierarchy else "flatten",
        "cells": len(layout.cells),
        "cell_instances": len(layout.placements()),
        "polygon_instances": len(placed),
        "unique_geometries": len(unique),
        "template_fractures": template_fractures,
        "cache_hits": cache_hits,
        "hit_rate": cache_hits / len(placed) if placed else 0.0,
        "method": method,
    }
    if run_cache is not None:
        report.stats["cache"] = run_cache.stats()
    manifest = getattr(obs, "manifest", None)
    if isinstance(manifest, dict):
        manifest.setdefault("hierarchy", {}).update(report.stats)
    return report
