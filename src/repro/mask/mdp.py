"""Multi-shape mask data preparation pipeline.

A full-field mask contains billions of polygons; each is fractured
independently (paper §2).  :class:`MdpPipeline` is the batch driver a
downstream user runs over a clip library: fracture every shape, verify,
aggregate shot counts and write-time/cost projections, and optionally
persist the solutions.

Two layers of work avoidance compose on top of the batch loop:

* a :class:`~repro.fracture.cache.FractureCache` on the fracturer
  (``fracturer.cache``) — repeated geometry inside one batch, across
  batches (on-disk cache), or already fractured by the service hits by
  canonical content hash and is served by exact shot translation; the
  pipeline consults it in the parent loop so parallel runs only ship
  cache *misses* to the worker pool;
* a cross-shape **batch journal** (``journal=``/``resume=``) — a JSONL
  index of finished shapes keyed by the same canonical fingerprint.
  ``resume=True`` replays completed shapes from the journal and
  fractures only the remainder, so an interrupted ``mdp`` batch picks
  up where it stopped even for non-windowed methods (the windowed
  per-tile checkpoints from PR 4 cover interruption *within* a shape;
  the journal covers interruption *between* shapes).  Entries are
  fingerprint-validated — a changed spec, method or clip geometry
  silently invalidates the stale entry — and a torn final line (crash
  mid-append) is ignored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.fracture.base import FractureResult, Fracturer
from repro.fracture.cache import (
    fingerprint_polygon,
    result_from_payload,
    result_to_payload,
)
from repro.mask.constraints import FractureSpec
from repro.mask.cost import MaskCostModel
from repro.mask.io import save_solution
from repro.mask.shape import MaskShape
from repro.obs import TelemetryRecorder, get_logger, get_recorder, recording

logger = get_logger(__name__)


class BatchJournal:
    """Cross-shape resume index for an MDP batch run.

    One JSON line per finished shape: the shape's canonical fingerprint
    (geometry + spec + method + window — everything that could change
    the shots) plus the full result payload.  Loading tolerates a torn
    trailing line; replay only uses an entry whose fingerprint matches
    the *current* request, so edited clips or parameter changes can
    never replay stale shots.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}

    @property
    def entries(self) -> dict[str, dict[str, Any]]:
        return self._entries

    def load(self) -> int:
        """Read the journal from disk; returns the usable entry count."""
        self._entries = {}
        try:
            text = self.path.read_text()
        except OSError:
            return 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # Torn tail from a crash mid-append: everything before
                # it is intact (appends are line-atomic in practice and
                # validated here regardless).
                continue
            if (
                isinstance(record, dict)
                and record.get("v") == 1
                and "fingerprint" in record
                and "payload" in record
            ):
                self._entries[record["fingerprint"]] = record["payload"]
        return len(self._entries)

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        return self._entries.get(fingerprint)

    def append(
        self, fingerprint: str, shape_name: str, payload: dict[str, Any]
    ) -> None:
        record = {
            "v": 1,
            "shape": shape_name,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
        self._entries[fingerprint] = payload


@dataclass(slots=True)
class MdpReport:
    """Aggregate outcome of an MDP batch run."""

    results: list[FractureResult] = field(default_factory=list)

    @property
    def total_shots(self) -> int:
        return sum(r.shot_count for r in self.results)

    @property
    def total_runtime_s(self) -> float:
        return sum(r.runtime_s for r in self.results)

    @property
    def feasible_count(self) -> int:
        return sum(1 for r in self.results if r.feasible)

    @property
    def all_feasible(self) -> bool:
        return self.feasible_count == len(self.results)

    def shots_per_shape(self) -> float:
        if not self.results:
            return 0.0
        return self.total_shots / len(self.results)

    def summary(self) -> str:
        lines = [r.summary() for r in self.results]
        lines.append(
            f"total: {self.total_shots} shots over {len(self.results)} shapes, "
            f"{self.feasible_count} feasible, {self.total_runtime_s:.1f}s"
        )
        return "\n".join(lines)


class MdpPipeline:
    """Fracture a batch of shapes and aggregate mask-level economics."""

    def __init__(
        self,
        fracturer: Fracturer,
        spec: FractureSpec = FractureSpec(),
        cost_model: MaskCostModel = MaskCostModel(),
    ):
        self.fracturer = fracturer
        self.spec = spec
        self.cost_model = cost_model

    def _fingerprint(self, shape: MaskShape) -> tuple[str, tuple[float, float]]:
        method = self.fracturer.cache_method or self.fracturer.name
        return fingerprint_polygon(
            shape.polygon, self.spec, method, self.fracturer.cache_window_nm
        )

    def run(
        self,
        shapes: Sequence[MaskShape],
        output_dir: str | Path | None = None,
        verbose: bool = False,
        workers: int = 1,
        journal: str | Path | None = None,
        resume: bool = False,
    ) -> MdpReport:
        """Fracture every shape; optionally persist per-shape solutions.

        ``workers > 1`` fractures shapes in parallel processes — the
        per-shape independence of mask fracturing (paper §2) makes the
        batch embarrassingly parallel.  Results keep input order either
        way.  When a telemetry recorder is installed, each worker
        collects its own buffer and the parent merges them on join, so
        parallel runs lose no observability.

        With a fracture cache on the fracturer, hits are served in the
        parent loop and only misses are dispatched.  ``journal`` points
        at a cross-shape JSONL index (:class:`BatchJournal`): every
        finished shape is appended, and ``resume=True`` replays
        fingerprint-matching entries instead of re-fracturing.
        """
        obs = get_recorder()
        report = MdpReport()
        out = Path(output_dir) if output_dir is not None else None
        if out is not None:
            out.mkdir(parents=True, exist_ok=True)
        batch_journal = BatchJournal(journal) if journal is not None else None
        if batch_journal is not None and resume:
            replayable = batch_journal.load()
            obs.event("mdp.journal_loaded", entries=replayable)
        cache = self.fracturer.cache
        need_fp = cache is not None or batch_journal is not None
        results: list[FractureResult | None] = [None] * len(shapes)
        fingerprints: list[tuple[str, tuple[float, float]] | None] = [None] * len(shapes)
        resumed = 0
        with obs.span("mdp.batch", shapes=len(shapes), workers=workers):
            pending: list[tuple[int, MaskShape]] = []
            for index, shape in enumerate(shapes):
                if need_fp:
                    fingerprints[index] = self._fingerprint(shape)
                if batch_journal is not None and resume:
                    fingerprint, offset = fingerprints[index]
                    payload = batch_journal.get(fingerprint)
                    if payload is not None:
                        results[index] = result_from_payload(
                            payload, shape_name=shape.name, frame=offset
                        )
                        results[index].extra["resumed"] = True
                        resumed += 1
                        obs.incr("mdp.journal_replays")
                        continue
                if cache is not None and workers > 1:
                    # Parallel dispatch pre-consults so known work never
                    # ships to the pool; the serial path below leaves the
                    # hook attached instead, so within-batch duplicates
                    # hit as soon as their first instance finishes.
                    hit = self.fracturer.fracture_cached(shape, self.spec)
                    if hit is not None:
                        results[index] = hit
                        continue
                pending.append((index, shape))
            if workers > 1 and len(pending) > 1:
                fresh = self._run_parallel([s for _, s in pending], workers)
            else:
                fresh = []
                for _, shape in pending:
                    with obs.span("mdp.shape", shape=shape.name):
                        fresh.append(self.fracturer.fracture(shape, self.spec))
            for (index, shape), result in zip(pending, fresh):
                results[index] = result
                if not need_fp:
                    continue
                fingerprint, offset = fingerprints[index]
                payload = result_to_payload(result, frame=offset)
                if cache is not None and not result.extra.get("cache_hit"):
                    cache.put(fingerprint, payload)
                if batch_journal is not None and batch_journal.get(fingerprint) is None:
                    batch_journal.append(fingerprint, shape.name, payload)
        if need_fp:
            stats = {
                "shapes": len(shapes),
                "fresh": sum(
                    1
                    for r in results
                    if r is not None
                    and not r.extra.get("cache_hit")
                    and not r.extra.get("resumed")
                ),
                "cache_hits": sum(
                    1
                    for r in results
                    if r is not None
                    and r.extra.get("cache_hit")
                    and not r.extra.get("resumed")
                ),
                "journal_replays": resumed,
            }
            manifest = getattr(obs, "manifest", None)
            if isinstance(manifest, dict):
                manifest.setdefault("mdp_batch", {}).update(stats)
        for shape, result in zip(shapes, results):
            report.results.append(result)
            if verbose:
                logger.info("%s", result.summary())
            if out is not None:
                save_solution(
                    result.shots,
                    self.spec,
                    out / f"{shape.name or 'shape'}.solution.json",
                    clip_name=shape.name,
                    metadata={
                        "method": result.method,
                        "runtime_s": result.runtime_s,
                        "failing_pixels": result.report.total_failing,
                    },
                )
        return report

    def _run_parallel(
        self, shapes: Sequence[MaskShape], workers: int
    ) -> list[FractureResult]:
        from concurrent.futures import ProcessPoolExecutor

        obs = get_recorder()
        # The cache holds a lock (unpicklable) and would be copied per
        # worker anyway; the parent loop already consulted it, so ship
        # the fracturer bare and let the parent store the results.
        cache = self.fracturer.cache
        self.fracturer.cache = None
        try:
            jobs = [
                (self.fracturer, shape, self.spec, obs.enabled)
                for shape in shapes
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_fracture_job, jobs))
        finally:
            self.fracturer.cache = cache
        results = []
        for shape, (result, telemetry) in zip(shapes, outcomes):
            if telemetry is not None:
                obs.merge_child(telemetry, label=shape.name or "shape")
            results.append(result)
        return results

    def projected_saving(
        self, baseline: MdpReport, improved: MdpReport
    ) -> dict[str, float]:
        """Mask-level economics of an improved fracturing flow.

        Extrapolates the per-shape average shot reduction to a full mask
        using the cost model (paper §1: 10 % fewer shots ≈ 2 % mask cost).
        """
        base = baseline.total_shots
        new = improved.total_shots
        if base <= 0:
            raise ValueError("baseline has no shots")
        reduction = 1.0 - new / base
        return {
            "shot_reduction": reduction,
            "mask_cost_saving_fraction": self.cost_model.cost_saving_fraction(
                reduction
            ),
            "mask_set_saving_usd": self.cost_model.mask_set_saving_usd(reduction),
        }


def _fracture_job(job: tuple) -> tuple[FractureResult, dict | None]:
    """Module-level worker so ProcessPoolExecutor can pickle the call.

    When the parent had telemetry enabled, the worker records into a
    fresh per-process buffer and ships it back alongside the result for
    the parent to merge — recorders themselves never cross the process
    boundary.
    """
    fracturer, shape, spec, telemetry_enabled = job
    if not telemetry_enabled:
        return fracturer.fracture(shape, spec), None
    worker_recorder = TelemetryRecorder()
    with recording(worker_recorder):
        result = fracturer.fracture(shape, spec)
    return result, worker_recorder.export()
