"""Multi-shape mask data preparation pipeline.

A full-field mask contains billions of polygons; each is fractured
independently (paper §2).  :class:`MdpPipeline` is the batch driver a
downstream user runs over a clip library: fracture every shape, verify,
aggregate shot counts and write-time/cost projections, and optionally
persist the solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.fracture.base import FractureResult, Fracturer
from repro.mask.constraints import FractureSpec
from repro.mask.cost import MaskCostModel
from repro.mask.io import save_solution
from repro.mask.shape import MaskShape
from repro.obs import TelemetryRecorder, get_logger, get_recorder, recording

logger = get_logger(__name__)


@dataclass(slots=True)
class MdpReport:
    """Aggregate outcome of an MDP batch run."""

    results: list[FractureResult] = field(default_factory=list)

    @property
    def total_shots(self) -> int:
        return sum(r.shot_count for r in self.results)

    @property
    def total_runtime_s(self) -> float:
        return sum(r.runtime_s for r in self.results)

    @property
    def feasible_count(self) -> int:
        return sum(1 for r in self.results if r.feasible)

    @property
    def all_feasible(self) -> bool:
        return self.feasible_count == len(self.results)

    def shots_per_shape(self) -> float:
        if not self.results:
            return 0.0
        return self.total_shots / len(self.results)

    def summary(self) -> str:
        lines = [r.summary() for r in self.results]
        lines.append(
            f"total: {self.total_shots} shots over {len(self.results)} shapes, "
            f"{self.feasible_count} feasible, {self.total_runtime_s:.1f}s"
        )
        return "\n".join(lines)


class MdpPipeline:
    """Fracture a batch of shapes and aggregate mask-level economics."""

    def __init__(
        self,
        fracturer: Fracturer,
        spec: FractureSpec = FractureSpec(),
        cost_model: MaskCostModel = MaskCostModel(),
    ):
        self.fracturer = fracturer
        self.spec = spec
        self.cost_model = cost_model

    def run(
        self,
        shapes: Sequence[MaskShape],
        output_dir: str | Path | None = None,
        verbose: bool = False,
        workers: int = 1,
    ) -> MdpReport:
        """Fracture every shape; optionally persist per-shape solutions.

        ``workers > 1`` fractures shapes in parallel processes — the
        per-shape independence of mask fracturing (paper §2) makes the
        batch embarrassingly parallel.  Results keep input order either
        way.  When a telemetry recorder is installed, each worker
        collects its own buffer and the parent merges them on join, so
        parallel runs lose no observability.
        """
        obs = get_recorder()
        report = MdpReport()
        out = Path(output_dir) if output_dir is not None else None
        if out is not None:
            out.mkdir(parents=True, exist_ok=True)
        with obs.span("mdp.batch", shapes=len(shapes), workers=workers):
            if workers > 1 and len(shapes) > 1:
                results = self._run_parallel(shapes, workers)
            else:
                results = []
                for shape in shapes:
                    with obs.span("mdp.shape", shape=shape.name):
                        results.append(self.fracturer.fracture(shape, self.spec))
        for shape, result in zip(shapes, results):
            report.results.append(result)
            if verbose:
                logger.info("%s", result.summary())
            if out is not None:
                save_solution(
                    result.shots,
                    self.spec,
                    out / f"{shape.name or 'shape'}.solution.json",
                    clip_name=shape.name,
                    metadata={
                        "method": result.method,
                        "runtime_s": result.runtime_s,
                        "failing_pixels": result.report.total_failing,
                    },
                )
        return report

    def _run_parallel(
        self, shapes: Sequence[MaskShape], workers: int
    ) -> list[FractureResult]:
        from concurrent.futures import ProcessPoolExecutor

        obs = get_recorder()
        jobs = [
            (self.fracturer, shape, self.spec, obs.enabled) for shape in shapes
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_fracture_job, jobs))
        results = []
        for shape, (result, telemetry) in zip(shapes, outcomes):
            if telemetry is not None:
                obs.merge_child(telemetry, label=shape.name or "shape")
            results.append(result)
        return results

    def projected_saving(
        self, baseline: MdpReport, improved: MdpReport
    ) -> dict[str, float]:
        """Mask-level economics of an improved fracturing flow.

        Extrapolates the per-shape average shot reduction to a full mask
        using the cost model (paper §1: 10 % fewer shots ≈ 2 % mask cost).
        """
        base = baseline.total_shots
        new = improved.total_shots
        if base <= 0:
            raise ValueError("baseline has no shots")
        reduction = 1.0 - new / base
        return {
            "shot_reduction": reduction,
            "mask_cost_saving_fraction": self.cost_model.cost_saving_fraction(
                reduction
            ),
            "mask_set_saving_usd": self.cost_model.mask_set_saving_usd(reduction),
        }


def _fracture_job(job: tuple) -> tuple[FractureResult, dict | None]:
    """Module-level worker so ProcessPoolExecutor can pickle the call.

    When the parent had telemetry enabled, the worker records into a
    fresh per-process buffer and ships it back alongside the result for
    the parent to merge — recorders themselves never cross the process
    boundary.
    """
    fracturer, shape, spec, telemetry_enabled = job
    if not telemetry_enabled:
        return fracturer.fracture(shape, spec), None
    worker_recorder = TelemetryRecorder()
    with recording(worker_recorder):
        result = fracturer.fracture(shape, spec)
    return result, worker_recorder.export()
