"""Model parameters and the CD-feasibility check (paper §2, Eq. 4).

A fracturing solution is feasible when every pixel in P_on receives total
intensity ≥ ρ, every pixel in P_off receives < ρ, and every shot meets the
minimum size L_min.  Pixels in the γ band P_x are don't-care.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ebeam.corner import compute_lth
from repro.geometry.rect import Rect
from repro.mask.pixels import PixelSets


@dataclass(frozen=True, slots=True)
class FractureSpec:
    """Model-based fracturing parameters.

    Defaults are the paper's experimental setup (§5): γ = 2 nm,
    σ = 6.25 nm, Δp = 1 nm, fixed dose with print threshold ρ = 0.5, and
    a 10 nm minimum shot size.
    """

    sigma: float = 6.25
    gamma: float = 2.0
    pitch: float = 1.0
    rho: float = 0.5
    lmin: float = 10.0

    def __post_init__(self) -> None:
        if min(self.sigma, self.gamma, self.pitch, self.lmin) <= 0.0:
            raise ValueError("sigma, gamma, pitch and lmin must be positive")
        if not 0.0 < self.rho < 1.0:
            raise ValueError("rho must lie in (0, 1)")

    @property
    def lth(self) -> float:
        """Longest 45° segment writable by corner rounding (paper Fig. 2)."""
        return compute_lth(self.sigma, self.gamma, self.rho)

    @property
    def grid_margin(self) -> float:
        """Padding the pixel grid needs around the target bounding box.

        Shots may extend past the target by ~L_th/√2 and blur by 3σ, and
        P_off pixels out to the blur reach constrain the solution.
        """
        return 4.0 * self.sigma + self.lth


@dataclass(frozen=True, slots=True)
class FailureReport:
    """Where and how badly a solution violates Eq. 4.

    ``fail_on`` / ``fail_off`` are boolean arrays on the shape's grid;
    ``cost`` is the refinement objective Eq. 5: Σ |I_tot − ρ| over failing
    pixels.
    """

    fail_on: np.ndarray
    fail_off: np.ndarray
    cost: float
    undersize_shots: int = 0
    _count_on: int = field(default=-1, repr=False)
    _count_off: int = field(default=-1, repr=False)

    @property
    def count_on(self) -> int:
        if self._count_on >= 0:
            return self._count_on
        return int(self.fail_on.sum())

    @property
    def count_off(self) -> int:
        if self._count_off >= 0:
            return self._count_off
        return int(self.fail_off.sum())

    @property
    def total_failing(self) -> int:
        return self.count_on + self.count_off

    @property
    def feasible(self) -> bool:
        return self.total_failing == 0 and self.undersize_shots == 0


def failure_report(
    total_intensity: np.ndarray, pixels: PixelSets, rho: float
) -> FailureReport:
    """Evaluate Eq. 4 and the Eq. 5 cost over a precomputed I_tot array."""
    fail_on = pixels.on & (total_intensity < rho)
    fail_off = pixels.off & (total_intensity >= rho)
    gap = np.abs(total_intensity - rho)
    cost = float(gap[fail_on].sum() + gap[fail_off].sum())
    return FailureReport(
        fail_on=fail_on,
        fail_off=fail_off,
        cost=cost,
        _count_on=int(fail_on.sum()),
        _count_off=int(fail_off.sum()),
    )


def check_solution(
    shots: list[Rect],
    shape: "MaskShape",  # noqa: F821 — imported lazily to avoid a cycle
    spec: FractureSpec,
) -> FailureReport:
    """Full feasibility check of a shot list against a target shape.

    Builds I_tot from scratch (no incremental state), so it is the
    authoritative verdict used by tests and the benchmark harness.
    """
    from repro.ebeam.intensity_map import IntensityMap

    imap = IntensityMap(shape.grid, spec.sigma)
    for shot in shots:
        imap.add(shot)
    report = failure_report(imap.total, shape.pixels(spec.gamma), spec.rho)
    undersize = sum(1 for s in shots if not s.meets_min_size(spec.lmin - 1e-9))
    if undersize:
        report = FailureReport(
            fail_on=report.fail_on,
            fail_off=report.fail_off,
            cost=report.cost,
            undersize_shots=undersize,
            _count_on=report.count_on,
            _count_off=report.count_off,
        )
    return report
