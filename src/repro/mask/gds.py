"""Minimal GDSII stream format reader/writer.

GDSII is the de-facto interchange format for mask layout.  This module
implements the small subset the MDP flow needs — one library, one
structure, BOUNDARY elements for target polygons and (by convention on a
separate layer) the rectangular shots of a solution — so clips and
solutions can round-trip with real EDA tooling.

Supported records: HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME,
BOUNDARY, LAYER, DATATYPE, XY, ENDEL, ENDSTR, ENDLIB.  Everything else
is rejected loudly rather than skipped silently.

Layer convention used by this library:

* layer 1 — target mask polygons
* layer 2 — e-beam shots (axis-parallel rectangles)

Coordinates are stored in database units of 1 nm.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

TARGET_LAYER = 1
SHOT_LAYER = 2

# GDSII record types (subset).
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_ENDLIB = 0x0400

_KNOWN = {
    _HEADER, _BGNLIB, _LIBNAME, _UNITS, _BGNSTR, _STRNAME, _ENDSTR,
    _BOUNDARY, _LAYER, _DATATYPE, _XY, _ENDEL, _ENDLIB,
}

# A zeroed modification/access timestamp (12 int16 fields).
_NULL_TIME = (0,) * 12


@dataclass(slots=True)
class GdsCell:
    """One GDSII structure: named polygons per layer."""

    name: str
    polygons: list[tuple[int, Polygon]] = field(default_factory=list)

    def on_layer(self, layer: int) -> list[Polygon]:
        return [poly for lay, poly in self.polygons if lay == layer]

    @property
    def targets(self) -> list[Polygon]:
        return self.on_layer(TARGET_LAYER)

    @property
    def shots(self) -> list[Rect]:
        """Shot-layer polygons interpreted as their bounding rectangles."""
        return [poly.bounding_box() for poly in self.on_layer(SHOT_LAYER)]


class GdsError(ValueError):
    """Malformed or unsupported GDSII content."""


# -- writing ----------------------------------------------------------------


def _record(rtype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        raise GdsError("odd record length")
    return struct.pack(">HH", length, rtype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\x00"
    return data


def _gds_real8(value: float) -> bytes:
    """Excess-64 base-16 floating point, the GDSII 8-byte real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0.0:
        sign = 0x80
        value = -value
    exponent = 64
    mantissa = value
    while mantissa >= 1.0:
        mantissa /= 16.0
        exponent += 1
    while mantissa < 1.0 / 16.0:
        mantissa *= 16.0
        exponent -= 1
    if not 0 <= exponent <= 127:
        raise GdsError(f"real8 exponent out of range for {value}")
    mantissa_bits = int(mantissa * (1 << 56))
    return struct.pack(">B7s", sign | exponent, mantissa_bits.to_bytes(7, "big"))


def _xy_payload(points: list[tuple[int, int]]) -> bytes:
    return b"".join(struct.pack(">ii", x, y) for x, y in points)


def write_gds(
    cell: GdsCell,
    path: str | Path,
    library_name: str = "REPRO",
    db_unit_m: float = 1e-9,
) -> None:
    """Write one cell to a GDSII stream file (1 nm database units)."""
    chunks = [
        _record(_HEADER, struct.pack(">h", 600)),
        _record(_BGNLIB, struct.pack(">12h", *_NULL_TIME)),
        _record(_LIBNAME, _ascii(library_name)),
        # UNITS: db unit in user units (1e-3 um per nm), db unit in metres.
        _record(_UNITS, _gds_real8(1e-3) + _gds_real8(db_unit_m)),
        _record(_BGNSTR, struct.pack(">12h", *_NULL_TIME)),
        _record(_STRNAME, _ascii(cell.name)),
    ]
    for layer, polygon in cell.polygons:
        points = [(round(p.x), round(p.y)) for p in polygon.vertices]
        points.append(points[0])  # GDSII closes boundaries explicitly
        chunks += [
            _record(_BOUNDARY),
            _record(_LAYER, struct.pack(">h", layer)),
            _record(_DATATYPE, struct.pack(">h", 0)),
            _record(_XY, _xy_payload(points)),
            _record(_ENDEL),
        ]
    chunks += [_record(_ENDSTR), _record(_ENDLIB)]
    Path(path).write_bytes(b"".join(chunks))


def write_solution_gds(
    target: Polygon,
    shots: list[Rect],
    path: str | Path,
    cell_name: str = "CLIP",
) -> None:
    """Target on layer 1, shots on layer 2 — the library's convention."""
    cell = GdsCell(name=cell_name)
    cell.polygons.append((TARGET_LAYER, target))
    for shot in shots:
        cell.polygons.append((SHOT_LAYER, Polygon.from_rect(shot)))
    write_gds(cell, path)


# -- reading -----------------------------------------------------------------


def read_gds(path: str | Path) -> GdsCell:
    """Read the first structure of a GDSII stream file.

    Malformed input of any kind raises :class:`GdsError` — never a bare
    ``struct.error`` or an index error.
    """
    data = Path(path).read_bytes()
    try:
        return _parse(data)
    except GdsError:
        raise
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise GdsError(f"malformed GDSII stream: {exc}") from exc


def _parse(data: bytes) -> GdsCell:
    offset = 0
    cell: GdsCell | None = None
    current_layer: int | None = None
    in_boundary = False
    pending_points: list[Point] | None = None

    while offset < len(data):
        if offset + 4 > len(data):
            raise GdsError("truncated record header")
        length, rtype = struct.unpack(">HH", data[offset : offset + 4])
        if length < 4 or offset + length > len(data):
            raise GdsError(f"bad record length {length} at offset {offset}")
        payload = data[offset + 4 : offset + length]
        offset += length

        if rtype not in _KNOWN:
            raise GdsError(f"unsupported GDSII record 0x{rtype:04X}")
        if rtype == _BGNSTR:
            if cell is not None:
                raise GdsError("multiple structures are not supported")
            cell = GdsCell(name="")
        elif rtype == _STRNAME and cell is not None:
            cell.name = payload.rstrip(b"\x00").decode("ascii")
        elif rtype == _BOUNDARY:
            in_boundary = True
            current_layer = None
            pending_points = None
        elif rtype == _LAYER and in_boundary:
            (current_layer,) = struct.unpack(">h", payload)
        elif rtype == _XY and in_boundary:
            count = len(payload) // 8
            coords = struct.unpack(f">{2 * count}i", payload)
            pending_points = [
                Point(float(coords[2 * i]), float(coords[2 * i + 1]))
                for i in range(count)
            ]
        elif rtype == _ENDEL and in_boundary:
            if cell is None or current_layer is None or pending_points is None:
                raise GdsError("BOUNDARY element missing LAYER or XY")
            cell.polygons.append((current_layer, Polygon(pending_points)))
            in_boundary = False
        elif rtype == _ENDLIB:
            break
    if cell is None:
        raise GdsError("no structure found")
    return cell
