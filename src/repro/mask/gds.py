"""Minimal GDSII stream format reader/writer — hierarchy-aware.

GDSII is the de-facto interchange format for mask layout.  This module
implements the subset the MDP flow needs — a library of structures with
BOUNDARY elements for polygons and SREF/AREF structure references for
hierarchy — so clips, solutions and arrayed full-field layouts can
round-trip with real EDA tooling.

Supported records: HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME,
BOUNDARY, LAYER, DATATYPE, XY, ENDEL, ENDSTR, ENDLIB, SREF, AREF,
SNAME, STRANS, MAG, ANGLE, COLROW.  Everything else is rejected loudly
rather than skipped silently.  Reference transforms are restricted to
the axis-parallel subgroup (rotations by multiples of 90° plus the
STRANS x-mirror, magnification 1) — the group under which shot
instantiation stays exact (:mod:`repro.geometry.transform`).

Reading returns a :class:`Layout` cell graph (:func:`read_layout`);
:meth:`Layout.flatten` resolves every placement into a single flat
:class:`GdsCell`, and :func:`read_gds` keeps the historical flat-cell
API on top of it.  Multi-structure files load fine: the top cell is the
structure no other structure references (first-declared wins when
several are unreferenced).

Layer convention used by this library:

* layer 1 — target mask polygons
* layer 2 — e-beam shots (axis-parallel rectangles)

Coordinates are stored in database units of 1 nm.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import ROTATIONS, Transform

TARGET_LAYER = 1
SHOT_LAYER = 2

# GDSII record types (subset).
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_SREF = 0x0A00
_AREF = 0x0B00
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_SNAME = 0x1206
_COLROW = 0x1302
_STRANS = 0x1A01
_MAG = 0x1B05
_ANGLE = 0x1C05
_ENDLIB = 0x0400

_KNOWN = {
    _HEADER, _BGNLIB, _LIBNAME, _UNITS, _BGNSTR, _STRNAME, _ENDSTR,
    _BOUNDARY, _SREF, _AREF, _LAYER, _DATATYPE, _XY, _ENDEL, _SNAME,
    _COLROW, _STRANS, _MAG, _ANGLE, _ENDLIB,
}

#: STRANS bit 0 (mask 0x8000): reflect about the x axis before rotating.
_STRANS_MIRROR = 0x8000

# A zeroed modification/access timestamp (12 int16 fields).
_NULL_TIME = (0,) * 12

#: Reference nesting deeper than this is treated as a cycle.
_MAX_DEPTH = 64


@dataclass(slots=True)
class GdsRef:
    """One structure reference: SREF (1×1) or AREF (cols×rows lattice).

    The referenced cell's content is mirrored/rotated per the STRANS
    conventions (:class:`~repro.geometry.transform.Transform`), then
    placed at ``origin`` — and, for arrays, repeated every ``col_vec``
    along columns and every ``row_vec`` along rows.
    """

    cell: str
    origin: tuple[float, float] = (0.0, 0.0)
    rotation: int = 0
    mirror_x: bool = False
    cols: int = 1
    rows: int = 1
    col_vec: tuple[float, float] = (0.0, 0.0)
    row_vec: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.rotation not in ROTATIONS:
            raise GdsError(
                f"reference rotation must be one of {ROTATIONS}, "
                f"got {self.rotation}"
            )
        if self.cols < 1 or self.rows < 1:
            raise GdsError("reference array needs cols >= 1 and rows >= 1")

    @classmethod
    def array(
        cls,
        cell: str,
        origin: tuple[float, float],
        cols: int,
        rows: int,
        col_pitch: float,
        row_pitch: float,
        rotation: int = 0,
        mirror_x: bool = False,
    ) -> "GdsRef":
        """Axis-aligned array: columns along +x, rows along +y."""
        return cls(
            cell=cell, origin=origin, rotation=rotation, mirror_x=mirror_x,
            cols=cols, rows=rows,
            col_vec=(col_pitch, 0.0), row_vec=(0.0, row_pitch),
        )

    @property
    def count(self) -> int:
        return self.cols * self.rows

    @property
    def is_array(self) -> bool:
        return self.cols > 1 or self.rows > 1

    def transforms(self) -> Iterator[tuple[str, Transform]]:
        """Per-element placement transforms, row-major, with a label.

        The label distinguishes array elements (``[row,col]``); a plain
        SREF yields one empty label.
        """
        ox, oy = self.origin
        for i in range(self.rows):
            for j in range(self.cols):
                label = f"[{i},{j}]" if self.is_array else ""
                yield label, Transform(
                    rotation=self.rotation,
                    mirror_x=self.mirror_x,
                    dx=ox + j * self.col_vec[0] + i * self.row_vec[0],
                    dy=oy + j * self.col_vec[1] + i * self.row_vec[1],
                )


@dataclass(slots=True)
class GdsCell:
    """One GDSII structure: named polygons per layer plus references."""

    name: str
    polygons: list[tuple[int, Polygon]] = field(default_factory=list)
    refs: list[GdsRef] = field(default_factory=list)

    def on_layer(self, layer: int) -> list[Polygon]:
        return [poly for lay, poly in self.polygons if lay == layer]

    @property
    def targets(self) -> list[Polygon]:
        return self.on_layer(TARGET_LAYER)

    @property
    def shots(self) -> list[Rect]:
        """Shot-layer polygons interpreted as their bounding rectangles."""
        return [poly.bounding_box() for poly in self.on_layer(SHOT_LAYER)]


class GdsError(ValueError):
    """Malformed or unsupported GDSII content."""


@dataclass(slots=True)
class Layout:
    """A GDSII library as a cell graph: structures plus their references.

    ``cells`` preserves declaration order; ``top`` names the root of the
    placement tree (the structure no other structure references).
    """

    cells: dict[str, GdsCell]
    top: str

    def __post_init__(self) -> None:
        if self.top not in self.cells:
            raise GdsError(f"top cell {self.top!r} is not in the layout")

    @property
    def top_cell(self) -> GdsCell:
        return self.cells[self.top]

    def placements(self) -> list[tuple[str, str, Transform]]:
        """Every cell visit of the placement tree, depth-first.

        Returns ``(path, cell_name, transform)`` triples: the cell's own
        polygons are placed under ``transform`` (composed down from the
        top).  The order is deterministic — a cell's own geometry first,
        then its references in declaration order, array elements
        row-major — and it is the order :meth:`flatten` and the
        hierarchy-aware fracture flow both use, so their outputs align
        element for element.
        """
        out: list[tuple[str, str, Transform]] = []
        self._walk(self.top, Transform.identity(), self.top, out, depth=0)
        return out

    def _walk(
        self,
        name: str,
        transform: Transform,
        path: str,
        out: list[tuple[str, str, Transform]],
        depth: int,
    ) -> None:
        if depth > _MAX_DEPTH:
            raise GdsError(
                f"structure references nest deeper than {_MAX_DEPTH} "
                f"at {path!r} — circular reference?"
            )
        cell = self.cells.get(name)
        if cell is None:
            raise GdsError(f"reference to unknown structure {name!r}")
        out.append((path, name, transform))
        for k, ref in enumerate(cell.refs):
            for label, element in ref.transforms():
                self._walk(
                    ref.cell,
                    transform.compose(element),
                    f"{path}/{ref.cell}@{k}{label}",
                    out,
                    depth + 1,
                )

    def flatten(self, name: str | None = None) -> GdsCell:
        """Resolve every placement into one flat cell.

        Each visited cell's polygons are transformed into the top frame;
        an unreferenced single-structure layout flattens to (a copy of)
        that structure unchanged.
        """
        flat = GdsCell(name=name if name is not None else self.top)
        for _path, cell_name, transform in self.placements():
            for layer, polygon in self.cells[cell_name].polygons:
                if transform.is_identity:
                    flat.polygons.append((layer, polygon))
                else:
                    flat.polygons.append(
                        (layer, transform.apply_polygon(polygon))
                    )
        return flat

    def instance_count(self) -> int:
        """Number of cell visits in the fully expanded placement tree."""
        return len(self.placements())


# -- writing ----------------------------------------------------------------


def _record(rtype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        raise GdsError("odd record length")
    return struct.pack(">HH", length, rtype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\x00"
    return data


def _gds_real8(value: float) -> bytes:
    """Excess-64 base-16 floating point, the GDSII 8-byte real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0.0:
        sign = 0x80
        value = -value
    exponent = 64
    mantissa = value
    while mantissa >= 1.0:
        mantissa /= 16.0
        exponent += 1
    while mantissa < 1.0 / 16.0:
        mantissa *= 16.0
        exponent -= 1
    if not 0 <= exponent <= 127:
        raise GdsError(f"real8 exponent out of range for {value}")
    mantissa_bits = int(mantissa * (1 << 56))
    return struct.pack(">B7s", sign | exponent, mantissa_bits.to_bytes(7, "big"))


def _parse_real8(payload: bytes) -> float:
    """Decode one GDSII 8-byte real (inverse of :func:`_gds_real8`)."""
    if len(payload) != 8:
        raise GdsError(f"real8 payload must be 8 bytes, got {len(payload)}")
    first = payload[0]
    mantissa = int.from_bytes(payload[1:], "big") / float(1 << 56)
    value = mantissa * 16.0 ** ((first & 0x7F) - 64)
    return -value if first & 0x80 else value


def _xy_payload(points: list[tuple[int, int]]) -> bytes:
    return b"".join(struct.pack(">ii", x, y) for x, y in points)


def _int_xy(x: float, y: float) -> tuple[int, int]:
    return (round(x), round(y))


def _strans_records(rotation: int, mirror_x: bool) -> list[bytes]:
    """STRANS (+ ANGLE) records for a reference, empty when untransformed."""
    if not mirror_x and rotation == 0:
        return []
    chunks = [
        _record(
            _STRANS,
            struct.pack(">H", _STRANS_MIRROR if mirror_x else 0),
        )
    ]
    if rotation:
        chunks.append(_record(_ANGLE, _gds_real8(float(rotation))))
    return chunks


def _cell_chunks(cell: GdsCell) -> list[bytes]:
    """All records of one structure, BGNSTR through ENDSTR."""
    chunks = [
        _record(_BGNSTR, struct.pack(">12h", *_NULL_TIME)),
        _record(_STRNAME, _ascii(cell.name)),
    ]
    for layer, polygon in cell.polygons:
        points = [_int_xy(p.x, p.y) for p in polygon.vertices]
        points.append(points[0])  # GDSII closes boundaries explicitly
        chunks += [
            _record(_BOUNDARY),
            _record(_LAYER, struct.pack(">h", layer)),
            _record(_DATATYPE, struct.pack(">h", 0)),
            _record(_XY, _xy_payload(points)),
            _record(_ENDEL),
        ]
    for ref in cell.refs:
        if not 1 <= ref.cols <= 32767 or not 1 <= ref.rows <= 32767:
            raise GdsError(
                f"array dimensions {ref.cols}x{ref.rows} out of range"
            )
        chunks.append(_record(_AREF if ref.is_array else _SREF))
        chunks.append(_record(_SNAME, _ascii(ref.cell)))
        chunks += _strans_records(ref.rotation, ref.mirror_x)
        ox, oy = ref.origin
        if ref.is_array:
            chunks.append(
                _record(_COLROW, struct.pack(">hh", ref.cols, ref.rows))
            )
            points = [
                _int_xy(ox, oy),
                _int_xy(
                    ox + ref.cols * ref.col_vec[0],
                    oy + ref.cols * ref.col_vec[1],
                ),
                _int_xy(
                    ox + ref.rows * ref.row_vec[0],
                    oy + ref.rows * ref.row_vec[1],
                ),
            ]
        else:
            points = [_int_xy(ox, oy)]
        chunks.append(_record(_XY, _xy_payload(points)))
        chunks.append(_record(_ENDEL))
    chunks.append(_record(_ENDSTR))
    return chunks


def _library_chunks(library_name: str, db_unit_m: float) -> list[bytes]:
    return [
        _record(_HEADER, struct.pack(">h", 600)),
        _record(_BGNLIB, struct.pack(">12h", *_NULL_TIME)),
        _record(_LIBNAME, _ascii(library_name)),
        # UNITS: db unit in user units (1e-3 um per nm), db unit in metres.
        _record(_UNITS, _gds_real8(1e-3) + _gds_real8(db_unit_m)),
    ]


def write_gds(
    cell: GdsCell,
    path: str | Path,
    library_name: str = "REPRO",
    db_unit_m: float = 1e-9,
) -> None:
    """Write one cell to a GDSII stream file (1 nm database units)."""
    chunks = _library_chunks(library_name, db_unit_m)
    chunks += _cell_chunks(cell)
    chunks.append(_record(_ENDLIB))
    Path(path).write_bytes(b"".join(chunks))


def write_layout(
    layout: Layout,
    path: str | Path,
    library_name: str = "REPRO",
    db_unit_m: float = 1e-9,
) -> None:
    """Write a full cell graph — structures plus SREF/AREF references."""
    chunks = _library_chunks(library_name, db_unit_m)
    for cell in layout.cells.values():
        chunks += _cell_chunks(cell)
    chunks.append(_record(_ENDLIB))
    Path(path).write_bytes(b"".join(chunks))


def write_solution_gds(
    target: Polygon,
    shots: list[Rect],
    path: str | Path,
    cell_name: str = "CLIP",
) -> None:
    """Target on layer 1, shots on layer 2 — the library's convention."""
    cell = GdsCell(name=cell_name)
    cell.polygons.append((TARGET_LAYER, target))
    for shot in shots:
        cell.polygons.append((SHOT_LAYER, Polygon.from_rect(shot)))
    write_gds(cell, path)


# -- reading -----------------------------------------------------------------


def read_layout(path: str | Path) -> Layout:
    """Read a GDSII stream file into a :class:`Layout` cell graph.

    Malformed input of any kind raises :class:`GdsError` — never a bare
    ``struct.error`` or an index error.
    """
    data = Path(path).read_bytes()
    try:
        return _parse_layout(data)
    except GdsError:
        raise
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise GdsError(f"malformed GDSII stream: {exc}") from exc


def read_gds(path: str | Path) -> GdsCell:
    """Read a GDSII file flattened to one cell (historical flat API).

    Hierarchical files are resolved through :meth:`Layout.flatten`; a
    single-structure file loads exactly as before.  Use
    :func:`read_layout` to keep the cell/reference structure.
    """
    layout = read_layout(path)
    top = layout.top_cell
    if not top.refs and len(layout.cells) == 1:
        return top
    return layout.flatten()


class _ElementState:
    """Accumulates the records of one element until its ENDEL."""

    __slots__ = (
        "kind", "layer", "points", "sname", "mirror_x", "rotation",
        "mag", "colrow",
    )

    def __init__(self, kind: str):
        self.kind = kind  # "boundary" | "sref" | "aref"
        self.layer: int | None = None
        self.points: list[tuple[float, float]] | None = None
        self.sname: str | None = None
        self.mirror_x = False
        self.rotation = 0
        self.mag = 1.0
        self.colrow: tuple[int, int] | None = None


def _close_boundary(element: _ElementState, cell: GdsCell) -> None:
    if element.layer is None or element.points is None:
        raise GdsError("BOUNDARY element missing LAYER or XY")
    cell.polygons.append(
        (element.layer, Polygon(Point(x, y) for x, y in element.points))
    )


def _close_ref(element: _ElementState, cell: GdsCell) -> None:
    if element.sname is None or element.points is None:
        raise GdsError(f"{element.kind.upper()} element missing SNAME or XY")
    if element.mag != 1.0:
        raise GdsError(
            f"magnification {element.mag} is not supported (must be 1)"
        )
    if element.kind == "sref":
        if len(element.points) != 1:
            raise GdsError("SREF XY must hold exactly one point")
        cell.refs.append(
            GdsRef(
                cell=element.sname,
                origin=element.points[0],
                rotation=element.rotation,
                mirror_x=element.mirror_x,
            )
        )
        return
    if element.colrow is None:
        raise GdsError("AREF element missing COLROW")
    if len(element.points) != 3:
        raise GdsError("AREF XY must hold exactly three points")
    cols, rows = element.colrow
    if cols < 1 or rows < 1:
        raise GdsError(f"AREF COLROW out of range: {cols}x{rows}")
    (ox, oy), (cx, cy), (rx, ry) = element.points
    cell.refs.append(
        GdsRef(
            cell=element.sname,
            origin=(ox, oy),
            rotation=element.rotation,
            mirror_x=element.mirror_x,
            cols=cols,
            rows=rows,
            col_vec=((cx - ox) / cols, (cy - oy) / cols),
            row_vec=((rx - ox) / rows, (ry - oy) / rows),
        )
    )


def _parse_layout(data: bytes) -> Layout:
    offset = 0
    cells: dict[str, GdsCell] = {}
    cell: GdsCell | None = None
    element: _ElementState | None = None

    while offset < len(data):
        if offset + 4 > len(data):
            raise GdsError("truncated record header")
        length, rtype = struct.unpack(">HH", data[offset : offset + 4])
        if length < 4 or offset + length > len(data):
            raise GdsError(f"bad record length {length} at offset {offset}")
        payload = data[offset + 4 : offset + length]
        offset += length

        if rtype not in _KNOWN:
            raise GdsError(f"unsupported GDSII record 0x{rtype:04X}")
        if rtype == _BGNSTR:
            if cell is not None:
                raise GdsError("BGNSTR inside an open structure")
            cell = GdsCell(name="")
        elif rtype == _STRNAME and cell is not None:
            name = payload.rstrip(b"\x00").decode("ascii")
            if name in cells:
                raise GdsError(f"duplicate structure name {name!r}")
            cell.name = name
        elif rtype == _ENDSTR:
            if cell is None:
                raise GdsError("ENDSTR without BGNSTR")
            if not cell.name:
                raise GdsError("structure missing STRNAME")
            cells[cell.name] = cell
            cell = None
        elif rtype == _BOUNDARY:
            element = _ElementState("boundary")
        elif rtype == _SREF:
            element = _ElementState("sref")
        elif rtype == _AREF:
            element = _ElementState("aref")
        elif rtype == _LAYER and element is not None:
            (element.layer,) = struct.unpack(">h", payload)
        elif rtype == _SNAME and element is not None:
            element.sname = payload.rstrip(b"\x00").decode("ascii")
        elif rtype == _STRANS and element is not None:
            (bits,) = struct.unpack(">H", payload)
            if bits & ~_STRANS_MIRROR:
                raise GdsError(
                    f"unsupported STRANS bits 0x{bits:04X} "
                    "(absolute magnification/angle are not supported)"
                )
            element.mirror_x = bool(bits & _STRANS_MIRROR)
        elif rtype == _MAG and element is not None:
            element.mag = _parse_real8(payload)
        elif rtype == _ANGLE and element is not None:
            angle = _parse_real8(payload)
            rotation = int(round(angle)) % 360
            if rotation not in ROTATIONS or rotation != angle % 360.0:
                raise GdsError(
                    f"rotation {angle}° is outside the supported "
                    f"{ROTATIONS} subgroup"
                )
            element.rotation = rotation
        elif rtype == _COLROW and element is not None:
            element.colrow = struct.unpack(">hh", payload)
        elif rtype == _XY and element is not None:
            count = len(payload) // 8
            coords = struct.unpack(f">{2 * count}i", payload)
            element.points = [
                (float(coords[2 * i]), float(coords[2 * i + 1]))
                for i in range(count)
            ]
        elif rtype == _ENDEL:
            if element is None or cell is None:
                raise GdsError("ENDEL outside an element")
            if element.kind == "boundary":
                _close_boundary(element, cell)
            else:
                _close_ref(element, cell)
            element = None
        elif rtype == _ENDLIB:
            break
    if cell is not None:
        raise GdsError("structure not closed before ENDLIB")
    if not cells:
        raise GdsError("no structure found")
    return Layout(cells=cells, top=_pick_top(cells))


def _pick_top(cells: dict[str, GdsCell]) -> str:
    """The top cell: a structure never referenced by another structure.

    Multi-structure files without references are legal — every structure
    is then a candidate and the first declared wins (deterministic, and
    matches how single-structure files have always loaded).
    """
    referenced = {
        ref.cell for cell in cells.values() for ref in cell.refs
    }
    for name in cells:
        if name not in referenced:
            return name
    raise GdsError(
        "no top structure: every structure is referenced (circular "
        "references?)"
    )
