"""Clip and solution serialization (OpenAccess API substitute).

The paper's implementation reads and writes mask shapes through the
OpenAccess API; we use a small JSON format instead.  A *clip file* holds
one or more named target polygons; a *solution file* holds the shot list
a fracturer produced for a clip, plus the spec it was produced under.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec

FORMAT_VERSION = 1


def polygon_to_dict(polygon: Polygon) -> dict[str, Any]:
    return {"vertices": [[p.x, p.y] for p in polygon.vertices]}


def polygon_from_dict(data: dict[str, Any]) -> Polygon:
    return Polygon(Point(float(x), float(y)) for x, y in data["vertices"])


def rect_to_list(rect: Rect) -> list[float]:
    return [rect.xbl, rect.ybl, rect.xtr, rect.ytr]


def rect_from_list(values: list[float]) -> Rect:
    if len(values) != 4:
        raise ValueError(f"rect needs 4 coordinates, got {len(values)}")
    return Rect(*(float(v) for v in values))


def spec_to_dict(spec: FractureSpec) -> dict[str, float]:
    return {
        "sigma": spec.sigma,
        "gamma": spec.gamma,
        "pitch": spec.pitch,
        "rho": spec.rho,
        "lmin": spec.lmin,
    }


def spec_from_dict(data: dict[str, Any]) -> FractureSpec:
    return FractureSpec(
        sigma=float(data["sigma"]),
        gamma=float(data["gamma"]),
        pitch=float(data["pitch"]),
        rho=float(data["rho"]),
        lmin=float(data["lmin"]),
    )


def save_clips(clips: dict[str, Polygon], path: str | Path) -> None:
    """Write named target polygons to a clip file."""
    payload = {
        "format": "repro-clips",
        "version": FORMAT_VERSION,
        "clips": {name: polygon_to_dict(poly) for name, poly in clips.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_clips(path: str | Path) -> dict[str, Polygon]:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-clips":
        raise ValueError(f"{path} is not a repro clip file")
    return {
        name: polygon_from_dict(data) for name, data in payload["clips"].items()
    }


def save_solution(
    shots: list[Rect],
    spec: FractureSpec,
    path: str | Path,
    clip_name: str = "",
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a fracturing solution (shot list + spec + free-form metadata)."""
    payload = {
        "format": "repro-solution",
        "version": FORMAT_VERSION,
        "clip": clip_name,
        "spec": spec_to_dict(spec),
        "shots": [rect_to_list(s) for s in shots],
        "metadata": metadata or {},
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_solution(path: str | Path) -> tuple[list[Rect], FractureSpec, dict[str, Any]]:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-solution":
        raise ValueError(f"{path} is not a repro solution file")
    shots = [rect_from_list(values) for values in payload["shots"]]
    spec = spec_from_dict(payload["spec"])
    return shots, spec, payload.get("metadata", {})
