"""Mask data preparation substrate.

* :class:`~repro.mask.shape.MaskShape` — a target shape plus its pixel
  sampling (the fracturing problem instance of paper §2).
* :class:`~repro.mask.pixels.PixelSets` — the P_on / P_off / P_x
  partition induced by the CD tolerance γ.
* :class:`~repro.mask.constraints.FractureSpec` /
  :func:`~repro.mask.constraints.check_solution` — the model parameters
  and the Eq. 4 feasibility check.
* :mod:`repro.mask.io` — JSON clip/solution serialization (OpenAccess
  substitute).
* :mod:`repro.mask.cost` — mask cost model (write time → cost, §1).
* :mod:`repro.mask.mdp` — multi-shape mask-data-prep pipeline.
"""

from repro.mask.constraints import FailureReport, FractureSpec, check_solution
from repro.mask.cost import MaskCostModel
from repro.mask.pixels import PixelSets, classify_pixels
from repro.mask.shape import MaskShape

__all__ = [
    "FailureReport",
    "FractureSpec",
    "MaskCostModel",
    "MaskShape",
    "PixelSets",
    "check_solution",
    "classify_pixels",
]
