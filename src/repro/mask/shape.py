"""Target mask shapes: polygon + pixel sampling in one problem instance.

A :class:`MaskShape` bundles everything a fracturer needs about one
target: the boundary polygon ``V_M``, the pixel grid, the rasterized
inside-mask, a summed-area table for overlap queries, and (cached) the
P_on/P_off/P_x classification for a given γ.
"""

from __future__ import annotations

from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid, rasterize_polygon
from repro.geometry.sat import SummedAreaTable
from repro.geometry.trace import trace_boundary
from repro.mask.pixels import PixelSets, classify_pixels

import numpy as np


class MaskShape:
    """One fracturing problem instance.

    Construct with :meth:`from_polygon` (toy shapes, traced ILT contours)
    or :meth:`from_mask` (ρ-contour targets from the benchmark
    generators).  The grid always pads the target bounding box by the
    blur reach so P_off constraints outside the shape are represented.
    """

    __slots__ = ("name", "polygon", "grid", "inside", "_sat", "_pixel_cache")

    def __init__(self, polygon: Polygon, grid: PixelGrid, inside: np.ndarray, name: str = ""):
        if inside.shape != grid.shape:
            raise ValueError(f"mask shape {inside.shape} != grid shape {grid.shape}")
        if not inside.any():
            raise ValueError("target shape rasterizes to no pixels")
        self.name = name
        self.polygon = polygon
        self.grid = grid
        self.inside = inside
        self._sat: SummedAreaTable | None = None
        self._pixel_cache: dict[float, PixelSets] = {}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_polygon(
        cls,
        polygon: Polygon,
        pitch: float = 1.0,
        margin: float = 30.0,
        name: str = "",
    ) -> "MaskShape":
        """Rasterize a boundary polygon onto a padded pixel grid."""
        grid = PixelGrid.for_rect(polygon.bounding_box(), pitch, margin=margin)
        inside = rasterize_polygon(polygon, grid)
        return cls(polygon, grid, inside, name=name)

    @classmethod
    def from_mask(
        cls, inside: np.ndarray, grid: PixelGrid, name: str = ""
    ) -> "MaskShape":
        """Wrap an existing boolean mask; the polygon is traced from it."""
        polygon = trace_boundary(inside, grid)
        return cls(polygon, grid, inside, name=name)

    # -- cached derived data ---------------------------------------------------

    @property
    def sat(self) -> SummedAreaTable:
        """Summed-area table of the inside-mask (overlap-fraction queries)."""
        if self._sat is None:
            self._sat = SummedAreaTable(self.inside.astype(np.float64), self.grid)
        return self._sat

    def pixels(self, gamma: float) -> PixelSets:
        """P_on/P_off/P_x classification at CD tolerance γ (cached)."""
        cached = self._pixel_cache.get(gamma)
        if cached is None:
            cached = classify_pixels(self.inside, self.grid, gamma)
            self._pixel_cache[gamma] = cached
        return cached

    # -- measures ------------------------------------------------------------

    @property
    def area(self) -> float:
        """Pixel-counted area in nm² (agrees with polygon area to O(Δp))."""
        return float(self.inside.sum()) * self.grid.pitch**2

    @property
    def vertex_count(self) -> int:
        return len(self.polygon)

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return (
            f"MaskShape({label!r}, {self.vertex_count} vertices, "
            f"{self.area:.0f} nm², grid {self.grid.ny}x{self.grid.nx})"
        )
