"""Conventional (non-model-based) mask fracturing [5–7].

The classic flow: treat fracturing as pure geometric partitioning of the
drawn rectilinear polygon into non-overlapping rectangles, one shot per
rectangle, no proximity model.  On Manhattan layouts this is optimal and
fast; on curvy ILT contours the pixel-level staircase explodes the shot
count — the motivating observation of model-based MDP (paper §1).

Two engines:

* ``engine="optimal"`` — the minimum rectangle partition of the target
  polygon (:func:`repro.geometry.partition.partition_rectilinear`).
  Exact, but only practical for polygons with few hundred vertices.
* ``engine="scanline"`` — sweep-line partition of the pixel mask
  (:func:`repro.geometry.partition.scanline_partition`), the production
  approach; handles any contour.
"""

from __future__ import annotations

from repro.fracture.base import Fracturer
from repro.geometry.partition import partition_rectilinear, scanline_partition
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

_OPTIMAL_VERTEX_LIMIT = 150


class PartitionFracturer(Fracturer):
    """Conventional partition-based fracturing baseline."""

    name = "PARTITION"

    def __init__(self, engine: str = "auto", merge_tolerance: float = 0.0):
        if engine not in ("auto", "optimal", "scanline"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        self.merge_tolerance = merge_tolerance
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        engine = self.engine
        if engine == "auto":
            small = (
                shape.polygon.is_rectilinear()
                and len(shape.polygon) <= _OPTIMAL_VERTEX_LIMIT
            )
            engine = "optimal" if small else "scanline"
        if engine == "optimal":
            rects = partition_rectilinear(shape.polygon)
        else:
            rects = scanline_partition(
                shape.inside, shape.grid, merge_tolerance=self.merge_tolerance
            )
        self._last_extra = {"engine": engine, "rectangles": len(rects)}
        return rects
