"""Matching pursuit fracturing (Jiang & Zakhor [13]).

Signal-reconstruction view of fracturing: the target is the indicator
function of the shape, the dictionary atoms are the intensity patterns of
candidate shots, and shots are added greedily by best normalized
correlation with the exposure residual

    score(s) = <R, I_s> / ||I_s||,    R = target − I_tot,

where the target signal is 1 on P_on, 0 in the γ band and −w on P_off
(``off_penalty``): dosing outside the shape costs score from the first
iteration on, which keeps fixed-dose MP from greedily over-covering with
one huge atom.

Candidate shots have their corners on the *feature lattice*: the x/y
coordinates of the RDP-simplified boundary vertices, densified to a
maximum spacing so curvy boundaries get enough candidates.  Correlations
over the full dictionary are evaluated with one matrix product per axis
thanks to the separability of the shot intensity — the same trick the
intensity model uses everywhere else.

MP is the slowest of the reported heuristics and tends to need more
shots than coloring + refinement on ILT shapes (paper Table 2), because
a fixed-dose atom can only be accepted or skipped — there is no local
repair of a nearly-right shot.
"""

from __future__ import annotations

import numpy as np

from repro.ebeam.intensity import shot_profile_1d
from repro.ebeam.intensity_map import IntensityMap
from repro.fracture.base import Fracturer
from repro.geometry.rdp import rdp_simplify
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

_MAX_SHOTS = 300
_LATTICE_SPACING = 8.0  # nm between candidate shot edges on curvy runs
_MIN_SCORE = 1e-3


class MatchingPursuitFracturer(Fracturer):
    """MP baseline; see module docstring."""

    name = "MP"

    def __init__(
        self,
        max_shots: int = _MAX_SHOTS,
        lattice_spacing: float = _LATTICE_SPACING,
        off_penalty: float = 0.7,
    ):
        self.max_shots = max_shots
        self.lattice_spacing = lattice_spacing
        self.off_penalty = off_penalty
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        grid = shape.grid
        xs_feat, ys_feat = _feature_lattice(shape, spec, self.lattice_spacing)
        x_pairs = _intervals(xs_feat, spec.lmin)
        y_pairs = _intervals(ys_feat, spec.lmin)
        if not x_pairs or not y_pairs:
            return []
        # Profile matrices: column k is the 1-D profile of interval k.
        x_centers = grid.x_centers()
        y_centers = grid.y_centers()
        fx = np.column_stack(
            [shot_profile_1d(x_centers, lo, hi, spec.sigma) for lo, hi in x_pairs]
        )
        fy = np.column_stack(
            [shot_profile_1d(y_centers, lo, hi, spec.sigma) for lo, hi in y_pairs]
        )
        fx_norm2 = (fx**2).sum(axis=0)
        fy_norm2 = (fy**2).sum(axis=0)

        pixels = shape.pixels(spec.gamma)
        target = (
            pixels.on.astype(np.float64)
            - self.off_penalty * pixels.off.astype(np.float64)
        )
        imap = IntensityMap(grid, spec.sigma)
        shots: list[Rect] = []
        scores: list[float] = []
        for _ in range(self.max_shots):
            residual = target - imap.total
            # <R, I_s> for every (y interval, x interval) pair at once.
            corr = fy.T @ residual @ fx
            norms = np.sqrt(np.outer(fy_norm2, fx_norm2))
            score = corr / norms
            k_y, k_x = np.unravel_index(int(np.argmax(score)), score.shape)
            best = float(score[k_y, k_x])
            if best < _MIN_SCORE:
                break
            x_lo, x_hi = x_pairs[k_x]
            y_lo, y_hi = y_pairs[k_y]
            shot = Rect(x_lo, y_lo, x_hi, y_hi)
            shots.append(shot)
            scores.append(best)
            imap.add(shot)
            # Fixed dose: stop once the on-target residual is resolved.
            if not (pixels.on & (imap.total < spec.rho)).any():
                break
        self._last_extra = {
            "dictionary_size": len(x_pairs) * len(y_pairs),
            "final_score": scores[-1] if scores else 0.0,
        }
        return shots


def _feature_lattice(
    shape: MaskShape, spec: FractureSpec, spacing: float
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate shot-edge coordinates: simplified vertices + densification."""
    simplified = rdp_simplify(shape.polygon, spec.gamma)
    xs = sorted({v.x for v in simplified.vertices})
    ys = sorted({v.y for v in simplified.vertices})
    return _densify(xs, spacing), _densify(ys, spacing)


def _densify(coords: list[float], spacing: float) -> np.ndarray:
    out: list[float] = []
    for lo, hi in zip(coords, coords[1:]):
        out.append(lo)
        gap = hi - lo
        if gap > spacing:
            steps = int(gap // spacing)
            out.extend(lo + (k + 1) * gap / (steps + 1) for k in range(steps))
    if coords:
        out.append(coords[-1])
    return np.array(out)


def _intervals(coords: np.ndarray, lmin: float) -> list[tuple[float, float]]:
    pairs = []
    n = len(coords)
    for i in range(n):
        for j in range(i + 1, n):
            if coords[j] - coords[i] >= lmin:
                pairs.append((float(coords[i]), float(coords[j])))
    return pairs
