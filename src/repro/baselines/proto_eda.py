"""PROTO-EDA stand-in: an industrial-style model-based MDP heuristic.

The paper benchmarks against a *prototype version of capability within a
commercial EDA tool for e-beam mask shot decomposition* (PROTO-EDA).
That binary is closed; per DESIGN.md (substitution 1) we model it as a
member of the same algorithm family with deliberately conservative
settings, matching its published behaviour: comparable runtime to the
proposed method, ~20–25 % more shots on ILT shapes, and early
termination that leaves 1–2 % failing pixels on the hard wavy benchmark
shapes instead of grinding to feasibility.

Concretely: the same corner-point/coloring initialization but with a
stricter overlap rule (fragmenting the cliques into more shots), natural
vertex-order coloring, and a refinement loop with a small iteration
budget, no cycle detection and a loose failing-pixel termination
threshold.
"""

from __future__ import annotations

from repro.fracture.base import Fracturer
from repro.fracture.add_remove import add_shot, remove_shot
from repro.fracture.bias import bias_all_shots
from repro.fracture.edge_adjust import greedy_shot_edge_adjustment
from repro.fracture.graph_color import GraphBuildConfig, approximate_fracture
from repro.fracture.merge import merge_shots
from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

_DEFAULT_GRAPH = GraphBuildConfig(
    min_overlap=0.92,
    align_tolerance_factor=0.3,
    coloring_strategy="given",
)


class ProtoEdaFracturer(Fracturer):
    """Conservative model-based MDP heuristic (PROTO-EDA proxy)."""

    name = "PROTO-EDA"

    def __init__(
        self,
        graph: GraphBuildConfig = _DEFAULT_GRAPH,
        nmax: int = 150,
        nh: int = 3,
        failing_fraction_stop: float = 0.0,
    ):
        self.graph = graph
        self.nmax = nmax
        self.nh = nh
        self.failing_fraction_stop = failing_fraction_stop
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        initial, diagnostics = approximate_fracture(shape, spec, self.graph)
        state = RefinementState(shape, spec, initial)
        pixels = shape.pixels(spec.gamma)
        # Loose termination: stop once failing pixels drop below a
        # fraction of the shape's own pixel count (the "different
        # termination criteria" the paper notes for PROTO-EDA).
        stop_at = max(0, int(self.failing_fraction_stop * pixels.count_on) - 1)
        best_shots = state.snapshot()
        best_failing = None
        costs: list[float] = []
        iterations = 0
        for iterations in range(1, self.nmax + 1):
            report = state.report()
            if best_failing is None or report.total_failing < best_failing:
                best_failing = report.total_failing
                best_shots = state.snapshot()
            if report.total_failing <= stop_at:
                break
            costs.append(report.cost)
            stagnant = len(costs) > self.nh and (
                costs[-self.nh - 1] - costs[-1] < 1e-6
            )
            if stagnant:
                if report.count_on > report.count_off:
                    add_shot(state, report)
                else:
                    remove_shot(state, report)
                merge_shots(state)
            else:
                if greedy_shot_edge_adjustment(state, report) == 0:
                    bias_all_shots(state, report)
        self._last_extra = {
            **diagnostics,
            "iterations": iterations,
            "stop_threshold": stop_at,
        }
        return best_shots
