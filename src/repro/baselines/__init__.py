"""Baseline fracturing heuristics the paper compares against.

* :class:`~repro.baselines.gsc.GreedySetCoverFracturer` — the GSC
  heuristic of Jiang & Zakhor [14]: model-driven greedy covering of the
  failing P_on pixels with maximal allowed rectangles.
* :class:`~repro.baselines.matching_pursuit.MatchingPursuitFracturer` —
  MP [13]: iteratively adds the dictionary shot best matched to the
  exposure residual.
* :class:`~repro.baselines.partition_fracture.PartitionFracturer` — the
  conventional (non-model-based) geometric partition flow [5–7].
* :class:`~repro.baselines.proto_eda.ProtoEdaFracturer` — our stand-in
  for the commercial PROTO-EDA prototype (see DESIGN.md, substitutions).
"""

from repro.baselines.gsc import GreedySetCoverFracturer
from repro.baselines.matching_pursuit import MatchingPursuitFracturer
from repro.baselines.partition_fracture import PartitionFracturer
from repro.baselines.proto_eda import ProtoEdaFracturer

__all__ = [
    "GreedySetCoverFracturer",
    "MatchingPursuitFracturer",
    "PartitionFracturer",
    "ProtoEdaFracturer",
]
