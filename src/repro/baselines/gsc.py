"""Greedy set cover fracturing (Jiang & Zakhor [14]).

Model-based greedy covering: while P_on pixels fail, propose candidate
shots around the failing clusters — the maximal rectangle inside the
drawn shape through the cluster seed, and a minimum-size patch shot on
the cluster — score each by how many failing pixels it would actually
fix under the proximity model, and add the best.  Stops when no candidate
reduces the failing count (or at the shot cap).

This mirrors the published GSC behaviour: greedy, add-only, no shot-edge
optimization.  Curvy ILT boundaries force it to pile up small patch
shots in every scalloped corner, which is why its shot counts trail the
coloring + refinement method by a wide margin (paper Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.fracture.base import Fracturer
from repro.fracture.state import RefinementState
from repro.geometry.labeling import bounding_boxes, label_components
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

_MAX_SHOTS = 400
_MAX_CLUSTERS_PER_ROUND = 4


class GreedySetCoverFracturer(Fracturer):
    """GSC baseline; see module docstring."""

    name = "GSC"

    def __init__(self, max_shots: int = _MAX_SHOTS):
        self.max_shots = max_shots
        self._last_extra: dict = {}

    def fracture_shots(self, shape: MaskShape, spec: FractureSpec) -> list[Rect]:
        # Candidate rectangles are confined to the drawn shape — the
        # geometric set-cover formulation of [14]; overlap between shots
        # is what fixes corners, not edge moves.
        allowed = shape.inside
        state = RefinementState(shape, spec, [])
        rounds = 0
        while len(state.shots) < self.max_shots:
            report = state.report()
            if report.count_on == 0:
                break
            candidates = _candidate_shots(allowed, shape, spec, report.fail_on)
            best_shot = None
            best_gain = 0
            for shot in candidates:
                gain = _net_gain(state, shot)
                if gain > best_gain:
                    best_gain = gain
                    best_shot = shot
            if best_shot is None:
                break
            state.add_shot(best_shot)
            rounds += 1
        self._last_extra = {"cover_rounds": rounds}
        return state.shots


def _candidate_shots(
    allowed: np.ndarray,
    shape: MaskShape,
    spec: FractureSpec,
    fail_on: np.ndarray,
) -> list[Rect]:
    """Candidate shots for this round, derived from the failing clusters."""
    labels, count = label_components(fail_on)
    boxes = bounding_boxes(labels, count, shape.grid)
    candidates: list[Rect] = []
    for box, _pixels in boxes[:_MAX_CLUSTERS_PER_ROUND]:
        seed = shape.grid.index_of(box.center)
        seed = _snap_to_cluster(fail_on, labels, seed)
        if seed is not None:
            maximal = _grow_max_rect(allowed, shape, seed, spec.lmin)
            if maximal is not None:
                candidates.append(maximal)
        # Small clusters (corner crescents the maximal rectangles cannot
        # serve) also get a patch shot: the cluster bounding box grown to
        # the minimum shot size.  Net-gain scoring rejects it when the
        # patch would overexpose more P_off than it fixes.
        if box.width <= 2.0 * spec.lmin and box.height <= 2.0 * spec.lmin:
            cx, cy = box.center.x, box.center.y
            half_w = max(box.width, spec.lmin) / 2.0
            half_h = max(box.height, spec.lmin) / 2.0
            candidates.append(Rect(cx - half_w, cy - half_h, cx + half_w, cy + half_h))
    return candidates


def _snap_to_cluster(
    fail_on: np.ndarray, labels: np.ndarray, seed: tuple[int, int]
) -> tuple[int, int] | None:
    """Move a box-centre seed onto an actual failing pixel of its cluster."""
    iy, ix = seed
    if fail_on[iy, ix]:
        return seed
    ys, xs = np.nonzero(fail_on)
    if len(ys) == 0:
        return None
    d2 = (ys - iy) ** 2 + (xs - ix) ** 2
    k = int(np.argmin(d2))
    return int(ys[k]), int(xs[k])


def _net_gain(state: RefinementState, shot: Rect) -> int:
    """Failing P_on pixels fixed minus new failing P_off pixels created.

    Adding a shot only changes intensity inside its influence window, so
    both terms are window-local.
    """
    window, patch = state.imap.shot_patch(shot)
    rho = state.spec.rho
    before = state.imap.total[window]
    after = before + patch
    on = state.pixels.on[window]
    off = state.pixels.off[window]
    fixed_on = int((on & (before < rho) & (after >= rho)).sum())
    new_off = int((off & (before < rho) & (after >= rho)).sum())
    return fixed_on - new_off


def _grow_max_rect(
    allowed: np.ndarray,
    shape: MaskShape,
    seed: tuple[int, int],
    lmin: float,
) -> Rect | None:
    """Greedy maximal rectangle in ``allowed`` containing the seed pixel.

    Expands one pixel at a time in round-robin order while the swept row/
    column stays fully allowed, then converts to mask-plane coordinates
    and enforces the minimum shot size.
    """
    ny, nx = allowed.shape
    iy, ix = seed
    if not allowed[iy, ix]:
        return None
    y_lo = y_hi = iy
    x_lo = x_hi = ix
    active = {"up", "down", "left", "right"}
    while active:
        if "up" in active:
            if y_hi + 1 < ny and allowed[y_hi + 1, x_lo : x_hi + 1].all():
                y_hi += 1
            else:
                active.discard("up")
        if "down" in active:
            if y_lo - 1 >= 0 and allowed[y_lo - 1, x_lo : x_hi + 1].all():
                y_lo -= 1
            else:
                active.discard("down")
        if "left" in active:
            if x_lo - 1 >= 0 and allowed[y_lo : y_hi + 1, x_lo - 1].all():
                x_lo -= 1
            else:
                active.discard("left")
        if "right" in active:
            if x_hi + 1 < nx and allowed[y_lo : y_hi + 1, x_hi + 1].all():
                x_hi += 1
            else:
                active.discard("right")
    grid = shape.grid
    rect = Rect(
        grid.x0 + x_lo * grid.pitch,
        grid.y0 + y_lo * grid.pitch,
        grid.x0 + (x_hi + 1) * grid.pitch,
        grid.y0 + (y_hi + 1) * grid.pitch,
    )
    if rect.width < lmin:
        cx = rect.center.x
        rect = Rect(cx - lmin / 2.0, rect.ybl, cx + lmin / 2.0, rect.ytr)
    if rect.height < lmin:
        cy = rect.center.y
        rect = Rect(rect.xbl, cy - lmin / 2.0, rect.xtr, cy + lmin / 2.0)
    return rect
