"""Minimal SVG rendering for shapes, shots and paper figures.

No plotting dependency is available offline, so figures are emitted as
hand-built SVG: :class:`~repro.viz.svg.SvgCanvas` is a tiny element
builder and :mod:`repro.viz.render` knows how to draw mask shapes, shot
lists and intensity contours with it.
"""

from repro.viz.render import render_fracture, render_polygon_overlay
from repro.viz.svg import SvgCanvas

__all__ = ["SvgCanvas", "render_fracture", "render_polygon_overlay"]
