"""Ready-made renderings: target + shots, polygon overlays, contours."""

from __future__ import annotations

import numpy as np

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.shape import MaskShape
from repro.viz.svg import SvgCanvas

# Qualitative palette used to distinguish shots/cliques.
PALETTE = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#e07b39",
)


def canvas_for_shape(shape: MaskShape, scale: float = 2.0) -> SvgCanvas:
    bbox = shape.polygon.bounding_box()
    return SvgCanvas(bbox.xbl, bbox.ybl, bbox.xtr, bbox.ytr, scale=scale, padding=25.0)


def draw_target(canvas: SvgCanvas, shape: MaskShape, fill: str = "#dddddd") -> None:
    canvas.polygon(
        [(p.x, p.y) for p in shape.polygon.vertices],
        fill=fill,
        stroke="#555555",
        stroke_width=1.0,
        opacity=0.9,
    )


def draw_shots(
    canvas: SvgCanvas, shots: list[Rect], colorize: bool = True
) -> None:
    for index, shot in enumerate(shots):
        color = PALETTE[index % len(PALETTE)] if colorize else "#4477aa"
        canvas.rect(
            shot.xbl, shot.ybl, shot.xtr, shot.ytr,
            fill=color, stroke=color, stroke_width=1.2, opacity=0.25,
        )


def render_fracture(
    shape: MaskShape, shots: list[Rect], title: str = "", scale: float = 2.0
) -> str:
    """Target shape with the shot solution overlaid (shot count labeled)."""
    canvas = canvas_for_shape(shape, scale)
    draw_target(canvas, shape)
    draw_shots(canvas, shots)
    bbox = shape.polygon.bounding_box()
    label = title or f"{shape.name}: {len(shots)} shots"
    canvas.text(bbox.xbl, bbox.ytr + 12.0, label, size_px=14.0)
    return canvas.to_string()


def render_polygon_overlay(
    shape: MaskShape,
    overlays: list[tuple[Polygon, str]],
    points: list[tuple[float, float, str]] | None = None,
    title: str = "",
    scale: float = 2.0,
) -> str:
    """Target with extra polygons (e.g. RDP approximations) and markers."""
    canvas = canvas_for_shape(shape, scale)
    draw_target(canvas, shape)
    for polygon, color in overlays:
        pts = [(p.x, p.y) for p in polygon.vertices]
        pts.append(pts[0])
        canvas.polyline(pts, stroke=color, stroke_width=1.5)
    for x, y, color in points or []:
        canvas.circle(x, y, radius_px=3.0, fill=color)
    bbox = shape.polygon.bounding_box()
    if title:
        canvas.text(bbox.xbl, bbox.ytr + 12.0, title, size_px=14.0)
    return canvas.to_string()


def intensity_contour(
    total: np.ndarray, grid, level: float
) -> list[list[tuple[float, float]]]:
    """ρ-contour segments of an intensity field (marching-squares light).

    Returns short line-segment chains suitable for polyline drawing —
    enough to visualize printed contours in Figure 2 without a plotting
    library.
    """
    segments: list[list[tuple[float, float]]] = []
    above = total >= level
    ny, nx = above.shape
    xs = grid.x_centers()
    ys = grid.y_centers()
    for iy in range(ny - 1):
        for ix in range(nx - 1):
            square = (
                above[iy, ix], above[iy, ix + 1],
                above[iy + 1, ix + 1], above[iy + 1, ix],
            )
            if all(square) or not any(square):
                continue
            crossings = []
            corners = [
                (xs[ix], ys[iy], total[iy, ix]),
                (xs[ix + 1], ys[iy], total[iy, ix + 1]),
                (xs[ix + 1], ys[iy + 1], total[iy + 1, ix + 1]),
                (xs[ix], ys[iy + 1], total[iy + 1, ix]),
            ]
            for (x1, y1, v1), (x2, y2, v2) in zip(corners, corners[1:] + corners[:1]):
                if (v1 >= level) != (v2 >= level):
                    t = (level - v1) / (v2 - v1)
                    crossings.append((x1 + t * (x2 - x1), y1 + t * (y2 - y1)))
            if len(crossings) >= 2:
                segments.append(crossings[:2])
    return segments
