"""A tiny SVG document builder (enough for the paper's figures)."""

from __future__ import annotations

from xml.sax.saxutils import escape


class SvgCanvas:
    """Accumulates SVG elements in mask-plane coordinates.

    The mask plane has y growing upward; SVG has y growing downward, so
    the canvas flips y at emit time.  All coordinates are nanometres and
    ``scale`` maps them to SVG pixels.
    """

    def __init__(
        self,
        x_min: float,
        y_min: float,
        x_max: float,
        y_max: float,
        scale: float = 2.0,
        padding: float = 10.0,
    ):
        if x_max <= x_min or y_max <= y_min:
            raise ValueError("canvas extent must be non-degenerate")
        self.x_min = x_min - padding
        self.y_min = y_min - padding
        self.x_max = x_max + padding
        self.y_max = y_max + padding
        self.scale = scale
        self._elements: list[str] = []

    # -- coordinate mapping -------------------------------------------------

    def _tx(self, x: float) -> float:
        return (x - self.x_min) * self.scale

    def _ty(self, y: float) -> float:
        return (self.y_max - y) * self.scale

    # -- elements ----------------------------------------------------------

    def rect(
        self,
        xbl: float,
        ybl: float,
        xtr: float,
        ytr: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        dash: str | None = None,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<rect x="{self._tx(xbl):.2f}" y="{self._ty(ytr):.2f}" '
            f'width="{(xtr - xbl) * self.scale:.2f}" '
            f'height="{(ytr - ybl) * self.scale:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}" '
            f'fill-opacity="{opacity}"{dash_attr}/>'
        )

    def polygon(
        self,
        points: list[tuple[float, float]],
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        coords = " ".join(f"{self._tx(x):.2f},{self._ty(y):.2f}" for x, y in points)
        self._elements.append(
            f'<polygon points="{coords}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" fill-opacity="{opacity}"/>'
        )

    def polyline(
        self,
        points: list[tuple[float, float]],
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        coords = " ".join(f"{self._tx(x):.2f},{self._ty(y):.2f}" for x, y in points)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{stroke_width}"{dash_attr}/>'
        )

    def circle(
        self,
        x: float,
        y: float,
        radius_px: float = 3.0,
        fill: str = "black",
        stroke: str = "none",
    ) -> None:
        self._elements.append(
            f'<circle cx="{self._tx(x):.2f}" cy="{self._ty(y):.2f}" '
            f'r="{radius_px:.2f}" fill="{fill}" stroke="{stroke}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size_px: float = 12.0,
        fill: str = "black",
        anchor: str = "start",
    ) -> None:
        self._elements.append(
            f'<text x="{self._tx(x):.2f}" y="{self._ty(y):.2f}" '
            f'font-size="{size_px}" fill="{fill}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{self._tx(x1):.2f}" y1="{self._ty(y1):.2f}" '
            f'x2="{self._tx(x2):.2f}" y2="{self._ty(y2):.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"{dash_attr}/>'
        )

    # -- output --------------------------------------------------------------

    def to_string(self) -> str:
        width = (self.x_max - self.x_min) * self.scale
        height = (self.y_max - self.y_min) * self.scale
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width:.0f}" height="{height:.0f}" '
            f'viewBox="0 0 {width:.0f} {height:.0f}">\n  '
            f'<rect width="100%" height="100%" fill="white"/>\n  '
            f"{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_string())
