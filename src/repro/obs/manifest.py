"""Run manifest: everything needed to reproduce / attribute one run.

Captures the model parameters (γ, σ, Δp, ρ, L_min and the derived L_th),
the seed when the workload is randomized, the invoking command line, the
git commit of the source tree (best-effort — absent when running from an
installed wheel), and host facts that contextualize the runtime numbers
the paper's tables report.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

__all__ = ["git_sha", "run_manifest"]


def git_sha() -> str | None:
    """Commit SHA of the source checkout, or ``None`` outside a repo."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def run_manifest(
    spec: Any = None,
    seed: int | None = None,
    argv: list[str] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the manifest dict stored at the top of a telemetry payload.

    ``spec`` is a :class:`repro.mask.constraints.FractureSpec` (accepted
    duck-typed to keep this package dependency-free).
    """
    manifest: dict[str, Any] = {
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "host": {
            "hostname": platform.node(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    }
    if spec is not None:
        manifest["params"] = {
            "sigma": getattr(spec, "sigma", None),
            "gamma": getattr(spec, "gamma", None),
            "pitch": getattr(spec, "pitch", None),
            "rho": getattr(spec, "rho", None),
            "lmin": getattr(spec, "lmin", None),
            "lth": getattr(spec, "lth", None),
        }
    if seed is not None:
        manifest["seed"] = seed
    manifest["argv"] = list(argv) if argv is not None else list(sys.argv[1:])
    if extra:
        manifest.update(extra)
    return manifest
