"""Regression diff of two telemetry payloads or benchmark JSON files.

``trace diff base.json head.json`` turns two runs into one verdict:

1. each input is flattened into a set of named numeric metrics —
   * a ``repro.obs/v1`` telemetry payload contributes per-phase wall/CPU
     time (via :func:`repro.obs.summarize.phase_breakdown`), every
     counter and gauge, and the total shot count of its ``tile_outcome``
     events;
   * a telemetry *stream* (``repro.obs.stream/v1`` JSONL) is folded into
     a payload first (:func:`repro.obs.stream.stream_to_payload`);
   * any other JSON document (the ``BENCH_*.json`` artifacts) is
     flattened generically: numeric leaves become dotted paths, list
     items are labelled by their identifying key (``layout`` / ``clip``
     / ``name`` / ``workers`` / ``samples``) so reordering does not
     misalign runs;
2. metrics present in both are compared; a metric **regresses** when

   * *time* (``…wall_s``): head exceeds base by more than
     ``time_rel`` relatively **and** ``time_abs_floor_s`` absolutely
     (CPU time is reported but never gates — shared CI runners make it
     too noisy);
   * *quality count* (name containing ``shots`` / ``failing`` /
     ``fallback`` / ``undersize`` / ``stall``): head exceeds base by
     more than ``count_rel`` relatively and by at least 1;
   * everything else is informational.

The CLI exits nonzero when any metric regresses, which is what the
non-gating CI bench jobs surface as a per-PR report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.obs.summarize import phase_breakdown

__all__ = [
    "DiffThresholds",
    "MetricDelta",
    "DiffResult",
    "diff_payloads",
    "format_diff",
    "payload_metrics",
]

KIND_TIME = "time"
KIND_COUNT = "count"
KIND_INFO = "info"

_COUNT_MARKERS = ("shots", "failing", "fallback", "undersize", "stall")
_LIST_LABEL_KEYS = ("layout", "clip", "name", "tile", "benchmark")


@dataclass(frozen=True)
class DiffThresholds:
    """Regression thresholds (see module docstring for the rules)."""

    time_rel: float = 0.30
    time_abs_floor_s: float = 0.05
    count_rel: float = 0.01


@dataclass
class MetricDelta:
    name: str
    base: float
    head: float
    kind: str
    regressed: bool

    @property
    def delta(self) -> float:
        return self.head - self.base

    @property
    def rel(self) -> float:
        if self.base:
            return self.delta / abs(self.base)
        return math.inf if self.delta > 0 else (-math.inf if self.delta < 0 else 0.0)


@dataclass
class DiffResult:
    deltas: list[MetricDelta] = field(default_factory=list)
    only_base: list[str] = field(default_factory=list)
    only_head: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)


def classify_metric(name: str) -> str:
    """Kind of a metric from its dotted name (time / count / info)."""
    leaf = name.rsplit(".", 1)[-1].lower()
    if leaf.endswith("wall_s") or leaf == "runtime_s" or leaf == "wall":
        return KIND_TIME
    lowered = name.lower()
    if "eta" in lowered or "ewma" in lowered or "speedup" in lowered:
        return KIND_INFO
    if any(marker in lowered for marker in _COUNT_MARKERS):
        return KIND_COUNT
    return KIND_INFO


def payload_metrics(payload: Any) -> dict[str, float]:
    """Flatten one diffable document into named numeric metrics."""
    if isinstance(payload, dict) and str(payload.get("schema", "")).startswith(
        "repro.obs"
    ):
        return _telemetry_metrics(payload)
    out: dict[str, float] = {}
    _flatten(payload, "", out)
    return out


def _telemetry_metrics(payload: dict[str, Any]) -> dict[str, float]:
    out: dict[str, float] = {}
    for entry in phase_breakdown(payload):
        prefix = f"phase.{entry['phase']}"
        out[f"{prefix}.wall_s"] = float(entry["wall_s"])
        out[f"{prefix}.cpu_s"] = float(entry["cpu_s"])
        out[f"{prefix}.calls"] = float(entry["count"])
    for name, value in (payload.get("counters") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"counter.{name}"] = float(value)
    for name, value in (payload.get("gauges") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"gauge.{name}"] = float(value)
    shots = 0
    tiles = 0
    for event in payload.get("events") or ():
        if isinstance(event, dict) and event.get("name") == "tile_outcome":
            tiles += 1
            value = event.get("shots")
            if isinstance(value, (int, float)):
                shots += value
    if tiles:
        out["tiles.count"] = float(tiles)
        out["tiles.shots"] = float(shots)
    return out


def _item_label(item: dict[str, Any], index: int) -> str:
    for key in _LIST_LABEL_KEYS:
        value = item.get(key)
        if isinstance(value, (str, int, float)) and not isinstance(value, bool):
            return str(value)
    for key in ("workers", "samples"):
        value = item.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return f"{key[0]}{value:g}"
    return str(index)


def _flatten(obj: Any, prefix: str, out: dict[str, float]) -> None:
    if isinstance(obj, bool) or obj is None:
        return
    if isinstance(obj, (int, float)):
        if math.isfinite(obj):
            out[prefix or "value"] = float(obj)
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            sub = f"{prefix}.{key}" if prefix else str(key)
            _flatten(value, sub, out)
        return
    if isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            if isinstance(item, dict):
                label = _item_label(item, index)
            else:
                label = str(index)
            _flatten(item, f"{prefix}[{label}]" if prefix else f"[{label}]", out)


def _regresses(
    kind: str, base: float, head: float, thresholds: DiffThresholds
) -> bool:
    delta = head - base
    if delta <= 0:
        return False
    if kind == KIND_TIME:
        if delta <= thresholds.time_abs_floor_s:
            return False
        return base <= 0 or delta / base > thresholds.time_rel
    if kind == KIND_COUNT:
        if delta < 1.0 - 1e-9:
            return False
        return base <= 0 or delta / base > thresholds.count_rel
    return False


def diff_payloads(
    base: Any,
    head: Any,
    thresholds: DiffThresholds | None = None,
) -> DiffResult:
    """Compare two diffable documents metric by metric."""
    thresholds = thresholds if thresholds is not None else DiffThresholds()
    base_metrics = payload_metrics(base)
    head_metrics = payload_metrics(head)
    result = DiffResult(
        only_base=sorted(set(base_metrics) - set(head_metrics)),
        only_head=sorted(set(head_metrics) - set(base_metrics)),
    )
    for name in sorted(set(base_metrics) & set(head_metrics)):
        b, h = base_metrics[name], head_metrics[name]
        kind = classify_metric(name)
        result.deltas.append(
            MetricDelta(
                name=name,
                base=b,
                head=h,
                kind=kind,
                regressed=_regresses(kind, b, h, thresholds),
            )
        )
    return result


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _fmt_rel(delta: MetricDelta) -> str:
    if math.isinf(delta.rel):
        return "new" if delta.rel > 0 else "gone"
    return f"{delta.rel:+.1%}"


def format_diff(
    result: DiffResult,
    base_label: str = "base",
    head_label: str = "head",
    max_rows: int = 60,
    show_all: bool = False,
) -> str:
    """Plain-text report: changed metrics, regressions, verdict."""
    lines = [f"trace diff: {base_label} -> {head_label}"]
    changed = [
        d for d in result.deltas
        if show_all or d.regressed or abs(d.rel) > 1e-3
    ]
    changed.sort(key=lambda d: (not d.regressed, -abs(min(d.rel, 1e9))))
    if changed:
        rows = [["metric", "kind", base_label, head_label, "delta", "rel", ""]]
        for d in changed[:max_rows]:
            rows.append([
                d.name,
                d.kind,
                _fmt(d.base),
                _fmt(d.head),
                f"{d.delta:+.4g}",
                _fmt_rel(d),
                "REGRESSED" if d.regressed else "",
            ])
        lines += _render_table(rows)
        if len(changed) > max_rows:
            lines.append(f"  (+{len(changed) - max_rows} more changed metrics)")
    else:
        lines.append("  (no metric changed beyond 0.1%)")
    if result.only_base:
        lines.append(
            f"only in {base_label}: {len(result.only_base)} metrics "
            f"(e.g. {', '.join(result.only_base[:3])})"
        )
    if result.only_head:
        lines.append(
            f"only in {head_label}: {len(result.only_head)} metrics "
            f"(e.g. {', '.join(result.only_head[:3])})"
        )
    regressions = result.regressions
    if regressions:
        lines.append(
            f"verdict: REGRESSED — {len(regressions)} metric(s) past threshold:"
        )
        for d in regressions:
            lines.append(f"  {d.name}: {_fmt(d.base)} -> {_fmt(d.head)} ({_fmt_rel(d)})")
    else:
        lines.append("verdict: OK — no metric past threshold")
    return "\n".join(lines)


def _render_table(rows: list[list[str]]) -> list[str]:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  " + "  ".join(
                cell.ljust(width) if col == 0 else cell.rjust(width)
                for col, (cell, width) in enumerate(zip(row, widths))
            ).rstrip()
        )
        if i == 0:
            lines.append("  " + "  ".join("-" * width for width in widths))
    return lines
