"""Optional sampling profiler: stack samples attached to spans.

``--profile`` on the run commands starts a :class:`SamplingProfiler`
next to the telemetry recorder: a daemon thread that periodically
snapshots the main thread's Python stack (``sys._current_frames``) and
folds it — tagged with the recorder's *currently open span path* — into
an aggregated ``{span_path: {collapsed_stack: count}}`` table.  On stop
the table lands in the recorder manifest under ``profile``, so it rides
the normal export path and ``trace export`` can ship it alongside the
flame graph.

Aggregation (not per-sample events) keeps the cost flat: a multi-hour
run produces a bounded table, not millions of stream records, and the
sampler never touches the fracturing pipeline — purely observational,
like everything else in :mod:`repro.obs`.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

__all__ = ["SamplingProfiler"]

#: Frames from these modules are noise at the top of every sample.
_SKIP_PREFIXES = ("threading", "contextlib")

#: Hard bound on distinct (span, stack) cells kept per run.
_MAX_CELLS = 4096


def _collapse(frame: Any, max_depth: int = 40) -> str:
    """One sample as a semicolon-joined ``module.function`` stack."""
    parts: list[str] = []
    while frame is not None and len(parts) < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        if not str(module).startswith(_SKIP_PREFIXES):
            parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    return ";".join(reversed(parts))


class SamplingProfiler:
    """Periodic main-thread stack sampler feeding a telemetry recorder.

    ``with SamplingProfiler(recorder, interval_s=0.01): ...`` — on exit
    the aggregated samples are written into
    ``recorder.manifest["profile"]``.
    """

    def __init__(self, recorder: Any, *, interval_s: float = 0.01):
        self._recorder = recorder
        self._interval_s = max(float(interval_s), 0.001)
        self._target_id = threading.get_ident()
        self._samples: dict[str, dict[str, int]] = {}
        self._dropped = 0
        self._n_samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _span_path(self) -> str:
        # current_path() is thread-scoped; ask for the *target* thread's
        # path — from this sampler thread the recorder's own stack is
        # empty.  Older recorders without the thread_id parameter fall
        # back to the (empty) local path.
        path = ""
        current_path = getattr(self._recorder, "current_path", None)
        if callable(current_path):
            try:
                path = current_path(self._target_id)
            except TypeError:
                try:
                    path = current_path()
                except Exception:
                    path = ""
            except Exception:
                path = ""
        return path or "(no span)"

    def _loop(self) -> None:
        while not self._stop.wait(self._interval_s):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:
                continue
            stack = _collapse(frame)
            if not stack:
                continue
            span = self._span_path()
            cell = self._samples.setdefault(span, {})
            if stack not in cell and self._total_cells() >= _MAX_CELLS:
                self._dropped += 1
                continue
            cell[stack] = cell.get(stack, 0) + 1
            self._n_samples += 1

    def _total_cells(self) -> int:
        return sum(len(stacks) for stacks in self._samples.values())

    def start(self) -> "SamplingProfiler":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> dict[str, Any]:
        """Stop sampling and publish the table to the recorder manifest."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        table = {
            "interval_s": self._interval_s,
            "samples": self._n_samples,
            "dropped_stacks": self._dropped,
            "by_span": {
                span: dict(
                    sorted(stacks.items(), key=lambda kv: -kv[1])
                )
                for span, stacks in self._samples.items()
            },
        }
        manifest = getattr(self._recorder, "manifest", None)
        if isinstance(manifest, dict):
            manifest["profile"] = table
        return table

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False
