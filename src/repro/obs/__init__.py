"""``repro.obs`` — tracing, metrics and run-manifest observability.

The measurement substrate for the fracturing pipeline:

* hierarchical **spans** (wall + CPU time, nestable, thread- and
  process-safe) — :class:`TelemetryRecorder`, :func:`get_recorder`;
* **counters / gauges / histograms** (``refine.moves_accepted``,
  ``cache.lut.hits``, ``coloring.colors_used``, the namespaced cache
  counters ``cache.<name>.hits/misses/evictions``, and the tiled
  fault-layer counters ``windowed.tile_retries``,
  ``windowed.tile_timeouts``, ``windowed.pool_respawns``,
  ``windowed.tile_fallbacks``, ``windowed.tiles_replayed``, …);
* a per-iteration **convergence recorder** for Algorithm 1;
* a **run manifest** (γ/σ/Δp/ρ/L_min, seed, git SHA, host) with
  JSON / JSONL / CSV exporters and a ``trace summarize`` renderer;
* a **trace context** (:class:`TraceContext`) correlating every span,
  stream line, heartbeat and checkpoint record of one logical run
  across processes and daemon restarts, with chrome-trace / speedscope
  exporters (:mod:`repro.obs.flame`) and Prometheus text exposition
  (:mod:`repro.obs.metrics`).

The default recorder is a no-op (:class:`NullRecorder`), so the
instrumentation scattered through the library costs ~nothing until a
:class:`TelemetryRecorder` is installed — e.g. by the CLI's
``--telemetry`` flag::

    python -m repro fracture --clip ILT-1 --telemetry out.json
    python -m repro trace summarize out.json

Dependency-free by design (standard library only) so every other
package may import it without layering concerns.
"""

from repro.obs.diff import (
    DiffResult,
    DiffThresholds,
    diff_payloads,
    format_diff,
    payload_metrics,
)
from repro.obs.export import (
    load_telemetry,
    payload_to_records,
    records_to_payload,
    write_telemetry,
)
from repro.obs.flame import (
    chrome_from_payload,
    chrome_from_records,
    speedscope_from_payload,
    validate_chrome_trace,
)
from repro.obs.logs import enable_console_logging, get_logger
from repro.obs.manifest import git_sha, run_manifest
from repro.obs.metrics import (
    MetricSample,
    parse_prometheus,
    payload_samples,
    render_prometheus,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.recorder import (
    NullRecorder,
    SpanNode,
    TelemetryRecorder,
    get_recorder,
    recording,
    set_recorder,
    thread_recording,
)
from repro.obs.resources import (
    DiskFullError,
    HeartbeatMonitor,
    HeartbeatWriter,
    disk_free_bytes,
    ensure_disk_space,
    pid_alive,
    read_heartbeats,
    rss_bytes,
    sample_resources,
    set_disk_free_override,
    summarize_heartbeats,
)
from repro.obs.stream import (
    STREAM_SCHEMA,
    StreamFormatter,
    TelemetryStream,
    follow_stream,
    read_stream,
    stream_to_payload,
)
from repro.obs.summarize import (
    format_clip_breakdown,
    format_summary,
    phase_breakdown,
)
from repro.obs.top import gather_job_progress, render_top, tail_records
from repro.obs.trace import TraceContext, mint_trace, valid_trace_id

__all__ = [
    "DiffResult",
    "DiffThresholds",
    "DiskFullError",
    "HeartbeatMonitor",
    "HeartbeatWriter",
    "MetricSample",
    "NullRecorder",
    "STREAM_SCHEMA",
    "SamplingProfiler",
    "SpanNode",
    "StreamFormatter",
    "TelemetryRecorder",
    "TelemetryStream",
    "TraceContext",
    "chrome_from_payload",
    "chrome_from_records",
    "diff_payloads",
    "disk_free_bytes",
    "enable_console_logging",
    "ensure_disk_space",
    "follow_stream",
    "format_clip_breakdown",
    "format_diff",
    "format_summary",
    "gather_job_progress",
    "get_logger",
    "get_recorder",
    "git_sha",
    "load_telemetry",
    "mint_trace",
    "parse_prometheus",
    "payload_metrics",
    "payload_samples",
    "payload_to_records",
    "phase_breakdown",
    "pid_alive",
    "read_heartbeats",
    "read_stream",
    "records_to_payload",
    "recording",
    "render_prometheus",
    "render_top",
    "rss_bytes",
    "run_manifest",
    "sample_resources",
    "set_disk_free_override",
    "speedscope_from_payload",
    "summarize_heartbeats",
    "set_recorder",
    "tail_records",
    "thread_recording",
    "stream_to_payload",
    "valid_trace_id",
    "validate_chrome_trace",
    "write_telemetry",
]
