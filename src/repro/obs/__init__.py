"""``repro.obs`` — tracing, metrics and run-manifest observability.

The measurement substrate for the fracturing pipeline:

* hierarchical **spans** (wall + CPU time, nestable, thread- and
  process-safe) — :class:`TelemetryRecorder`, :func:`get_recorder`;
* **counters / gauges / histograms** (``refine.moves_accepted``,
  ``intensity.lut_hits``, ``coloring.colors_used``, and the tiled
  fault-layer counters ``windowed.tile_retries``,
  ``windowed.tile_timeouts``, ``windowed.pool_respawns``,
  ``windowed.tile_fallbacks``, ``windowed.tiles_replayed``, …);
* a per-iteration **convergence recorder** for Algorithm 1;
* a **run manifest** (γ/σ/Δp/ρ/L_min, seed, git SHA, host) with
  JSON / JSONL / CSV exporters and a ``trace summarize`` renderer.

The default recorder is a no-op (:class:`NullRecorder`), so the
instrumentation scattered through the library costs ~nothing until a
:class:`TelemetryRecorder` is installed — e.g. by the CLI's
``--telemetry`` flag::

    python -m repro fracture --clip ILT-1 --telemetry out.json
    python -m repro trace summarize out.json

Dependency-free by design (standard library only) so every other
package may import it without layering concerns.
"""

from repro.obs.diff import (
    DiffResult,
    DiffThresholds,
    diff_payloads,
    format_diff,
    payload_metrics,
)
from repro.obs.export import (
    load_telemetry,
    payload_to_records,
    records_to_payload,
    write_telemetry,
)
from repro.obs.logs import enable_console_logging, get_logger
from repro.obs.manifest import git_sha, run_manifest
from repro.obs.recorder import (
    NullRecorder,
    SpanNode,
    TelemetryRecorder,
    get_recorder,
    recording,
    set_recorder,
    thread_recording,
)
from repro.obs.resources import (
    DiskFullError,
    HeartbeatMonitor,
    HeartbeatWriter,
    disk_free_bytes,
    ensure_disk_space,
    pid_alive,
    read_heartbeats,
    rss_bytes,
    sample_resources,
    set_disk_free_override,
    summarize_heartbeats,
)
from repro.obs.stream import (
    STREAM_SCHEMA,
    StreamFormatter,
    TelemetryStream,
    follow_stream,
    read_stream,
    stream_to_payload,
)
from repro.obs.summarize import (
    format_clip_breakdown,
    format_summary,
    phase_breakdown,
)

__all__ = [
    "DiffResult",
    "DiffThresholds",
    "DiskFullError",
    "HeartbeatMonitor",
    "HeartbeatWriter",
    "NullRecorder",
    "STREAM_SCHEMA",
    "SpanNode",
    "StreamFormatter",
    "TelemetryRecorder",
    "TelemetryStream",
    "diff_payloads",
    "disk_free_bytes",
    "enable_console_logging",
    "ensure_disk_space",
    "follow_stream",
    "format_clip_breakdown",
    "format_diff",
    "format_summary",
    "get_logger",
    "get_recorder",
    "git_sha",
    "load_telemetry",
    "payload_metrics",
    "payload_to_records",
    "phase_breakdown",
    "pid_alive",
    "read_heartbeats",
    "read_stream",
    "records_to_payload",
    "recording",
    "rss_bytes",
    "run_manifest",
    "sample_resources",
    "set_disk_free_override",
    "summarize_heartbeats",
    "set_recorder",
    "thread_recording",
    "stream_to_payload",
    "write_telemetry",
]
