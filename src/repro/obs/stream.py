"""Streaming telemetry: an append-only JSONL event bus for live runs.

The post-hoc exporters (:mod:`repro.obs.export`) only help once a run
has finished; a multi-hour tiled ``fracture --window-nm --workers`` job
needs to be observable *while it runs*.  :class:`TelemetryStream` is the
write side: an append-only JSONL file to which the recorder emits one
self-describing record per line — span open/close, events, convergence
records, metric snapshots, worker heartbeats — as they happen.

Durability contract (same as the checkpoint journal): every record is
serialized to one full line and written with a single ``write`` call
followed by a flush, so concurrent writer threads interleave at line
granularity and a crash tears at most the trailing line.  Readers
(:func:`read_stream`, :func:`follow_stream`) skip torn or undecodable
lines instead of raising.  The stream is *observational only* — nothing
in the fracturing pipeline reads it back, so enabling it cannot change
results (the determinism contract of the tiled executor is preserved).

Record types (``"type"`` field, schema ``repro.obs.stream/v1``):

==================  =====================================================
``stream_header``   first line: schema, pid, creation time
``manifest``        the run manifest (params, git SHA, host)
``span_open``       a span started (``name``, ``path``, ``attrs``)
``span_close``      a span finished (``name``, ``wall_s``, ``cpu_s``)
``event``           a recorder event (``tile_outcome``, ``progress``,
                    ``worker_heartbeat``, ``worker_stalled``, …)
``convergence``     one per-iteration refinement record
``metrics``         a counters/gauges snapshot
``worker_merged``   a child-process payload was merged into the parent
``resources``       a resource sample (RSS / CPU) of the parent process
``stream_end``      last line: run status
==================  =====================================================

Every record carries ``seq`` (monotonic per stream) and ``t`` (unix
time).  :func:`stream_to_payload` folds a finished stream back into an
approximate ``repro.obs/v1`` payload (spans flattened, last metrics
snapshot adopted) so ``trace diff`` can compare streams directly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "STREAM_SCHEMA",
    "StreamFormatter",
    "TelemetryStream",
    "follow_stream",
    "read_stream",
    "stream_to_payload",
]

STREAM_SCHEMA = "repro.obs.stream/v1"


class TelemetryStream:
    """Append-only JSONL event sink with atomic line writes.

    ``fsync`` per line is off by default: the stream is an observability
    artifact, not a recovery journal, and the torn-tail-tolerant readers
    make the flush-only mode safe for everything but a full OS crash.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        append: bool = False,
        trace_id: str | None = None,
    ):
        """Open a stream at ``path``; ``append`` continues an earlier one.

        Append mode is the per-job stream routing of the service daemon:
        a resumed job attempt keeps writing the *same* stream file, so a
        ``trace tail --follow`` attached across a daemon restart sees the
        whole job history.  Each attempt contributes its own
        ``stream_header`` (readers tolerate repeats), and an interrupted
        attempt's torn tail is skipped by the torn-line-tolerant readers.

        ``trace_id`` (also settable later via :meth:`set_trace`) stamps
        every emitted record, the header included — the correlation
        contract of :mod:`repro.obs.trace`.
        """
        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._trace_id = trace_id
        mode = "a" if append else "w"
        self._fh = open(self.path, mode, encoding="utf-8")
        if append and self._fh.tell() > 0:
            # An interrupted writer may have torn the trailing line;
            # start our records on a fresh line so they stay parseable.
            self._fh.write("\n")
        self.emit({
            "type": "stream_header",
            "schema": STREAM_SCHEMA,
            "pid": os.getpid(),
            "created_unix": time.time(),
            "resumed": bool(append),
        })

    def set_trace(self, trace_id: str | None) -> None:
        """Stamp all *subsequent* records with ``trace_id``.

        Installing the id after the header has gone out is fine for
        correlation — readers join on any stamped record — but callers
        that know the id up front should pass it to the constructor so
        the header carries it too.
        """
        with self._lock:
            self._trace_id = trace_id

    @property
    def trace_id(self) -> str | None:
        return self._trace_id

    def emit(self, record: dict[str, Any]) -> None:
        """Append one record as a single atomic line (no-op when closed)."""
        with self._lock:
            if self._closed:
                return
            record = {**record, "seq": self._seq, "t": round(time.time(), 6)}
            if self._trace_id and "trace_id" not in record:
                record["trace_id"] = self._trace_id
            self._seq += 1
            try:
                line = json.dumps(record, default=str)
            except (TypeError, ValueError):
                line = json.dumps({
                    "type": "stream_error",
                    "seq": record["seq"],
                    "t": record["t"],
                    "error": "unserializable record dropped",
                })
            self._fh.write(line + "\n")
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())

    def close(self, status: str = "ok") -> None:
        """Emit the terminal ``stream_end`` record and close the file."""
        self.emit({"type": "stream_end", "status": status})
        with self._lock:
            if not self._closed:
                self._closed = True
                self._fh.close()

    def detach(self) -> None:
        """Close the file *without* the terminal record.

        The graceful-interrupt path of the service daemon: the job will
        resume and append to this same stream, so the one ``stream_end``
        must come from the attempt that actually finishes — otherwise a
        ``trace tail --follow`` attached across the restart would stop
        at a mid-file terminal record.
        """
        with self._lock:
            if not self._closed:
                self._closed = True
                self._fh.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TelemetryStream":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        self.close(status="ok" if exc_type is None else "error")
        return False


def follow_stream(
    path: str | Path,
    *,
    follow: bool = False,
    poll_s: float = 0.2,
    timeout_s: float | None = None,
    stop: Callable[[], bool] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield records from a stream file, torn-tail and torn-line tolerant.

    Without ``follow`` the generator drains the file and returns (a
    trailing partial line is silently dropped).  With ``follow`` it
    keeps polling for appended records until it sees ``stream_end``,
    ``stop()`` returns true, or ``timeout_s`` elapses — the behaviour
    behind ``trace tail --follow``.

    Torn or corrupt mid-file lines are not silently papered over: the
    writer numbers every record (``seq``), so a discontinuity yields a
    synthetic ``{"type": "stream_gap", ...}`` record naming how many
    records went missing before the next good one.  A ``stream_header``
    legitimately restarts the numbering (each attempt of a resumed job
    writes its own), so headers reset the expectation instead of
    flagging a gap.
    """
    path = Path(path)
    deadline = time.monotonic() + timeout_s if timeout_s is not None else None
    expected_seq: int | None = None

    def expired() -> bool:
        if stop is not None and stop():
            return True
        return deadline is not None and time.monotonic() >= deadline

    while not path.exists():
        if not follow:
            raise FileNotFoundError(f"no telemetry stream at {path}")
        if expired():
            return
        time.sleep(poll_s)
    buffer = ""
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            chunk = fh.readline()
            if chunk:
                buffer += chunk
                if not buffer.endswith("\n"):
                    # Torn mid-record: wait for the writer to finish the
                    # line (or drop it at EOF in non-follow mode).
                    continue
                line, buffer = buffer.strip(), ""
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                seq = record.get("seq")
                if isinstance(seq, int):
                    is_header = record.get("type") == "stream_header"
                    if (
                        expected_seq is not None
                        and seq != expected_seq
                        and not is_header
                    ):
                        gap: dict[str, Any] = {
                            "type": "stream_gap",
                            "expected_seq": expected_seq,
                            "got_seq": seq,
                            "missing": max(seq - expected_seq, 1),
                        }
                        if record.get("trace_id"):
                            gap["trace_id"] = record["trace_id"]
                        yield gap
                    expected_seq = seq + 1
                yield record
                if follow and record.get("type") == "stream_end":
                    return
            else:
                if not follow or expired():
                    return
                time.sleep(poll_s)


def read_stream(path: str | Path) -> list[dict[str, Any]]:
    """All complete records of a (possibly torn) stream file."""
    return list(follow_stream(path, follow=False))


def stream_to_payload(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold a record stream into an approximate ``repro.obs/v1`` payload.

    Spans become a flat list of children under the root (one per
    ``span_close``), counters/gauges come from the *last* metrics
    snapshot, and events / convergence records carry over verbatim — a
    lossy but diffable reconstruction for ``trace diff`` on streams.

    A ``span_open`` with no matching ``span_close`` (the writer died
    mid-span, or a daemon restart started a fresh attempt) still
    produces a span — closed with ``attrs.status = "aborted"`` — so a
    crash is visible in the folded payload rather than silently
    shortening the tree.
    """
    payload: dict[str, Any] = {
        "schema": "repro.obs/v1",
        "manifest": {},
        "spans": {"name": "run", "wall_s": 0.0, "cpu_s": 0.0, "children": []},
        "counters": {},
        "gauges": {},
        "histograms": {},
        "events": [],
        "convergence": [],
    }
    open_spans: list[dict[str, Any]] = []
    gaps = 0

    def abort_open_spans() -> None:
        while open_spans:
            body = open_spans.pop()
            attrs = dict(body.get("attrs") or {})
            attrs["status"] = "aborted"
            if body.get("trace_id"):
                attrs.setdefault("trace_id", body["trace_id"])
            payload["spans"]["children"].append({
                "name": body.get("name", "?"),
                "wall_s": 0.0,
                "cpu_s": 0.0,
                "attrs": attrs,
            })

    for record in records:
        kind = record.get("type")
        body = {
            k: v for k, v in record.items()
            if k not in ("type", "seq", "t")
        }
        if kind == "stream_header":
            # A repeated header is a resumed attempt: whatever the
            # previous attempt left open was torn by the interrupt.
            abort_open_spans()
            if body.get("trace_id"):
                payload["manifest"].setdefault("trace", {})
                payload["manifest"]["trace"].setdefault(
                    "trace_id", body["trace_id"]
                )
        elif kind == "manifest":
            payload["manifest"] = {**body, **payload["manifest"]}
        elif kind == "span_open":
            open_spans.append(body)
        elif kind == "span_close":
            name = body.get("name", "?")
            for index in range(len(open_spans) - 1, -1, -1):
                if open_spans[index].get("name") == name:
                    del open_spans[index]
                    break
            payload["spans"]["children"].append({
                "name": name,
                "wall_s": body.get("wall_s", 0.0),
                "cpu_s": body.get("cpu_s", 0.0),
            })
        elif kind == "metrics":
            payload["counters"] = dict(body.get("counters", {}))
            payload["gauges"] = dict(body.get("gauges", {}))
        elif kind == "event":
            payload["events"].append(body)
        elif kind == "convergence":
            payload["convergence"].append(body)
        elif kind == "stream_gap":
            gaps += 1
    abort_open_spans()
    if gaps:
        payload["counters"]["stream.gaps"] = (
            payload["counters"].get("stream.gaps", 0) + gaps
        )
    return payload


# -- human-readable rendering (``trace tail``) -------------------------------


def _kv(fields: dict[str, Any], skip: tuple[str, ...] = ()) -> str:
    parts = []
    for key, value in fields.items():
        if key in skip or value is None:
            continue
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _mb(n_bytes: Any) -> str:
    try:
        return f"{float(n_bytes) / 1e6:.0f}MB"
    except (TypeError, ValueError):
        return "?"


class StreamFormatter:
    """One-line-per-record rendering of a telemetry stream.

    Stateful: the first record anchors ``t=0`` so every line leads with
    the relative run time.
    """

    def __init__(self) -> None:
        self._t0: float | None = None

    def format(self, record: dict[str, Any]) -> str:
        t = record.get("t")
        if self._t0 is None and isinstance(t, (int, float)):
            self._t0 = float(t)
        rel = (
            f"{float(t) - self._t0:10.3f}s"
            if isinstance(t, (int, float)) and self._t0 is not None
            else " " * 11
        )
        kind = str(record.get("type", "?"))
        return f"{rel}  {self._body(kind, record)}"

    def _body(self, kind: str, record: dict[str, Any]) -> str:
        skip = ("type", "seq", "t", "trace_id")
        if kind == "stream_header":
            trace = record.get("trace_id")
            trace_txt = f" trace={trace}" if trace else ""
            return (
                f"stream {record.get('schema', '?')} "
                f"pid={record.get('pid', '?')}{trace_txt}"
            )
        if kind == "stream_gap":
            return (
                f"GAP   {record.get('missing', '?')} record(s) missing "
                f"(expected seq {record.get('expected_seq', '?')}, "
                f"got {record.get('got_seq', '?')})"
            )
        if kind == "stream_end":
            return f"stream end status={record.get('status', '?')}"
        if kind == "manifest":
            params = record.get("params") or {}
            return f"manifest {_kv(params)}".rstrip()
        if kind == "span_open":
            attrs = record.get("attrs") or {}
            return f"span  > {record.get('path', record.get('name', '?'))} {_kv(attrs)}".rstrip()
        if kind == "span_close":
            return (
                f"span  < {record.get('name', '?')} "
                f"wall={record.get('wall_s', 0.0):.3f}s "
                f"cpu={record.get('cpu_s', 0.0):.3f}s"
            )
        if kind == "convergence":
            return f"conv  {_kv(record, skip + ('span',))}"
        if kind == "metrics":
            counters = record.get("counters") or {}
            gauges = record.get("gauges") or {}
            return f"metrics  {len(counters)} counters, {len(gauges)} gauges"
        if kind == "worker_merged":
            return f"merged worker:{record.get('label', '?')}"
        if kind == "resources":
            return (
                f"rsrc  rss={_mb(record.get('rss_bytes'))} "
                f"cpu={record.get('cpu_s', 0.0):.1f}s"
            )
        if kind == "event":
            return self._event_body(record)
        return f"{kind}  {_kv(record, skip)}".rstrip()

    def _event_body(self, record: dict[str, Any]) -> str:
        name = str(record.get("name", "?"))
        skip = ("type", "seq", "t", "name", "span", "worker", "trace_id")
        if name == "progress":
            done = record.get("tiles_done", "?")
            total = record.get("tiles_total", "?")
            eta = record.get("eta_s")
            eta_txt = f" eta={eta:.0f}s" if isinstance(eta, (int, float)) else ""
            ewma = record.get("tile_wall_ewma_s")
            ewma_txt = (
                f" ewma={ewma:.2f}s" if isinstance(ewma, (int, float)) else ""
            )
            return (
                f"prog  {done}/{total} tiles "
                f"{record.get('shots', '?')} shots{ewma_txt}{eta_txt}"
            )
        if name == "worker_heartbeat":
            tile = record.get("tile")
            task = f" tile={tile} attempt={record.get('attempt')}" if tile else " idle"
            return (
                f"hb    pid={record.get('pid', '?')}"
                f"{task} rss={_mb(record.get('rss_bytes'))} "
                f"cpu={record.get('cpu_s', 0.0):.1f}s"
            )
        if name == "worker_stalled":
            return (
                f"STALL pid={record.get('pid', '?')} "
                f"kind={record.get('kind', '?')} "
                f"tile={record.get('tile', '-')} "
                f"age={record.get('age_s', 0.0):.1f}s"
            )
        if name == "tile_outcome":
            flags = []
            if record.get("fallback"):
                flags.append("fallback")
            if record.get("replayed"):
                flags.append("replayed")
            suffix = f" [{','.join(flags)}]" if flags else ""
            return (
                f"tile  {record.get('tile', '?')} "
                f"ok={record.get('ok', '?')} "
                f"shots={record.get('shots', '?')} "
                f"attempts={record.get('attempts', '?')}{suffix}"
            )
        return f"event {name} {_kv(record, skip)}".rstrip()
