"""Flame-graph exporters: chrome://tracing and speedscope formats.

``trace export --format chrome|speedscope`` turns a recorded run into a
file that standard trace viewers open directly:

* **chrome** — the Trace Event Format (``chrome://tracing`` /
  Perfetto): one ``X`` (complete) event per span, worker subtrees on
  their own thread lanes, recorder events as instant markers.  Every
  event carries ``args.trace_id`` so a flame graph can be joined back
  to the service job / CLI run that produced it.
* **speedscope** — the speedscope.app "evented" profile: open/close
  frame events per lane, for flame-chart reading of long runs.

Two input shapes are accepted, matching what runs actually leave
behind:

* a ``repro.obs/v1`` payload (``--telemetry`` file or a service job's
  ``telemetry.json``): the span tree has durations but no absolute
  timestamps, so children are laid out sequentially from their parent's
  start — structurally exact, chronologically approximate;
* a ``repro.obs.stream/v1`` JSONL stream: ``span_open``/``span_close``
  records carry real wall-clock times, so the chrome timeline is exact,
  and spans left open by a crash/restart render closed with
  ``status=aborted`` instead of disappearing.

:func:`validate_chrome_trace` is the structural gate used by CI: every
event must carry the run's trace id and nest cleanly inside its parent
on the same lane.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "chrome_from_payload",
    "chrome_from_records",
    "speedscope_from_payload",
    "validate_chrome_trace",
]

_US = 1e6  # seconds → trace-event microseconds


def _trace_args(trace: Mapping[str, Any] | None) -> dict[str, Any]:
    args: dict[str, Any] = {}
    if trace:
        for key in ("trace_id", "span_id", "parent_span_id"):
            if trace.get(key):
                args[key] = trace[key]
    return args


def _thread_meta(pid: int, tid: int, name: str) -> dict[str, Any]:
    return {
        "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
        "args": {"name": name},
    }


# -- payload input -----------------------------------------------------------


def _span_events(
    node: Mapping[str, Any],
    start_us: float,
    pid: int,
    tid: int,
    base_args: dict[str, Any],
    events: list[dict[str, Any]],
    lanes: list[dict[str, Any]],
    next_tid: list[int],
) -> float:
    """Emit one span subtree; returns the span's duration in µs.

    ``worker:<label>`` wrappers (cross-process merges) switch to a fresh
    lane so each worker's tiles render as their own flame row.
    """
    name = str(node.get("name", "?"))
    if name.startswith("worker:") or name == "worker":
        tid = next_tid[0]
        next_tid[0] += 1
        lanes.append(_thread_meta(pid, tid, name))
    dur_us = max(float(node.get("wall_s", 0.0)), 0.0) * _US
    args = dict(base_args)
    attrs = node.get("attrs") or {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)):
            args[key] = value
    if node.get("open") and "status" not in args:
        args["status"] = "aborted"
    child_cursor = start_us
    for child in node.get("children", ()):  # sequential layout
        child_cursor += _span_events(
            child, child_cursor, pid, tid, base_args,
            events, lanes, next_tid,
        )
    # A parent whose recorded wall is shorter than its children (merged
    # worker wrappers sum child walls; clock skew does the rest) still
    # has to contain them for the nesting check to hold.
    dur_us = max(dur_us, child_cursor - start_us)
    events.append({
        "name": name, "ph": "X", "ts": round(start_us, 3),
        "dur": round(dur_us, 3), "pid": pid, "tid": tid,
        "cat": "span", "args": args,
    })
    return dur_us


def chrome_from_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """A ``repro.obs/v1`` payload as a Trace Event Format document."""
    manifest = payload.get("manifest") or {}
    trace = manifest.get("trace") or {}
    base_args = _trace_args(trace)
    pid = 1
    events: list[dict[str, Any]] = []
    lanes: list[dict[str, Any]] = [_thread_meta(pid, 1, "main")]
    next_tid = [2]
    root = payload.get("spans") or {"name": "run"}
    total_us = _span_events(
        root, 0.0, pid, 1, base_args, events, lanes, next_tid
    )
    cursor = total_us
    for record in payload.get("events", ()):
        args = dict(base_args)
        for key, value in record.items():
            if key != "name" and isinstance(value, (str, int, float, bool)):
                args[key] = value
        events.append({
            "name": str(record.get("name", "event")), "ph": "i",
            "ts": round(cursor, 3), "pid": pid, "tid": 1,
            "s": "t", "cat": "event", "args": args,
        })
        cursor += 1.0  # synthetic 1µs spacing: order preserved, no overlap
    return {
        "traceEvents": lanes + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.obs.chrome/v1",
            "trace": dict(trace),
            "counters": dict(payload.get("counters") or {}),
            "profile": manifest.get("profile") or {},
        },
    }


# -- stream input ------------------------------------------------------------


def chrome_from_records(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """A telemetry stream as a Trace Event Format document.

    Timestamps are the stream's real wall-clock times (µs since the
    first record).  A stream that spans a daemon restart contributes
    both attempts: spans the first attempt never closed are emitted
    with ``status=aborted`` ending at the moment of the next
    ``stream_header`` (the restart) or at end of stream.
    """
    records = list(records)
    t0: float | None = None
    trace: dict[str, Any] = {}
    for record in records:
        if t0 is None and isinstance(record.get("t"), (int, float)):
            t0 = float(record["t"])
        if not trace and record.get("trace_id"):
            trace = {"trace_id": record["trace_id"]}
        if record.get("type") == "manifest" and record.get("trace"):
            trace = dict(record["trace"])
    if t0 is None:
        t0 = 0.0

    def ts(record: Mapping[str, Any], default: float = 0.0) -> float:
        t = record.get("t")
        return (float(t) - t0) * _US if isinstance(t, (int, float)) else default

    pid = 1
    events: list[dict[str, Any]] = []
    lanes: dict[int, dict[str, Any]] = {
        1: _thread_meta(pid, 1, "main"),
    }
    base_args = _trace_args(trace)
    open_spans: list[dict[str, Any]] = []  # {"name", "ts", "args"}
    last_us = 0.0

    def close_open(end_us: float, status: str) -> None:
        while open_spans:
            span = open_spans.pop()
            args = dict(span["args"])
            args["status"] = status
            events.append({
                "name": span["name"], "ph": "X", "ts": round(span["ts"], 3),
                "dur": round(max(end_us - span["ts"], 0.0), 3),
                "pid": pid, "tid": 1, "cat": "span", "args": args,
            })

    for record in records:
        kind = record.get("type")
        now_us = ts(record, last_us)
        last_us = max(last_us, now_us)
        args = dict(base_args)
        if record.get("trace_id"):
            args["trace_id"] = record["trace_id"]
        if kind == "stream_header":
            # A restart: whatever the previous attempt left open was
            # torn by the crash — close it visibly, don't drop it.
            if open_spans:
                close_open(now_us, "aborted")
        elif kind == "span_open":
            attrs = record.get("attrs") or {}
            for key, value in attrs.items():
                if isinstance(value, (str, int, float, bool)):
                    args[key] = value
            open_spans.append(
                {"name": record.get("name", "?"), "ts": now_us, "args": args}
            )
        elif kind == "span_close":
            name = record.get("name", "?")
            wall_us = float(record.get("wall_s", 0.0)) * _US
            matched = None
            for index in range(len(open_spans) - 1, -1, -1):
                if open_spans[index]["name"] == name:
                    matched = open_spans.pop(index)
                    break
            start = matched["ts"] if matched else now_us - wall_us
            span_args = dict(matched["args"]) if matched else dict(args)
            events.append({
                "name": name, "ph": "X", "ts": round(start, 3),
                "dur": round(max(now_us - start, 0.0), 3),
                "pid": pid, "tid": 1, "cat": "span", "args": span_args,
            })
        elif kind == "event":
            name = str(record.get("name", "event"))
            tid = 1
            worker_pid = record.get("pid")
            if name in ("worker_heartbeat", "worker_stalled") and isinstance(
                worker_pid, int
            ):
                tid = worker_pid
                if tid not in lanes:
                    lanes[tid] = _thread_meta(pid, tid, f"worker pid={tid}")
            for key, value in record.items():
                if key not in ("type", "name") and isinstance(
                    value, (str, int, float, bool)
                ):
                    args[key] = value
            events.append({
                "name": name, "ph": "i", "ts": round(now_us, 3),
                "pid": pid, "tid": tid, "s": "t", "cat": "event",
                "args": args,
            })
    close_open(last_us, "aborted")
    # Viewers tolerate any order, but the nesting validator walks each
    # lane chronologically.
    events.sort(key=lambda e: (e["tid"], e["ts"], -e.get("dur", 0.0)))
    return {
        "traceEvents": list(lanes.values()) + events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": "repro.obs.chrome/v1", "trace": dict(trace)},
    }


# -- speedscope --------------------------------------------------------------


def speedscope_from_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """A ``repro.obs/v1`` payload as a speedscope "evented" profile."""
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame(name: str) -> int:
        if name not in frame_index:
            frame_index[name] = len(frames)
            frames.append({"name": name})
        return frame_index[name]

    events: list[dict[str, Any]] = []

    def emit(
        node: Mapping[str, Any], start_s: float, out: list[dict[str, Any]]
    ) -> float:
        name = str(node.get("name", "?"))
        dur_s = max(float(node.get("wall_s", 0.0)), 0.0)
        index = frame(name)
        child_events: list[dict[str, Any]] = []
        cursor = start_s
        for child in node.get("children", ()):
            cursor += emit(child, cursor, child_events)
        dur_s = max(dur_s, cursor - start_s)
        out.append({"type": "O", "frame": index, "at": start_s})
        out.extend(child_events)
        out.append({"type": "C", "frame": index, "at": start_s + dur_s})
        return dur_s

    root = payload.get("spans") or {"name": "run"}
    total_s = emit(root, 0.0, events)
    trace = (payload.get("manifest") or {}).get("trace") or {}
    name = "repro run"
    if trace.get("trace_id"):
        name = f"repro trace {trace['trace_id']}"
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "seconds",
            "startValue": 0.0,
            "endValue": total_s,
            "events": events,
        }],
        "exporter": "repro.obs.flame",
    }


# -- validation (CI gate) ----------------------------------------------------

_VALID_PH = {"X", "i", "I", "M", "B", "E"}
_EPS_US = 0.51  # timestamps are rounded to 3 decimals; allow that slack


def validate_chrome_trace(
    doc: Mapping[str, Any], *, expect_trace_id: str | None = None
) -> dict[str, Any]:
    """Structural gate for an exported chrome trace.

    Checks, raising :class:`ValueError` on the first violation:

    * ``traceEvents`` is a list of well-formed events (name/ph/pid/tid,
      ``ts`` + nonnegative ``dur`` where applicable);
    * every non-metadata event carries ``args.trace_id``, all equal
      (and equal to ``expect_trace_id`` when given) — the end-to-end
      correlation invariant;
    * complete events nest: on each (pid, tid) lane, every span lies
      within its enclosing span's interval, so parent links resolve by
      containment.

    Returns summary stats (event/span/lane counts, the trace id).
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")
    trace_ids: set[str] = set()
    spans_by_lane: dict[tuple[Any, Any], list[dict[str, Any]]] = {}
    n_spans = n_instant = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index}: not an object")
        ph = event.get("ph")
        if ph not in _VALID_PH:
            raise ValueError(f"event {index}: bad ph {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"event {index}: missing name")
        if "pid" not in event or "tid" not in event:
            raise ValueError(f"event {index}: missing pid/tid")
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"event {index}: missing ts")
        args = event.get("args")
        if not isinstance(args, dict) or not args.get("trace_id"):
            raise ValueError(f"event {index}: missing args.trace_id")
        trace_ids.add(args["trace_id"])
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {index}: X event needs dur >= 0")
            lane = (event["pid"], event["tid"])
            spans_by_lane.setdefault(lane, []).append(event)
            n_spans += 1
        else:
            n_instant += 1
    if len(trace_ids) != 1:
        raise ValueError(f"expected one trace_id, found {sorted(trace_ids)}")
    trace_id = next(iter(trace_ids))
    if expect_trace_id is not None and trace_id != expect_trace_id:
        raise ValueError(
            f"trace_id {trace_id} != expected {expect_trace_id}"
        )
    for lane, spans in spans_by_lane.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[float] = []  # enclosing span end timestamps
        for event in spans:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and stack[-1] <= start + _EPS_US:
                stack.pop()
            if stack and end > stack[-1] + _EPS_US:
                raise ValueError(
                    f"lane {lane}: span {event['name']!r} "
                    f"[{start}, {end}] escapes its parent (ends "
                    f"{stack[-1]})"
                )
            stack.append(end)
    return {
        "trace_id": trace_id,
        "spans": n_spans,
        "instants": n_instant,
        "lanes": len(spans_by_lane),
    }
