"""Recorders: the core of the observability subsystem.

Two implementations share one duck-typed interface:

* :class:`NullRecorder` — the process-wide default.  Every method is a
  no-op and :meth:`NullRecorder.span` returns a shared do-nothing
  context manager, so instrumented library code costs essentially
  nothing when telemetry is off (asserted by ``tests/obs``).
* :class:`TelemetryRecorder` — collects a hierarchical span tree
  (wall *and* CPU time), counters / gauges / histograms, free-form
  events and per-iteration convergence records, and exports everything
  as one JSON-serializable payload.

Thread safety: each thread keeps its own span stack (``threading.local``)
so concurrently open spans never corrupt each other; shared aggregates
are guarded by a single lock.  Process safety: worker processes install
their *own* recorder, export it, and the parent grafts the payload into
its tree via :meth:`TelemetryRecorder.merge_child` — the pattern used by
the parallel MDP pipeline.

The active recorder is resolved through :func:`get_recorder` at call
time, so installing a recorder mid-process (the CLI ``--telemetry``
flag) retroactively covers every instrumented module.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Iterator

__all__ = [
    "NullRecorder",
    "SpanNode",
    "TelemetryRecorder",
    "get_recorder",
    "recording",
    "set_recorder",
    "thread_recording",
]


class _NullSpan:
    """Shared do-nothing context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Default recorder: every operation is a no-op (see module docstring)."""

    __slots__ = ()

    enabled = False
    stream = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def incr(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def convergence(self, **fields: Any) -> None:
        pass

    def merge_child(self, payload: dict, label: str = "") -> None:
        pass


class SpanNode:
    """One node of the span tree: timings, attributes, children.

    ``closed`` tracks whether the owning span context actually exited.
    A payload exported while spans are still open (a worker killed
    mid-tile, a daemon SIGKILLed mid-job) serializes those nodes with
    ``"open": true`` so the merging parent can close them *visibly*
    (``status=aborted``) instead of dropping them or leaving them
    dangling.
    """

    __slots__ = ("name", "attrs", "wall_s", "cpu_s", "children", "closed")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: list[SpanNode] = []
        self.closed = True

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if not self.closed:
            out["open"] = True
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanNode":
        node = cls(payload.get("name", "?"), payload.get("attrs"))
        node.wall_s = float(payload.get("wall_s", 0.0))
        node.cpu_s = float(payload.get("cpu_s", 0.0))
        node.closed = not payload.get("open", False)
        node.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return node

    def walk(self) -> Iterator["SpanNode"]:
        """Depth-first iteration over this node and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    """Context manager that opens/closes one :class:`SpanNode`."""

    __slots__ = ("_rec", "node", "_t0", "_c0")

    def __init__(self, rec: "TelemetryRecorder", name: str, attrs: dict):
        self._rec = rec
        self.node = SpanNode(name, attrs)

    def __enter__(self) -> "_SpanContext":
        self.node.closed = False
        stack = self._rec._stack()
        parent = stack[-1].node if stack else self._rec.root
        with self._rec._lock:
            parent.children.append(self.node)
        stack.append(self)
        self._rec._publish_path(stack)
        if self._rec.stream is not None:
            record = {
                "type": "span_open",
                "name": self.node.name,
                "path": "/".join(ctx.node.name for ctx in stack),
            }
            if self.node.attrs:
                record["attrs"] = dict(self.node.attrs)
            self._rec._stream_emit(record)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.node.wall_s += time.perf_counter() - self._t0
        self.node.cpu_s += time.process_time() - self._c0
        self.node.closed = True
        stack = self._rec._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._rec._publish_path(stack)
        if self._rec.stream is not None:
            self._rec._stream_emit({
                "type": "span_close",
                "name": self.node.name,
                "wall_s": self.node.wall_s,
                "cpu_s": self.node.cpu_s,
            })
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span was opened."""
        self.node.attrs.update(attrs)


class TelemetryRecorder:
    """Collecting recorder (see module docstring for the data model)."""

    enabled = True

    def __init__(
        self,
        manifest: dict[str, Any] | None = None,
        stream: Any | None = None,
        trace: Any | None = None,
    ):
        self.manifest: dict[str, Any] = dict(manifest) if manifest else {}
        self.stream = stream  # live TelemetryStream sink, or None
        # Trace context (repro.obs.trace.TraceContext or its dict form):
        # recorded in the manifest and pushed down to the stream so every
        # emitted line carries the run's trace_id.
        if trace is not None:
            trace_dict = trace.to_dict() if hasattr(trace, "to_dict") else dict(trace)
            self.manifest.setdefault("trace", trace_dict)
        self.trace: dict[str, Any] | None = self.manifest.get("trace")
        if (
            self.trace
            and stream is not None
            and hasattr(stream, "set_trace")
        ):
            stream.set_trace(self.trace.get("trace_id"))
        self.root = SpanNode("run")
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}
        self.events: list[dict[str, Any]] = []
        self.convergence_records: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        # Mirror of each thread's open-span path, readable from *other*
        # threads: the sampling profiler attributes main-thread stack
        # samples from its own sampler thread, where the thread-local
        # stack above is invisible.
        self._path_by_thread: dict[int, str] = {}

    def _stream_emit(self, record: dict[str, Any]) -> None:
        """Forward one record to the live stream (no-op without one)."""
        stream = self.stream
        if stream is not None:
            stream.emit(record)

    # -- span context --------------------------------------------------------

    def _stack(self) -> list[_SpanContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span; use as ``with rec.span("refine"): ...``."""
        thread = threading.current_thread()
        if thread is not threading.main_thread():
            attrs.setdefault("thread", thread.name)
        return _SpanContext(self, name, attrs)

    def _publish_path(self, stack: list[_SpanContext]) -> None:
        path = "/".join(ctx.node.name for ctx in stack)
        thread_id = threading.get_ident()
        if path:
            self._path_by_thread[thread_id] = path
        else:
            self._path_by_thread.pop(thread_id, None)

    def current_path(self, thread_id: int | None = None) -> str:
        """Slash-joined names of the spans open on a thread.

        Without ``thread_id``, the calling thread's own path.  With one,
        the last published path of *that* thread — how the sampling
        profiler labels main-thread samples from its sampler thread.
        """
        if thread_id is not None:
            return self._path_by_thread.get(thread_id, "")
        return "/".join(ctx.node.name for ctx in self._stack())

    # -- metrics -------------------------------------------------------------

    def incr(self, name: str, value: int | float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the named histogram (count/sum/min/max)."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = {
                    "count": 0, "sum": 0.0,
                    "min": math.inf, "max": -math.inf,
                }
                self.histograms[name] = hist
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)

    # -- structured records --------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        record = {"name": name, "span": self.current_path(), **fields}
        with self._lock:
            self.events.append(record)
        if self.stream is not None:
            self._stream_emit({"type": "event", **record})

    def convergence(self, **fields: Any) -> None:
        """Append one per-iteration record of the refinement loop."""
        record = {"span": self.current_path(), **fields}
        with self._lock:
            record["seq"] = len(self.convergence_records)
            self.convergence_records.append(record)
        if self.stream is not None:
            self._stream_emit({"type": "convergence", **record})

    def snapshot_metrics(self) -> dict[str, Any]:
        """A consistent copy of the current counters and gauges."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
            }

    def emit_metrics(self) -> None:
        """Push a counters/gauges snapshot into the live stream, if any."""
        if self.stream is not None:
            self._stream_emit({"type": "metrics", **self.snapshot_metrics()})

    # -- export / merge ------------------------------------------------------

    def export(self) -> dict[str, Any]:
        """One JSON-serializable payload of everything collected."""
        with self._lock:
            return {
                "schema": "repro.obs/v1",
                "manifest": dict(self.manifest),
                "spans": self.root.to_dict(),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: dict(hist) for name, hist in self.histograms.items()
                },
                "events": list(self.events),
                "convergence": list(self.convergence_records),
            }

    def merge_child(self, payload: dict, label: str = "") -> None:
        """Graft an exported child-process payload into this recorder.

        The child's span tree hangs under a ``worker:<label>`` node in
        the *current* span context; counters sum, histograms merge,
        gauges adopt the child's value, and events / convergence records
        are appended tagged with the worker label.

        Spans the child never closed (it crashed, or exported mid-span
        before being killed) are closed here with an explicit
        ``status=aborted`` attribute — a crash must leave a visible
        mark in the merged tree, not a dangling or missing span.  The
        child's trace context, if it carried one, is stamped on the
        wrapper so the graft stays joinable to the job's trace_id.
        """
        child_root = SpanNode.from_dict(payload.get("spans", {"name": "run"}))
        wrapper = SpanNode(f"worker:{label}" if label else "worker")
        wrapper.children = child_root.children
        wrapper.wall_s = sum(c.wall_s for c in wrapper.children)
        wrapper.cpu_s = sum(c.cpu_s for c in wrapper.children)
        child_trace = (payload.get("manifest") or {}).get("trace") or self.trace
        if child_trace and child_trace.get("trace_id"):
            wrapper.attrs["trace_id"] = child_trace["trace_id"]
        aborted = 0
        for node in wrapper.walk():
            if not node.closed:
                node.closed = True
                node.attrs["status"] = "aborted"
                if child_trace and child_trace.get("trace_id"):
                    node.attrs.setdefault(
                        "trace_id", child_trace["trace_id"]
                    )
                aborted += 1
        stack = self._stack()
        parent = stack[-1].node if stack else self.root
        with self._lock:
            parent.children.append(wrapper)
            for name, value in payload.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in payload.get("gauges", {}).items():
                self.gauges[name] = value
            for name, hist in payload.get("histograms", {}).items():
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = dict(hist)
                else:
                    mine["count"] += hist["count"]
                    mine["sum"] += hist["sum"]
                    mine["min"] = min(mine["min"], hist["min"])
                    mine["max"] = max(mine["max"], hist["max"])
            for event in payload.get("events", ()):
                self.events.append({**event, "worker": label})
            for record in payload.get("convergence", ()):
                merged = {**record, "worker": label}
                merged["seq"] = len(self.convergence_records)
                self.convergence_records.append(merged)
        if self.stream is not None:
            record = {
                "type": "worker_merged",
                "label": label,
                "wall_s": wrapper.wall_s,
                "events": len(payload.get("events", ())),
            }
            if aborted:
                record["aborted_spans"] = aborted
            self._stream_emit(record)


_RECORDER: NullRecorder | TelemetryRecorder = NullRecorder()

# Per-thread recorder override.  The service daemon runs several jobs
# concurrently in worker threads of one process; each job installs its
# own recorder for its thread only, so two jobs' spans, counters and
# streams never mix.  Library code keeps calling get_recorder() and is
# oblivious to which scope the recorder came from.
_THREAD_RECORDER = threading.local()


def get_recorder() -> NullRecorder | TelemetryRecorder:
    """The active recorder: this thread's override, else the process one."""
    override = getattr(_THREAD_RECORDER, "recorder", None)
    if override is not None:
        return override
    return _RECORDER


def set_recorder(
    recorder: NullRecorder | TelemetryRecorder | None,
) -> NullRecorder | TelemetryRecorder:
    """Install ``recorder`` process-wide (``None`` restores the null default)."""
    global _RECORDER
    _RECORDER = recorder if recorder is not None else NullRecorder()
    return _RECORDER


class recording:
    """Temporarily install a recorder: ``with recording(rec): ...``."""

    def __init__(self, recorder: NullRecorder | TelemetryRecorder | None):
        self._recorder = recorder

    def __enter__(self) -> NullRecorder | TelemetryRecorder:
        self._previous = get_recorder()
        return set_recorder(self._recorder)

    def __exit__(self, *exc: object) -> bool:
        set_recorder(self._previous)
        return False


class thread_recording:
    """Install a recorder for the *current thread* only.

    ``with thread_recording(rec): ...`` — concurrent job threads of the
    service daemon each get an isolated recorder while the process-wide
    default stays untouched for everyone else.  Nestable; restores the
    previous thread override (or none) on exit.
    """

    def __init__(self, recorder: NullRecorder | TelemetryRecorder | None):
        self._recorder = recorder if recorder is not None else NullRecorder()

    def __enter__(self) -> NullRecorder | TelemetryRecorder:
        self._previous = getattr(_THREAD_RECORDER, "recorder", None)
        _THREAD_RECORDER.recorder = self._recorder
        return self._recorder

    def __exit__(self, *exc: object) -> bool:
        _THREAD_RECORDER.recorder = self._previous
        return False
