"""``repro top``: a live terminal dashboard over daemon + job telemetry.

One refreshing view folds together the three live surfaces a running
daemon already exposes:

* the ``stats`` op — queue depth/order, worker slots, jobs by state,
  warm-cache hit rates, guard counters, heartbeat summary;
* each active job's JSONL stream — last ``progress`` event (tiles
  done/total, shots, ETA), stalls, current phase (innermost open span);
* the job list — state, priority, queue wait / run wall.

The module is renderer-first: :func:`render_top` is a pure function
from snapshot dicts to a string, so tests (and ``repro top --once``)
exercise the exact frame a terminal would show, without a daemon or a
TTY.  The CLI loop just alternates gather → render → clear-screen.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = ["gather_job_progress", "render_top", "tail_records"]

#: States worth a live row, in display order.
_ACTIVE_STATES = ("running", "queued", "cancelling")


def tail_records(
    path: str | Path, *, max_bytes: int = 65536
) -> list[dict[str, Any]]:
    """Parse the last complete records of a (possibly live) stream file.

    Reads only the trailing ``max_bytes`` — a dashboard refreshing
    every second must not re-read multi-hour streams end to end.  The
    first (possibly torn) line of the window and any torn tail are
    dropped, same tolerance as :func:`repro.obs.stream.follow_stream`.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            if size > max_bytes:
                fh.seek(size - max_bytes)
            window = fh.read().decode("utf-8", errors="replace")
    except OSError:
        return []
    lines = window.splitlines()
    if size > max_bytes and lines:
        lines = lines[1:]  # first line of the window is likely torn
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def gather_job_progress(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold a stream tail into one progress snapshot for the dashboard."""
    progress: dict[str, Any] = {}
    open_spans: list[str] = []
    stalls = 0
    for record in records:
        kind = record.get("type")
        if kind == "span_open":
            open_spans.append(str(record.get("name", "?")))
        elif kind == "span_close":
            name = record.get("name")
            if name in open_spans:
                open_spans.reverse()
                open_spans.remove(name)
                open_spans.reverse()
        elif kind == "event":
            name = record.get("name")
            if name == "progress":
                progress = {
                    "tiles_done": record.get("tiles_done"),
                    "tiles_total": record.get("tiles_total"),
                    "shots": record.get("shots"),
                    "eta_s": record.get("eta_s"),
                }
            elif name == "worker_stalled":
                stalls += 1
        elif kind == "stream_gap":
            progress["gap"] = True
    progress["phase"] = open_spans[-1] if open_spans else ""
    progress["stalls"] = stalls
    return progress


def _hit_rate(stats: Mapping[str, Any]) -> str:
    hits = float(stats.get("hits", 0))
    misses = float(stats.get("misses", 0))
    total = hits + misses
    if total <= 0:
        return "-"
    return f"{hits / total:.0%}"


def _fmt_eta(eta: Any) -> str:
    if not isinstance(eta, (int, float)):
        return "-"
    eta = int(eta)
    if eta >= 3600:
        return f"{eta // 3600}h{(eta % 3600) // 60:02d}m"
    if eta >= 60:
        return f"{eta // 60}m{eta % 60:02d}s"
    return f"{eta}s"


def render_top(
    stats: Mapping[str, Any],
    jobs: list[Mapping[str, Any]],
    progress_by_job: Mapping[str, Mapping[str, Any]] | None = None,
    *,
    max_rows: int = 20,
) -> str:
    """One dashboard frame as a plain multi-line string."""
    progress_by_job = progress_by_job or {}
    caches = stats.get("caches") or {}
    result = caches.get("result") or {}
    profile = caches.get("profile") or {}
    heartbeats = stats.get("heartbeats") or {}
    guard = stats.get("guard") or {}
    guard_counters = guard.get("counters") or {}
    by_state = stats.get("jobs_by_state") or {}
    # The stats op reports ``running`` as the list of job ids; offline
    # callers may pass a plain count.  Render both as a count.
    running = stats.get("running", 0)
    if isinstance(running, (list, tuple)):
        running = len(running)
    lines = [
        (
            f"repro top — uptime {float(stats.get('uptime_s', 0.0)):.0f}s  "
            f"queue {stats.get('queued', 0)}  "
            f"running {running}/{stats.get('workers', '?')}  "
            f"workers alive {heartbeats.get('alive', 0)} "
            f"stalled {heartbeats.get('stalled', 0)}"
        ),
        (
            f"jobs: "
            + "  ".join(
                f"{state}={by_state.get(state, 0)}"
                for state in ("queued", "running", "done", "failed",
                              "cancelled")
            )
        ),
        (
            f"caches: result {_hit_rate(result)} hit "
            f"({result.get('entries', 0)} entries)  "
            f"profile bank {profile.get('layouts', 0)} layouts/"
            f"{profile.get('profiles', 0)} profiles "
            f"(warm attach {profile.get('warm_attaches', 0)})"
        ),
    ]
    fired = {
        name: count for name, count in guard_counters.items() if count
    }
    if fired:
        lines.append(
            "guard: " + "  ".join(
                f"{name}={count}" for name, count in sorted(fired.items())
            )
        )
    lines.append("")
    header = (
        f"{'JOB':<14} {'STATE':<10} {'PRI':>3} {'PHASE':<12} "
        f"{'TILES':>9} {'SHOTS':>8} {'ETA':>7} {'STALL':>5} {'WAIT':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))

    def sort_key(job: Mapping[str, Any]) -> tuple[int, float]:
        state = str(job.get("state", ""))
        rank = (
            _ACTIVE_STATES.index(state)
            if state in _ACTIVE_STATES else len(_ACTIVE_STATES)
        )
        return (rank, -float(job.get("submitted_unix") or 0.0))

    for job in sorted(jobs, key=sort_key)[:max_rows]:
        job_id = str(job.get("job_id", "?"))
        state = str(job.get("state", "?"))
        prog = progress_by_job.get(job_id, {})
        done, total = prog.get("tiles_done"), prog.get("tiles_total")
        tiles = f"{done}/{total}" if done is not None else "-"
        phase = str(prog.get("phase") or "")[:12]
        queue_wait = job.get("queue_wait_s")
        wait = (
            f"{float(queue_wait):.1f}s"
            if isinstance(queue_wait, (int, float)) else "-"
        )
        flags = " GAP" if prog.get("gap") else ""
        lines.append(
            f"{job_id:<14} {state:<10} {int(job.get('priority') or 0):>3} "
            f"{phase:<12} {tiles:>9} {str(prog.get('shots', '-')):>8} "
            f"{_fmt_eta(prog.get('eta_s')):>7} "
            f"{prog.get('stalls', 0):>5} {wait:>7}{flags}"
        )
    if not jobs:
        lines.append("(no jobs)")
    return "\n".join(lines)
