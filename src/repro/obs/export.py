"""Telemetry payload serialization: JSON, JSONL and CSV.

The format is chosen by file extension:

* ``.json`` — the nested payload verbatim (the lossless default).
* ``.jsonl`` — one flat record per line (``manifest`` / ``span`` /
  ``counter`` / ``gauge`` / ``histogram`` / ``event`` / ``convergence``)
  for streaming consumers; span records carry ``id``/``parent`` links so
  the tree is reconstructable.
* ``.csv`` — the per-iteration convergence table only (the thing a
  spreadsheet plot actually wants).

``load_telemetry`` round-trips the JSON and JSONL forms.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "load_telemetry",
    "payload_to_records",
    "records_to_payload",
    "write_telemetry",
]

_CONVERGENCE_COLUMNS = (
    "seq", "span", "worker", "iteration", "cost", "failing", "shots",
    "operator",
)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` via tmp + fsync + rename so a crash mid-export can
    never leave a torn file at ``path`` (the checkpoint-journal durability
    contract, applied to the telemetry export)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def write_telemetry(payload: dict[str, Any], path: str | Path) -> Path:
    """Write ``payload`` (from ``TelemetryRecorder.export``) to ``path``."""
    path = Path(path)
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    suffix = path.suffix.lower()
    if suffix == ".jsonl":
        lines = (json.dumps(record) for record in payload_to_records(payload))
        _atomic_write_text(path, "\n".join(lines) + "\n")
    elif suffix == ".csv":
        _atomic_write_text(path, _convergence_csv(payload))
    else:
        _atomic_write_text(
            path, json.dumps(payload, indent=2, default=str) + "\n"
        )
    return path


def load_telemetry(path: str | Path) -> dict[str, Any]:
    """Load a ``.json`` or ``.jsonl`` telemetry file back into a payload."""
    path = Path(path)
    if path.suffix.lower() == ".jsonl":
        records = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # Torn trailing line of an interrupted writer — same
                # tolerance as the checkpoint journal and the stream.
                continue
        return records_to_payload(records)
    if path.suffix.lower() == ".csv":
        raise ValueError(
            "CSV telemetry holds only the convergence table and cannot be "
            "summarized; export .json or .jsonl instead"
        )
    return json.loads(path.read_text())


def payload_to_records(payload: dict[str, Any]) -> Iterator[dict[str, Any]]:
    """Flatten a payload into typed records (the JSONL line stream)."""
    yield {"type": "manifest", **payload.get("manifest", {})}
    yield from _flatten_spans(payload.get("spans"))
    for name, value in payload.get("counters", {}).items():
        yield {"type": "counter", "name": name, "value": value}
    for name, value in payload.get("gauges", {}).items():
        yield {"type": "gauge", "name": name, "value": value}
    for name, hist in payload.get("histograms", {}).items():
        yield {"type": "histogram", "name": name, **hist}
    for event in payload.get("events", ()):
        yield {"type": "event", **event}
    for record in payload.get("convergence", ()):
        yield {"type": "convergence", **record}


def _flatten_spans(
    node: dict[str, Any] | None,
    parent: int | None = None,
    counter: list[int] | None = None,
) -> Iterator[dict[str, Any]]:
    if node is None:
        return
    if counter is None:
        counter = [0]
    span_id = counter[0]
    counter[0] += 1
    record: dict[str, Any] = {
        "type": "span",
        "id": span_id,
        "parent": parent,
        "name": node.get("name", "?"),
        "wall_s": node.get("wall_s", 0.0),
        "cpu_s": node.get("cpu_s", 0.0),
    }
    if node.get("attrs"):
        record["attrs"] = node["attrs"]
    yield record
    for child in node.get("children", ()):
        yield from _flatten_spans(child, span_id, counter)


def records_to_payload(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Rebuild the nested payload from a JSONL record stream.

    Tolerant of partial streams: a span record whose parent is missing
    (lost to a torn write) reattaches under the root instead of raising,
    and records without an ``id`` are skipped.
    """
    payload: dict[str, Any] = {
        "schema": "repro.obs/v1",
        "manifest": {},
        "spans": {"name": "run", "wall_s": 0.0, "cpu_s": 0.0},
        "counters": {},
        "gauges": {},
        "histograms": {},
        "events": [],
        "convergence": [],
    }
    nodes: dict[int, dict[str, Any]] = {}
    for record in records:
        if not isinstance(record, dict):
            continue
        kind = record.get("type")
        body = {k: v for k, v in record.items() if k != "type"}
        if kind == "manifest":
            payload["manifest"] = body
        elif kind == "span":
            if "id" not in body:
                continue
            node = {
                "name": body.get("name", "?"),
                "wall_s": body.get("wall_s", 0.0),
                "cpu_s": body.get("cpu_s", 0.0),
            }
            if body.get("attrs"):
                node["attrs"] = body["attrs"]
            nodes[body["id"]] = node
            parent = body.get("parent")
            if parent is None:
                payload["spans"] = node
            elif parent in nodes:
                nodes[parent].setdefault("children", []).append(node)
            else:
                # Orphaned by a lost parent record: keep the timing data
                # visible under the root rather than dropping it.
                payload["spans"].setdefault("children", []).append(node)
        elif kind == "counter":
            if "name" in body:
                payload["counters"][body["name"]] = body.get("value", 0)
        elif kind == "gauge":
            if "name" in body:
                payload["gauges"][body["name"]] = body.get("value", 0)
        elif kind == "histogram":
            name = body.pop("name", None)
            if name is not None:
                payload["histograms"][name] = body
        elif kind == "event":
            payload["events"].append(body)
        elif kind == "convergence":
            payload["convergence"].append(body)
    return payload


# Back-compat alias for the pre-publication private name.
_records_to_payload = records_to_payload


def _convergence_csv(payload: dict[str, Any]) -> str:
    records = payload.get("convergence", ())
    extra = sorted(
        {
            key
            for record in records
            for key in record
            if key not in _CONVERGENCE_COLUMNS
        }
    )
    columns = [*_CONVERGENCE_COLUMNS, *extra]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for record in records:
        writer.writerow({column: record.get(column, "") for column in columns})
    return buffer.getvalue()
