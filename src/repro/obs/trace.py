"""Trace context: one correlation id from submit to the last tile.

The observability pieces — spans (:mod:`repro.obs.recorder`), JSONL
streams (:mod:`repro.obs.stream`), heartbeats
(:mod:`repro.obs.resources`), checkpoint journals
(:mod:`repro.fracture.runtime`) — each record *their* process's view of
a run.  What joins them is a :class:`TraceContext`: a ``trace_id``
minted once at the outermost caller (the CLI command or
``ServiceClient.submit``) and carried through every hop:

* the ``repro.service/v1`` submit request (top-level ``trace`` field,
  next to ``client_id``),
* the durable :class:`~repro.service.jobs.JobRecord` (so the id
  survives daemon restarts and joins both attempts of a resumed job),
* the executor's recorder manifest, live stream (every line is stamped
  ``trace_id``), heartbeat files and checkpoint journal lines,
* pool-worker initializers, so worker-side heartbeats and merged
  worker span trees carry the same id.

``span_id`` / ``parent_span_id`` give the hops themselves an identity:
each process boundary crossed mints a :meth:`TraceContext.child`, so an
exported trace can show *which* hop produced a span even though all of
them share one ``trace_id``.

Ids are random (not derived from job content): two submissions of the
same geometry are different traces.  Everything here is observational —
no fracturing decision ever reads a trace id — so propagation cannot
change shot output.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["TraceContext", "mint_trace", "valid_trace_id"]

#: Hex ids: 32 chars for the trace, 16 for spans (W3C traceparent sizes).
_TRACE_ID_BYTES = 16
_SPAN_ID_BYTES = 8

#: Accepted wire format for ids arriving from untrusted clients.
_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: Keys a serialized context may carry; anything else is dropped.
_FIELDS = ("trace_id", "span_id", "parent_span_id")


def _hex_id(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


def valid_trace_id(value: Any) -> bool:
    """True when ``value`` is a plausible lowercase-hex trace/span id."""
    return isinstance(value, str) and bool(_ID_RE.match(value))


@dataclass(frozen=True)
class TraceContext:
    """Immutable (trace_id, span_id, parent_span_id) triple."""

    trace_id: str = field(default_factory=lambda: _hex_id(_TRACE_ID_BYTES))
    span_id: str = field(default_factory=lambda: _hex_id(_SPAN_ID_BYTES))
    parent_span_id: str | None = None

    def child(self) -> "TraceContext":
        """A new hop in the same trace: fresh span_id, this one as parent."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(_SPAN_ID_BYTES),
            parent_span_id=self.span_id,
        )

    def to_dict(self) -> dict[str, str]:
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id:
            out["parent_span_id"] = self.parent_span_id
        return out

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any] | None
    ) -> "TraceContext | None":
        """Rebuild a context from an (untrusted) mapping.

        Unknown keys are ignored and malformed ids rejected — a garbage
        ``trace`` field on a submit request degrades to "no context"
        (the server then mints a fresh one) instead of failing the job:
        observability must never reject work.
        """
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        if not valid_trace_id(trace_id):
            return None
        span_id = payload.get("span_id")
        if not valid_trace_id(span_id):
            span_id = _hex_id(_SPAN_ID_BYTES)
        parent = payload.get("parent_span_id")
        if not valid_trace_id(parent):
            parent = None
        return cls(trace_id=trace_id, span_id=span_id, parent_span_id=parent)


def mint_trace() -> TraceContext:
    """A fresh root context (new trace_id, no parent)."""
    return TraceContext()
