"""Resource sampling and worker heartbeats (standard library only).

Two halves of the live-telemetry picture:

* :func:`sample_resources` — a cheap RSS/CPU sample of the calling
  process (``/proc/self/status`` on Linux, ``resource.getrusage`` peak
  RSS as the fallback; ``None`` where neither exists).
* the **heartbeat channel** between pool workers and the parent of the
  tiled executor.  Each worker runs a :class:`HeartbeatWriter` daemon
  thread that publishes a small JSON file (atomic tmp + rename, so the
  parent never reads a torn record) with its pid, liveness timestamp,
  current tile/attempt and resource sample.  The parent runs a
  :class:`HeartbeatMonitor` thread that folds the beats into
  ``windowed.*`` gauges, emits ``worker_heartbeat`` events through the
  active recorder (and therefore into the live stream), and flags
  stalled workers: a worker whose file stops refreshing (killed or
  frozen — ``no_heartbeat``) or whose current tile has been running
  suspiciously long (hung worker whose heartbeat thread still beats —
  ``slow_task``).  Both fire *before* the per-tile deadline, which is
  the point: the deadline is the rescue, the stall event is the alarm.

The channel is files-on-disk rather than a queue so a SIGKILLed or
SIGSTOPped worker — precisely the case worth observing — needs no
cooperation to be noticed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "DiskFullError",
    "HeartbeatMonitor",
    "HeartbeatWriter",
    "disk_free_bytes",
    "ensure_disk_space",
    "pid_alive",
    "read_heartbeats",
    "rss_bytes",
    "sample_resources",
    "set_disk_free_override",
    "summarize_heartbeats",
]


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe, best effort).

    Used by the service daemon to detect a stale state directory: a
    ``daemon.json`` whose pid is gone means the previous daemon died
    without cleanup and its socket/lease can be reclaimed.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class DiskFullError(OSError):
    """Free disk space under a configured floor — the write was refused.

    Raised *before* any bytes hit the file, so callers never leave a
    torn checkpoint/journal/result behind; the job carrying the write
    fails loudly with a typed error instead.
    """

    def __init__(self, path: str | Path, free: int, floor: int):
        super().__init__(
            f"disk floor breached at {path}: {free} bytes free "
            f"< floor {floor}"
        )
        self.path = str(path)
        self.free = free
        self.floor = floor


#: Test/chaos shim: when set, :func:`disk_free_bytes` reports this value
#: instead of asking the filesystem.  The env var lets chaos suites
#: inject disk-full into daemon *subprocesses* too.
_DISK_FREE_OVERRIDE: int | None = None
DISK_FREE_ENV = "REPRO_CHAOS_DISK_FREE"


def set_disk_free_override(free: int | None) -> None:
    """Force :func:`disk_free_bytes` to report ``free`` (``None`` resets)."""
    global _DISK_FREE_OVERRIDE
    _DISK_FREE_OVERRIDE = free


def disk_free_bytes(path: str | Path) -> int | None:
    """Free bytes on the filesystem holding ``path`` (best effort).

    Honors the chaos override (:func:`set_disk_free_override` or the
    ``REPRO_CHAOS_DISK_FREE`` env var) so disk-full behaviour is
    testable without actually filling a disk.  Returns ``None`` when
    the filesystem cannot be queried.
    """
    if _DISK_FREE_OVERRIDE is not None:
        return _DISK_FREE_OVERRIDE
    env = os.environ.get(DISK_FREE_ENV)
    if env is not None:
        try:
            return int(env)
        except ValueError:
            pass
    probe = Path(path)
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            break
        probe = parent
    try:
        stat = os.statvfs(probe)
    except (OSError, AttributeError):
        return None
    return stat.f_bavail * stat.f_frsize


def ensure_disk_space(
    path: str | Path, floor_bytes: int | None, need_bytes: int = 0
) -> None:
    """Refuse (``DiskFullError``) a write that would breach the floor.

    ``floor_bytes`` of ``None`` disables the guard; an unqueryable
    filesystem passes (the guard must never fail a healthy job on an
    exotic mount).
    """
    if floor_bytes is None:
        return
    free = disk_free_bytes(path)
    if free is None:
        return
    if free - need_bytes < floor_bytes:
        raise DiskFullError(path, free, floor_bytes)


def rss_bytes() -> int | None:
    """Resident set size of this process in bytes (best effort)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak_kb * 1024 if peak_kb < 1 << 40 else peak_kb
    except (ImportError, OSError, ValueError):
        return None


def sample_resources() -> dict[str, Any]:
    """One RSS/CPU sample: ``{"t", "rss_bytes", "cpu_s"}``."""
    return {
        "t": time.time(),
        "rss_bytes": rss_bytes(),
        "cpu_s": time.process_time(),
    }


class HeartbeatWriter:
    """Worker-side heartbeat publisher (one JSON file per process).

    ``start()`` writes an immediate first beat, then a daemon thread
    re-publishes every ``interval_s``.  :meth:`set_task` /
    :meth:`clear_task` bracket the tile currently being executed so the
    parent can attribute a stall to a specific tile and attempt.

    ``name`` overrides the pid in the file name (one file per *job*
    instead of per process — the service daemon's executor threads all
    share a pid); ``meta`` is a dict merged into every record (e.g.
    ``{"job_id": ...}``) so a reader can attribute the beat.
    """

    def __init__(
        self,
        directory: str | Path,
        interval_s: float = 1.0,
        *,
        name: str | None = None,
        meta: dict[str, Any] | None = None,
    ):
        self.directory = Path(directory)
        self.interval_s = max(0.01, float(interval_s))
        stem = f"hb-{name}" if name else f"hb-{os.getpid()}"
        self.path = self.directory / f"{stem}.json"
        self._tmp = self.directory / f"{stem}.tmp"
        self._meta = dict(meta) if meta else {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._task: dict[str, Any] | None = None
        self._beats = 0

    def set_task(self, tile: str, attempt: int) -> None:
        with self._lock:
            self._task = {
                "tile": tile,
                "attempt": attempt,
                "task_started_t": time.time(),
            }
        self.beat()

    def clear_task(self) -> None:
        with self._lock:
            self._task = None
        self.beat()

    def beat(self) -> None:
        """Publish one heartbeat record atomically (tmp + rename)."""
        with self._lock:
            self._beats += 1
            record: dict[str, Any] = {
                "pid": os.getpid(),
                "beats": self._beats,
                **self._meta,
                **sample_resources(),
            }
            if self._task is not None:
                record.update(self._task)
            try:
                self._tmp.write_text(json.dumps(record), encoding="utf-8")
                os.replace(self._tmp, self.path)
            except OSError:
                # The parent may have torn the directory down already
                # (run finished); liveness publishing is best effort.
                pass

    def start(self) -> "HeartbeatWriter":
        self.directory.mkdir(parents=True, exist_ok=True)
        self.beat()
        self._thread = threading.Thread(
            target=self._run, name="heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat()

    def stop(self, unlink: bool = False) -> None:
        """Stop beating; ``unlink=True`` also removes the file (a clean
        finish should not linger as a ``no_heartbeat`` corpse)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if unlink:
            for path in (self.path, self._tmp):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass


def read_heartbeats(directory: str | Path) -> list[dict[str, Any]]:
    """All readable heartbeat records under ``directory`` (pid order)."""
    directory = Path(directory)
    beats = []
    try:
        files = sorted(directory.glob("hb-*.json"))
    except OSError:
        return []
    for path in files:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "pid" in record:
            beats.append(record)
    return beats


def summarize_heartbeats(
    directory: str | Path,
    *,
    stall_after_s: float = 10.0,
    slow_task_after_s: float | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """Fold the heartbeat files under ``directory`` into one status dict.

    The stateless counterpart of :class:`HeartbeatMonitor` for pull-style
    surfaces (the service daemon's ``stats`` op): one call, no recorder,
    no episode tracking.  Per writer the status is ``alive`` (fresh
    beat), ``slow_task`` (fresh beat but the current task has run longer
    than ``slow_task_after_s`` — a *wedged* job: the writer's daemon
    thread keeps beating while the work loop is stuck, so only the task
    age gives it away) or ``no_heartbeat`` (stale file: killed/frozen
    process or a crashed executor thread that never unlinked).
    """
    now = time.time() if now is None else now
    workers: list[dict[str, Any]] = []
    alive = 0
    stalled = 0
    for hb in read_heartbeats(directory):
        age = max(0.0, now - float(hb.get("t", now)))
        fresh = age <= stall_after_s
        task = hb.get("tile")
        task_age = None
        if task is not None:
            task_age = max(0.0, now - float(hb.get("task_started_t", now)))
        if not fresh:
            status = "no_heartbeat"
        elif (
            slow_task_after_s is not None
            and task_age is not None
            and task_age > slow_task_after_s
        ):
            status = "slow_task"
        else:
            status = "alive"
        if status == "alive":
            alive += 1
        else:
            stalled += 1
        entry: dict[str, Any] = {
            "pid": hb.get("pid"),
            "status": status,
            "age_s": round(age, 3),
            "task": task,
            "rss_bytes": hb.get("rss_bytes"),
            "cpu_s": hb.get("cpu_s"),
        }
        if task_age is not None:
            entry["task_age_s"] = round(task_age, 3)
        for passthrough in ("job_id", "trace_id"):
            if passthrough in hb:
                entry[passthrough] = hb[passthrough]
        workers.append(entry)
    return {"workers": workers, "alive": alive, "stalled": stalled}


class HeartbeatMonitor:
    """Parent-side heartbeat reader / stall detector.

    Every ``interval_s`` the monitor reads the heartbeat directory and:

    * sets the gauges ``windowed.workers_alive``,
      ``windowed.workers_stalled``, ``windowed.worker_rss_peak_bytes``
      and ``windowed.worker_cpu_s_total``;
    * emits one ``worker_heartbeat`` event per live worker (these reach
      the live stream via the recorder's stream hook);
    * emits a ``worker_stalled`` event (once per episode, counted by
      ``windowed.worker_stalls``) when a worker's file stops refreshing
      for ``stall_after_s`` (``no_heartbeat``) or its current tile has
      run longer than ``slow_task_after_s`` (``slow_task``);
    * asks the recorder for a metrics snapshot so the stream shows
      counters/gauges moving while the run is alive.

    ``tick()`` is separable from the thread for deterministic tests.
    """

    def __init__(
        self,
        directory: str | Path,
        recorder: Any,
        *,
        interval_s: float = 1.0,
        stall_after_s: float | None = None,
        slow_task_after_s: float | None = None,
        heartbeat_events: bool = True,
    ):
        self.directory = Path(directory)
        self.recorder = recorder
        self.interval_s = max(0.01, float(interval_s))
        self.stall_after_s = (
            stall_after_s if stall_after_s is not None else 3.0 * self.interval_s
        )
        self.slow_task_after_s = (
            slow_task_after_s
            if slow_task_after_s is not None
            else 10.0 * self.interval_s
        )
        self.heartbeat_events = heartbeat_events
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._stalled: dict[int, str] = {}  # pid -> stall kind
        self._rss_peak = 0

    def tick(self, now: float | None = None) -> list[dict[str, Any]]:
        """One monitoring pass; returns the stall events it emitted."""
        now = time.time() if now is None else now
        rec = self.recorder
        stalls: list[dict[str, Any]] = []
        alive = 0
        cpu_total = 0.0
        for hb in read_heartbeats(self.directory):
            pid = hb.get("pid")
            age = max(0.0, now - float(hb.get("t", now)))
            fresh = age <= self.stall_after_s
            task_age = None
            if hb.get("tile") is not None:
                task_age = max(0.0, now - float(hb.get("task_started_t", now)))
            if fresh:
                alive += 1
                cpu_total += float(hb.get("cpu_s") or 0.0)
                rss = hb.get("rss_bytes")
                if isinstance(rss, (int, float)):
                    self._rss_peak = max(self._rss_peak, int(rss))
                if self.heartbeat_events:
                    rec.event(
                        "worker_heartbeat",
                        pid=pid,
                        tile=hb.get("tile"),
                        attempt=hb.get("attempt"),
                        rss_bytes=hb.get("rss_bytes"),
                        cpu_s=hb.get("cpu_s"),
                        age_s=round(age, 3),
                    )
            kind = None
            if not fresh:
                kind = "no_heartbeat"
            elif task_age is not None and task_age > self.slow_task_after_s:
                kind = "slow_task"
            if kind is None:
                self._stalled.pop(pid, None)
                continue
            if self._stalled.get(pid) == kind:
                continue  # already flagged this episode
            self._stalled[pid] = kind
            stall = {
                "pid": pid,
                "kind": kind,
                "tile": hb.get("tile"),
                "attempt": hb.get("attempt"),
                "age_s": round(age if kind == "no_heartbeat" else task_age, 3),
            }
            stalls.append(stall)
            rec.incr("windowed.worker_stalls")
            rec.event("worker_stalled", **stall)
        rec.gauge("windowed.workers_alive", alive)
        rec.gauge("windowed.workers_stalled", len(self._stalled))
        if self._rss_peak:
            rec.gauge("windowed.worker_rss_peak_bytes", self._rss_peak)
        if cpu_total:
            rec.gauge("windowed.worker_cpu_s_total", round(cpu_total, 3))
        emit_metrics = getattr(rec, "emit_metrics", None)
        if emit_metrics is not None:
            emit_metrics()
        return stalls

    def start(self) -> "HeartbeatMonitor":
        self._thread = threading.Thread(
            target=self._run, name="heartbeat-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover — monitoring must not kill runs
                pass

    def stop(self, final_tick: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if final_tick:
            try:
                self.tick()
            except Exception:  # pragma: no cover — same contract as _run
                pass
