"""Prometheus text exposition over the recorder's metric model.

The recorder (:mod:`repro.obs.recorder`) accumulates dotted counters
(``cache.lut.hits``), gauges (``windowed.workers_alive``) and min/max
histograms (``refine.batch_wall_s``).  This module renders those — plus
the service daemon's live state — in the Prometheus text exposition
format (version 0.0.4), so a scrape of the daemon's ``metrics`` op or a
``repro metrics`` dump of an offline telemetry file drops straight into
an existing Prometheus/Grafana stack.

Design notes:

* Dotted telemetry names map to ``repro_``-prefixed underscore names
  (``cache.lut.hits`` → ``repro_cache_lut_hits``); the mapping is
  mechanical so dashboards can be derived from telemetry keys.
* The recorder's histograms carry count/sum/min/max, not buckets, so
  they render as Prometheus *summaries* (``_count``/``_sum``) with the
  extremes as companion gauges (``_min``/``_max``).
* :func:`parse_prometheus` is the read side used by tests and the CI
  smoke: a strict-enough parser that malformed exposition output fails
  the gate instead of scraping as garbage.

Everything is pure functions over plain dicts — no global registry, no
background collector — because every metric source in the tree already
*is* a dict snapshot (``TelemetryRecorder.snapshot_metrics``, the
service ``stats`` op, ``FractureCache.stats``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

__all__ = [
    "MetricSample",
    "parse_prometheus",
    "payload_samples",
    "render_prometheus",
    "sanitize_metric_name",
]

_NAME_OK_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One exposition sample: (name, labels, value, type, help).
class MetricSample:
    __slots__ = ("name", "labels", "value", "type", "help")

    def __init__(
        self,
        name: str,
        value: float,
        *,
        labels: Mapping[str, Any] | None = None,
        type: str = "gauge",
        help: str = "",
    ):
        self.name = sanitize_metric_name(name)
        self.labels = dict(labels) if labels else {}
        self.value = value
        self.type = type
        self.help = help


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted telemetry key to a legal Prometheus metric name."""
    cleaned = _SANITIZE_RE.sub("_", str(name))
    if not cleaned.startswith(prefix):
        cleaned = prefix + cleaned
    if not _NAME_OK_RE.match(cleaned):
        cleaned = prefix + "invalid"
    return cleaned


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_one(sample: MetricSample) -> str:
    if sample.labels:
        inner = ",".join(
            f'{key}="{_escape_label(value)}"'
            for key, value in sorted(sample.labels.items())
            if _LABEL_OK_RE.match(str(key))
        )
        return f"{sample.name}{{{inner}}} {_format_value(sample.value)}"
    return f"{sample.name} {_format_value(sample.value)}"


def render_prometheus(samples: Iterable[MetricSample]) -> str:
    """Render samples as Prometheus text exposition (format 0.0.4).

    Samples sharing a metric name are grouped under one ``# TYPE``
    header (Prometheus rejects repeated headers); the first sample of a
    name wins the type/help declaration.
    """
    by_name: dict[str, list[MetricSample]] = {}
    order: list[str] = []
    for sample in samples:
        if sample.name not in by_name:
            by_name[sample.name] = []
            order.append(sample.name)
        by_name[sample.name].append(sample)
    lines: list[str] = []
    for name in order:
        group = by_name[name]
        head = group[0]
        if head.help:
            lines.append(f"# HELP {name} {head.help}")
        lines.append(f"# TYPE {name} {head.type}")
        lines.extend(_render_one(sample) for sample in group)
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_samples(
    name: str, hist: Mapping[str, Any], labels: Mapping[str, Any] | None = None
) -> list[MetricSample]:
    """A count/sum/min/max histogram as summary + extreme gauges."""
    base = sanitize_metric_name(name)
    out = [
        MetricSample(
            f"{base}_count", float(hist.get("count", 0)),
            labels=labels, type="counter",
        ),
        MetricSample(
            f"{base}_sum", float(hist.get("sum", 0.0)),
            labels=labels, type="counter",
        ),
    ]
    for extreme in ("min", "max"):
        value = hist.get(extreme)
        if isinstance(value, (int, float)) and math.isfinite(value):
            out.append(
                MetricSample(f"{base}_{extreme}", float(value), labels=labels)
            )
    return out


def payload_samples(payload: Mapping[str, Any]) -> list[MetricSample]:
    """Samples for a ``repro.obs/v1`` payload (or any snapshot dict).

    Accepts the exported recorder payload, a ``snapshot_metrics()``
    dict, or anything else carrying ``counters`` / ``gauges`` /
    ``histograms`` mappings.  The run's trace id (payload manifest)
    rides along as an info-style gauge so a scrape can be joined back
    to its trace.
    """
    samples: list[MetricSample] = []
    trace = (payload.get("manifest") or {}).get("trace") or {}
    if trace.get("trace_id"):
        samples.append(MetricSample(
            "repro_run_info", 1.0,
            labels={"trace_id": trace["trace_id"]},
            help="Constant 1; labels identify the run.",
        ))
    for name, value in sorted((payload.get("counters") or {}).items()):
        samples.append(MetricSample(
            f"{name}_total", float(value), type="counter",
        ))
    for name, value in sorted((payload.get("gauges") or {}).items()):
        if isinstance(value, (int, float)):
            samples.append(MetricSample(name, float(value)))
    for name, hist in sorted((payload.get("histograms") or {}).items()):
        samples.extend(_histogram_samples(name, hist))
    return samples


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+\d+)?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def parse_prometheus(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, labels): value}``.

    Raises :class:`ValueError` on any line that is neither a comment,
    blank, nor a well-formed sample — the CI smoke-scrape uses this to
    gate that the ``metrics`` op emits valid exposition output.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: not a metric sample: {line!r}")
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {raw!r}"
            ) from None
        labels: list[tuple[str, str]] = []
        if match.group("labels"):
            body = match.group("labels")
            matched = list(_LABEL_RE.finditer(body))
            joined = ",".join(m.group(0) for m in matched)
            if body.rstrip(",") != joined:
                raise ValueError(f"line {lineno}: malformed labels {body!r}")
            labels = [(m.group("key"), m.group("value")) for m in matched]
        out[(match.group("name"), tuple(sorted(labels)))] = value
    return out
