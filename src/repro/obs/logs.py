"""Logging policy: library code is silent unless a consumer opts in.

Every module that used to ``print()`` progress now goes through
:func:`get_logger`, which hangs a ``NullHandler`` off the ``repro`` root
logger — the standard-library convention for quiet libraries.  The CLI
(and anyone embedding the package) opts into console output with
:func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["enable_console_logging", "get_logger"]

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (silent by default)."""
    if not name.startswith(_ROOT):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Route ``repro`` logs to stderr (idempotent; used by the CLI)."""
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    marker = "_repro_console_handler"
    if not any(getattr(h, marker, False) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        setattr(handler, marker, True)
        root.addHandler(handler)
    return root
