"""Human-readable summaries of a telemetry payload.

``python -m repro trace summarize out.json`` renders:

* the manifest header (params, git SHA, host);
* a per-phase table — spans aggregated by name with call count, total
  wall time, *self* wall time (total minus instrumented children — the
  number that tells you where time actually goes), CPU time and share of
  the run;
* counters / gauges / histograms;
* a convergence digest per refinement series (iterations, first → final
  cost, final failing-pixel and shot counts, operator mix).
"""

from __future__ import annotations

from typing import Any

from repro.obs.recorder import SpanNode

__all__ = ["format_clip_breakdown", "format_summary", "phase_breakdown"]


def phase_breakdown(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Aggregate the span tree by span name, heaviest wall time first."""
    root = SpanNode.from_dict(payload.get("spans") or {"name": "run"})
    phases: dict[str, dict[str, Any]] = {}
    for node in root.walk():
        if node is root:
            continue
        entry = phases.setdefault(
            node.name,
            {"phase": node.name, "count": 0, "wall_s": 0.0,
             "self_s": 0.0, "cpu_s": 0.0},
        )
        entry["count"] += 1
        entry["wall_s"] += node.wall_s
        entry["cpu_s"] += node.cpu_s
        entry["self_s"] += node.wall_s - sum(c.wall_s for c in node.children)
    return sorted(phases.values(), key=lambda entry: -entry["wall_s"])


def format_summary(payload: dict[str, Any]) -> str:
    """The full ``trace summarize`` report as plain text.

    Tolerant of partial payloads (an interrupted export, a stream fold,
    a merged-child-only trace): every section degrades to an informative
    placeholder instead of raising.
    """
    lines: list[str] = []
    lines += _manifest_lines(payload.get("manifest") or {})
    phases = phase_breakdown(payload)
    spans = payload.get("spans") or {}
    total_wall = sum(
        child.get("wall_s", 0.0)
        for child in spans.get("children", ())
        if isinstance(child, dict)
    )
    lines.append("")
    lines.append(f"per-phase breakdown (run wall time {total_wall:.3f}s):")
    rows = [["phase", "count", "wall s", "self s", "cpu s", "% run"]]
    for entry in phases:
        share = 100.0 * entry["wall_s"] / total_wall if total_wall > 0 else 0.0
        rows.append([
            entry["phase"],
            str(entry["count"]),
            f"{entry['wall_s']:.3f}",
            f"{entry['self_s']:.3f}",
            f"{entry['cpu_s']:.3f}",
            f"{share:.1f}",
        ])
    lines += _render_rows(rows)
    if not phases:
        lines.append("  (no spans recorded)")
    lines += _metric_lines(payload)
    convergence = payload.get("convergence")
    lines += _convergence_lines(convergence if isinstance(convergence, list) else ())
    return "\n".join(lines)


def format_clip_breakdown(payload: dict[str, Any]) -> str:
    """Per-clip, per-method phase table from a ``bench`` telemetry run.

    One row per ``fracture`` span found under each ``bench.clip`` span:
    init / refine / polish / verify wall time plus the total.  Methods
    without internal phases (the baselines) fill only the total column.
    """
    root = SpanNode.from_dict(payload.get("spans") or {"name": "run"})
    rows = [["clip", "method", "init s", "refine s", "polish s",
             "verify s", "total s"]]
    for clip_node in root.walk():
        if clip_node.name != "bench.clip":
            continue
        clip = str(clip_node.attrs.get("clip", "?"))
        for node in clip_node.children:
            if node.name != "fracture":
                continue
            timings = {"init": 0.0, "refine": 0.0, "polish": 0.0,
                       "verify": 0.0}
            for sub in node.walk():
                for phase in timings:
                    if sub.name == phase or sub.name.startswith(phase + "."):
                        timings[phase] += sub.wall_s
            rows.append([
                clip,
                str(node.attrs.get("method", "?")),
                *(f"{timings[phase]:.3f}" for phase in
                  ("init", "refine", "polish", "verify")),
                f"{node.wall_s:.3f}",
            ])
    if len(rows) == 1:
        return "(no bench.clip spans in this telemetry file)"
    return "\n".join(_render_rows(rows))


def _manifest_lines(manifest: Any) -> list[str]:
    lines = ["manifest:"]
    if not manifest or not isinstance(manifest, dict):
        return lines + ["  (empty)"]
    simple = {
        key: value
        for key, value in manifest.items()
        if key not in ("params", "host", "argv")
    }
    for key in sorted(simple):
        lines.append(f"  {key}: {simple[key]}")
    if "argv" in manifest:
        lines.append(f"  argv: {' '.join(map(str, manifest['argv']))}")
    params = manifest.get("params")
    if isinstance(params, dict) and params:
        rendered = ", ".join(f"{k}={v}" for k, v in params.items())
        lines.append(f"  params: {rendered}")
    host = manifest.get("host")
    if isinstance(host, dict) and host:
        rendered = ", ".join(f"{k}={v}" for k, v in host.items())
        lines.append(f"  host: {rendered}")
    return lines


def _metric_lines(payload: dict[str, Any]) -> list[str]:
    lines: list[str] = []
    counters = payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")
    gauges = payload.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name}: {gauges[name]}")
    histograms = payload.get("histograms") or {}
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name] or {}
            count = hist.get("count", 0)
            mean = hist.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"  {name}: n={count} mean={mean:.4g} "
                f"min={hist.get('min', 0.0):.4g} max={hist.get('max', 0.0):.4g}"
            )
    return lines


def _convergence_lines(records: Any) -> list[str]:
    records = [record for record in records if isinstance(record, dict)]
    if not records:
        return []
    series: dict[tuple, list[dict]] = {}
    for record in records:
        key = (record.get("worker", ""), record.get("span", ""))
        series.setdefault(key, []).append(record)
    lines = ["", f"convergence ({len(records)} records, "
                 f"{len(series)} refinement series):"]
    rows = [["series", "iters", "first cost", "final cost", "failing",
             "shots", "operators"]]
    for (worker, span), recs in series.items():
        label = f"{worker}:{span}" if worker else span
        operators: dict[str, int] = {}
        for record in recs:
            op = str(record.get("operator", "?"))
            operators[op] = operators.get(op, 0) + 1
        mix = " ".join(
            f"{op}×{count}" for op, count in sorted(operators.items())
        )
        first, last = recs[0], recs[-1]
        rows.append([
            label[-48:],
            str(len(recs)),
            f"{first.get('cost', 0.0):.3f}",
            f"{last.get('cost', 0.0):.3f}",
            str(last.get("failing", "?")),
            str(last.get("shots", "?")),
            mix,
        ])
    return lines + _render_rows(rows)


def _render_rows(rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  " + "  ".join(
                cell.ljust(width) if col == 0 else cell.rjust(width)
                for col, (cell, width) in enumerate(zip(row, widths))
            ).rstrip()
        )
        if i == 0:
            lines.append("  " + "  ".join("-" * width for width in widths))
    return lines
