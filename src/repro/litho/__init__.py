"""Toy lithography stack: aerial imaging and inverse lithography (ILT).

The paper's workload is the *output* of inverse lithography — curvy mask
contours optimized so the printed wafer image matches an intended
pattern.  This package provides a miniature version of that upstream
flow, so the benchmark suite can be fed by a genuine optimizer rather
than hand-tuned noise:

* :mod:`repro.litho.aerial` — a scalar aerial-image model: Gaussian
  optical blur + sigmoid resist, the standard pedagogical abstraction of
  partially coherent imaging.
* :mod:`repro.litho.ilt` — pixel-based inverse lithography by projected
  gradient descent on a continuous mask variable (the Poonawala–Milanfar
  formulation), with mask-rule cleanup of the final contour.
"""

from repro.litho.aerial import AerialImageModel
from repro.litho.ilt import IltResult, InverseLithoOptimizer, ilt_optimized_suite

__all__ = [
    "AerialImageModel",
    "IltResult",
    "InverseLithoOptimizer",
    "ilt_optimized_suite",
]
