"""Scalar aerial-image model: Gaussian optics + sigmoid resist.

The standard pedagogical abstraction of 193 nm partially coherent
imaging: the mask transmission is low-pass filtered by a Gaussian of
width ``optical_blur`` (the point-spread scale of the projection optics,
tens of nanometres at wafer scale), and the resist responds with a steep
sigmoid around the print threshold.  Good enough to make inverse
lithography produce the curvilinear mask contours the fracturing paper
takes as input — not a rigorous Hopkins model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter


@dataclass(frozen=True, slots=True)
class AerialImageModel:
    """Imaging parameters.

    ``optical_blur`` is in pixels of the simulation grid;
    ``resist_steepness`` controls the sigmoid slope (larger = closer to
    an ideal threshold resist); ``threshold`` is the print level.
    """

    optical_blur: float = 12.0
    resist_steepness: float = 25.0
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.optical_blur <= 0.0:
            raise ValueError("optical blur must be positive")
        if self.resist_steepness <= 0.0:
            raise ValueError("resist steepness must be positive")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must lie in (0, 1)")

    def aerial_image(self, mask: np.ndarray) -> np.ndarray:
        """Optical intensity at the wafer for a (continuous) mask."""
        return gaussian_filter(np.asarray(mask, dtype=np.float64), self.optical_blur)

    def resist_response(self, aerial: np.ndarray) -> np.ndarray:
        """Sigmoid resist: differentiable stand-in for develop/etch."""
        return 1.0 / (
            1.0 + np.exp(-self.resist_steepness * (aerial - self.threshold))
        )

    def print_image(self, mask: np.ndarray) -> np.ndarray:
        """Continuous printed image in [0, 1]."""
        return self.resist_response(self.aerial_image(mask))

    def printed_pattern(self, mask: np.ndarray) -> np.ndarray:
        """Boolean printed pattern (resist response thresholded at 1/2)."""
        return self.print_image(mask) >= 0.5

    def resist_derivative(self, aerial: np.ndarray) -> np.ndarray:
        """d resist / d aerial — used by the ILT gradient."""
        z = self.resist_response(aerial)
        return self.resist_steepness * z * (1.0 - z)

    def edge_placement_error(
        self, mask: np.ndarray, target: np.ndarray
    ) -> float:
        """Mean absolute printed-vs-target disagreement (pixel fraction)."""
        printed = self.printed_pattern(mask)
        return float(np.mean(printed != target))
