"""Pixel-based inverse lithography by projected gradient descent.

The Poonawala–Milanfar formulation: parameterize the mask as a sigmoid
of an unconstrained field θ, simulate the printed image through the
aerial model, and descend the squared print error

    L(θ) = Σ_p ( print(mask(θ))(p) − target(p) )²

using the chain rule.  The Gaussian blur is self-adjoint, so the
gradient needs one extra blur — no autodiff required.  The converged
continuous mask is thresholded and mask-rule-cleaned, producing exactly
the curvy, slightly bulged contours (with occasional assist blobs) that
real ILT emits and that model-based fracturing consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.geometry.raster import PixelGrid
from repro.litho.aerial import AerialImageModel
from repro.mask.shape import MaskShape
from repro.obs import get_logger, get_recorder

logger = get_logger(__name__)


@dataclass(slots=True)
class IltResult:
    """Outcome of one inverse-lithography run."""

    mask: np.ndarray  # boolean manufacturable mask
    continuous_mask: np.ndarray  # pre-threshold optimizer output
    loss_history: list[float]
    edge_error: float  # printed-vs-target pixel disagreement fraction

    @property
    def converged(self) -> bool:
        return len(self.loss_history) >= 2 and (
            self.loss_history[-1] <= self.loss_history[0]
        )


class InverseLithoOptimizer:
    """Gradient-descent ILT engine (see module docstring)."""

    def __init__(
        self,
        model: AerialImageModel = AerialImageModel(),
        iterations: int = 120,
        step: float = 4.0,
        mask_steepness: float = 4.0,
        mrc_radius: int = 5,
        min_component_px: int = 150,
    ):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.model = model
        self.iterations = iterations
        self.step = step
        self.mask_steepness = mask_steepness
        self.mrc_radius = mrc_radius
        self.min_component_px = min_component_px

    def _mask_of(self, theta: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.mask_steepness * theta))

    def optimize(self, target: np.ndarray) -> IltResult:
        """Optimize a mask for a boolean intended wafer pattern."""
        obs = get_recorder()
        target_f = target.astype(np.float64)
        theta = (target_f - 0.5) * 2.0  # start from the drawn pattern
        model = self.model
        loss_history: list[float] = []
        with obs.span("ilt.optimize", pixels=int(target.size)) as span:
            for _ in range(self.iterations):
                mask = self._mask_of(theta)
                aerial = model.aerial_image(mask)
                printed = model.resist_response(aerial)
                error = printed - target_f
                loss_history.append(float(np.sum(error**2)))
                # Chain rule: dL/dmask = blur( 2 error · resist' ), blur being
                # self-adjoint; then dmask/dtheta for the sigmoid.
                back = gaussian_filter(
                    2.0 * error * model.resist_derivative(aerial), model.optical_blur
                )
                grad_theta = back * self.mask_steepness * mask * (1.0 - mask)
                norm = float(np.max(np.abs(grad_theta)))
                if norm < 1e-12:
                    break
                theta = theta - self.step * grad_theta / norm
            span.annotate(iterations=len(loss_history))
            obs.incr("ilt.iterations", len(loss_history))
        if loss_history:
            logger.debug(
                "ILT descent: %d iterations, loss %.4g -> %.4g",
                len(loss_history), loss_history[0], loss_history[-1],
            )
        continuous = self._mask_of(theta)
        # Contour smoothing: ~2 px low-pass before thresholding strips the
        # pixel-scale ripple and sub-L_min serif hooks gradient descent leaves
        # on the boundary (a
        # real flow's mask raster/writer grid does the same).
        manufacturable = self._cleanup(
            gaussian_filter(continuous, 3.0) >= 0.5
        )
        edge_error = model.edge_placement_error(
            manufacturable.astype(np.float64), target
        )
        return IltResult(
            mask=manufacturable,
            continuous_mask=continuous,
            loss_history=loss_history,
            edge_error=edge_error,
        )

    def _cleanup(self, mask: np.ndarray) -> np.ndarray:
        """Mask rule check: drop sub-resolution slivers and debris.

        Keeps *every* printable component (ILT output is legitimately
        multi-polygon — main features plus assists); only raster debris
        below ``min_component_px`` is removed.
        """
        from repro.bench.shapes import _mrc_clean
        from repro.geometry.labeling import label_components

        cleaned = _mrc_clean(
            mask, radius_close=self.mrc_radius + 2, radius_open=self.mrc_radius
        )
        if not cleaned.any():
            return mask
        labels, count = label_components(cleaned)
        if count <= 1:
            return cleaned
        sizes = np.bincount(labels.ravel())
        keep = np.zeros_like(cleaned)
        for label in range(1, count + 1):
            if sizes[label] >= self.min_component_px:
                keep |= labels == label
        return keep if keep.any() else cleaned


def ilt_optimized_suite(pitch: float = 1.0) -> list[MaskShape]:
    """Five clips whose contours come from the real toy-ILT optimizer.

    Companion to :func:`repro.bench.shapes.ilt_suite` (which emulates
    optimizer output statistically): intended patterns are bars, elbows
    and contact pairs; each mask is the actual gradient-descent optimum
    under the aerial model.  Deterministic — no random seeds at all.
    """
    size = 300
    # Connected intended patterns so each clip is one polygon: bar,
    # cross, U, T and a Z-bend (multi-polygon output is exercised by
    # MaskClip in examples/ilt_to_shots.py instead).
    patterns: list[tuple[str, list[tuple[int, int, int, int]]]] = [
        ("ILT-OPT-1", [(110, 130, 210, 172)]),
        ("ILT-OPT-2", [(80, 128, 225, 170), (128, 62, 170, 230)]),
        ("ILT-OPT-3", [(70, 80, 230, 122), (70, 80, 112, 222), (188, 80, 230, 222)]),
        ("ILT-OPT-4", [(80, 180, 220, 222), (128, 70, 170, 222)]),
        ("ILT-OPT-5", [(70, 160, 170, 202), (130, 98, 230, 140)]),
    ]
    optimizer = InverseLithoOptimizer()
    shapes = []
    for name, rects in patterns:
        target = np.zeros((size, size), dtype=bool)
        for x_lo, y_lo, x_hi, y_hi in rects:
            target[y_lo:y_hi, x_lo:x_hi] = True
        result = optimizer.optimize(target)
        grid = PixelGrid(0.0, 0.0, pitch, size, size)
        mask = _largest(result.mask)
        shapes.append(MaskShape.from_mask(mask, grid, name=name))
    return shapes


def _largest(mask: np.ndarray) -> np.ndarray:
    from repro.bench.shapes import _largest_component

    return _largest_component(mask)
