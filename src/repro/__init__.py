"""repro — model-based mask fracturing for mask cost reduction.

A from-scratch Python reproduction of Kagalwalla & Gupta, *Effective
Model-Based Mask Fracturing for Mask Cost Reduction*, DAC 2015.

Quickstart::

    from repro import FractureSpec, MaskShape, ModelBasedFracturer
    from repro.bench.shapes import ilt_suite

    spec = FractureSpec()                 # paper defaults: σ=6.25, γ=2, Δp=1
    shape = ilt_suite()[0]                # a synthetic ILT clip
    result = ModelBasedFracturer().fracture(shape, spec)
    print(result.shot_count, result.feasible)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.fracture.base import FractureResult, Fracturer
from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport, FractureSpec, check_solution
from repro.mask.cost import MaskCostModel
from repro.mask.shape import MaskShape

__version__ = "1.0.0"

__all__ = [
    "FailureReport",
    "FractureResult",
    "FractureSpec",
    "Fracturer",
    "MaskCostModel",
    "MaskShape",
    "ModelBasedFracturer",
    "Point",
    "Polygon",
    "Rect",
    "RefineConfig",
    "check_solution",
    "__version__",
]
