"""Command-line interface: ``mask-fracture`` / ``python -m repro``.

Sub-commands:

* ``fracture`` — fracture a clip file (or a built-in suite clip) with a
  chosen method, print the result and optionally write the solution
  JSON and an SVG rendering.
* ``bench`` — regenerate the paper's Table 2 or Table 3.
* ``generate`` — write the benchmark suites to clip files.
* ``figure`` — render one of the paper's Figures 1–5 as SVG.
* ``trace`` — inspect telemetry: ``summarize`` a recorded file,
  ``tail`` a live stream or a service job id (``--follow``), ``diff``
  two runs with a threshold-based regression verdict (nonzero exit on
  regression), ``export`` a correlated trace as chrome://tracing or
  speedscope JSON (:mod:`repro.obs.flame`).
* ``metrics`` — Prometheus exposition text: scrape a running daemon's
  ``metrics`` op, or render an offline telemetry file
  (:mod:`repro.obs.metrics`).
* ``top`` — live terminal dashboard over a running daemon: queue /
  worker / cache gauges folded with per-job tile progress from the
  job streams (:mod:`repro.obs.top`).
* ``serve`` — run the fracture-as-a-service daemon: a priority job
  queue over a Unix socket with warm shared caches and per-job live
  telemetry (:mod:`repro.service`).
* ``job`` — client of a running daemon: ``submit`` / ``status`` /
  ``result`` / ``cancel`` / ``list`` / ``stats`` / ``shutdown``.

Every run and job carries a trace context: ``--telemetry``/``--stream``
runs mint a trace id locally, and ``job submit`` mints one client-side
that the daemon persists on the job record — the same trace id stamps
every span, stream record, heartbeat and checkpoint line across worker
processes and daemon restarts, and ``trace export`` carries it into
the exported profile.  ``--profile [SECONDS]`` (with ``--telemetry``)
attaches a sampling profiler whose collapsed stacks land in the
telemetry manifest keyed by span path.

``fracture``, ``bench`` and ``mdp`` accept ``--telemetry PATH``: a
:class:`repro.obs.TelemetryRecorder` is installed for the run and the
manifest + span tree + metrics + convergence records are written to
``PATH`` (format by extension: ``.json`` / ``.jsonl`` / ``.csv``).
They also accept ``--stream PATH``: the same recorder additionally
emits every span/event/convergence record *live* into an append-only
JSONL stream (:mod:`repro.obs.stream`) that ``trace tail --follow``
renders while the run executes.  ``--heartbeat SECONDS`` (tiled
executor) turns on the worker heartbeat channel: per-worker liveness,
current tile and RSS/CPU samples, with stalled workers flagged before
the per-tile deadline fires.

With ``--window-nm`` the tiled executor additionally accepts the
fault-tolerance flags ``--tile-retries`` / ``--tile-timeout`` /
``--checkpoint DIR`` / ``--resume`` / ``--inject-fault`` (see
:mod:`repro.fracture.runtime`): an interrupted run re-invoked with
``--checkpoint DIR --resume`` replays completed tiles from the journal
bit-identically and re-executes only the rest.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import threading
from pathlib import Path

from repro import obs
from repro.fracture.base import Fracturer
from repro.kernels import (
    BackendUnavailable,
    available_backends,
    kernels_manifest,
    set_backend,
)
from repro.mask.constraints import FractureSpec
from repro.mask.io import load_clips, save_clips, save_solution
from repro.mask.shape import MaskShape
from repro.methods import make_fracturer, method_names


def _make_fracturer(name: str) -> Fracturer:
    try:
        return make_fracturer(name)
    except ValueError as error:
        raise SystemExit(str(error)) from None


@contextlib.contextmanager
def _graceful_signals():
    """Convert SIGTERM into KeyboardInterrupt for the command's duration.

    Long ``fracture`` / ``mdp`` runs then share one shutdown path for
    Ctrl-C and ``kill``: the exception unwinds through ``_telemetry``,
    which closes the live stream with ``status="interrupted"``, and
    past the checkpoint journal, whose completed-tile lines are already
    fsynced — so a re-run with ``--resume`` continues bit-identically.
    Restores the previous handler; a no-op off the main thread.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a whole number, got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1, got {parsed}"
        )
    return parsed


def _positive_float(value: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from None
    if parsed <= 0.0:
        raise argparse.ArgumentTypeError(
            f"must be positive, got {parsed}"
        )
    return parsed


def _nonnegative_float(value: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from None
    if parsed < 0.0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative, got {parsed}"
        )
    return parsed


def _fraction(value: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from None
    if not 0.0 < parsed <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a fraction in (0, 1], got {parsed}"
        )
    return parsed


def _runtime_policy(args: argparse.Namespace, batch_checkpoint: bool = False):
    """Build the tiled executor's fault-tolerance policy from CLI flags.

    ``batch_checkpoint=True`` (the ``mdp`` command) allows
    ``--checkpoint``/``--resume`` without ``--window-nm``: they then
    drive the cross-shape batch journal instead of (or in addition to)
    the per-tile journal.
    """
    from repro.fracture.runtime import FaultPlan, RetryPolicy, RuntimePolicy

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint DIR")
    tile_only = [
        ("--inject-fault", args.inject_fault),
        ("--tile-timeout", args.tile_timeout),
        ("--heartbeat", getattr(args, "heartbeat", None)),
    ]
    if not batch_checkpoint:
        tile_only += [
            ("--checkpoint", args.checkpoint),
            ("--resume", args.resume),
        ]
    for flag, value in tile_only:
        if value and not args.window_nm:
            raise SystemExit(
                f"{flag} applies to the tiled executor; add --window-nm"
            )
    if args.tile_retries < 0:
        raise SystemExit("--tile-retries must be 0 or more")
    fault_plan = None
    if args.inject_fault:
        try:
            fault_plan = FaultPlan.parse(args.inject_fault)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    return RuntimePolicy(
        retry=RetryPolicy(
            max_attempts=args.tile_retries + 1,
            tile_deadline_s=args.tile_timeout,
        ),
        fault_plan=fault_plan,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        heartbeat_s=getattr(args, "heartbeat", None),
    )


def _maybe_windowed(
    fracturer: Fracturer,
    args: argparse.Namespace,
    batch_checkpoint: bool = False,
) -> Fracturer:
    """Wrap the method in the tiled executor when ``--window-nm`` is set."""
    runtime = _runtime_policy(args, batch_checkpoint=batch_checkpoint)
    window_nm = getattr(args, "window_nm", None)
    if not window_nm:
        return fracturer
    from repro.fracture.windowed import WindowedFracturer

    return WindowedFracturer(
        fracturer,
        window_nm=window_nm,
        workers=getattr(args, "workers", 1) or 1,
        runtime=runtime,
    )


def _add_window_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--window-nm", type=_positive_float, metavar="NM",
        help="tile large shapes into NM-sized 2-D windows with halo "
             "overlap, fracture per tile and stitch the seams",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="process-pool width of the tile executor (with --window-nm)",
    )


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags of the tiled executor (require --window-nm)."""
    parser.add_argument(
        "--tile-retries", type=int, default=2, metavar="N",
        help="retries per tile before degrading to the partition "
             "baseline (default 2)",
    )
    parser.add_argument(
        "--tile-timeout", type=_positive_float, metavar="SECONDS",
        help="per-tile deadline; an overrunning tile is killed and "
             "retried (needs --workers > 1)",
    )
    parser.add_argument(
        "--checkpoint", metavar="DIR",
        help="journal completed tiles to DIR/<shape>.tiles.jsonl so an "
             "interrupted run can be resumed (mdp without --window-nm: "
             "journal completed shapes to DIR/batch.index.jsonl instead)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed tiles (or, for mdp batches, completed "
             "shapes) from the --checkpoint journal and re-execute only "
             "the rest (bit-identical result)",
    )
    parser.add_argument(
        "--inject-fault", action="append", metavar="TILE:ACTION[:TIMES]",
        help="deterministic failure injection for testing, e.g. "
             "'t0,0:crash' or 't1,2:raise:2' (actions: crash, hang, raise)",
    )
    parser.add_argument(
        "--heartbeat", type=_positive_float, metavar="SECONDS",
        help="worker heartbeat interval: pool workers publish liveness/"
             "tile/RSS/CPU and stalled workers are flagged before the "
             "tile deadline (needs --workers > 1)",
    )


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fracture-cache", metavar="DIR",
        help="content-addressed on-disk fracture cache: results keyed by "
             "canonical geometry + spec + method + window are reused "
             "across shapes, runs and the service daemon",
    )


def _fracture_cache(args: argparse.Namespace):
    """Build the on-disk fracture cache when ``--fracture-cache`` is set."""
    path = getattr(args, "fracture_cache", None)
    if not path:
        return None
    from repro.fracture.cache import FractureCache

    return FractureCache(max_entries=4096, persist_dir=path)


def _add_hierarchy_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--hierarchy", dest="hierarchy", action="store_true", default=True,
        help="GDSII input: fracture each unique cell geometry once and "
             "instantiate per placement (default)",
    )
    group.add_argument(
        "--flatten", dest="hierarchy", action="store_false",
        help="GDSII input: flatten all placements and fracture each "
             "polygon from scratch (reference path)",
    )


def _is_gds(path: str | None) -> bool:
    return bool(path) and Path(path).suffix.lower() in (".gds", ".gdsii")


def _run_layout(
    args: argparse.Namespace, spec: FractureSpec, fracturer: Fracturer
) -> int:
    """Fracture a hierarchical GDSII layout (``fracture``/``mdp`` path)."""
    from repro.mask.gds import GdsError, read_layout
    from repro.mask.hierarchy import fracture_layout
    from repro.mask.io import save_solution as _save

    clip_file = args.clip_file
    try:
        layout = read_layout(clip_file)
    except GdsError as error:
        raise SystemExit(f"{clip_file}: {error}") from None
    cache = _fracture_cache(args)
    if cache is not None:
        fracturer.cache = cache
    try:
        with _graceful_signals(), _telemetry(args, spec):
            report = fracture_layout(
                layout, fracturer, spec,
                cache=cache, hierarchy=args.hierarchy, verbose=False,
            )
    except KeyboardInterrupt:
        print("interrupted — telemetry closed, checkpoints flushed",
              file=sys.stderr)
        return 130
    print(report.summary())
    stats = report.stats
    print(
        f"cells={stats['cells']} instances={stats['polygon_instances']} "
        f"unique={stats['unique_geometries']} "
        f"cache_hits={stats['cache_hits']} "
        f"hit_rate={stats['hit_rate']:.1%}"
    )
    if getattr(args, "output", None):
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        _save(
            report.shots, spec,
            out / f"{layout.top or 'layout'}.solution.json",
            clip_name=layout.top,
            metadata={
                "method": fracturer.name,
                "hierarchy": {
                    k: v for k, v in stats.items() if k != "cache"
                },
            },
        )
        print(f"wrote {out / (layout.top or 'layout')}.solution.json")
    return 0 if report.all_feasible else 1


def _spec_from_args(args: argparse.Namespace) -> FractureSpec:
    return FractureSpec(
        sigma=args.sigma, gamma=args.gamma, pitch=args.pitch,
        rho=args.rho, lmin=args.lmin,
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sigma", type=float, default=6.25, help="proximity sigma (nm)")
    parser.add_argument("--gamma", type=float, default=2.0, help="CD tolerance (nm)")
    parser.add_argument("--pitch", type=float, default=1.0, help="pixel size (nm)")
    parser.add_argument("--rho", type=float, default=0.5, help="print threshold")
    parser.add_argument("--lmin", type=float, default=10.0, help="min shot size (nm)")


def _add_kernels_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernels", metavar="BACKEND",
        help="array/kernel backend: 'numpy' (vectorized, default), "
             "'scalar' (pure-Python oracle paths), 'cupy' (GPU, needs "
             "cupy installed); overrides $REPRO_KERNELS",
    )


def _apply_kernels(args: argparse.Namespace) -> None:
    """Install the ``--kernels`` backend before any kernel dispatch."""
    name = getattr(args, "kernels", None)
    if not name:
        return
    try:
        set_backend(name)
    except ValueError:
        raise SystemExit(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    except BackendUnavailable as error:
        raise SystemExit(str(error)) from None


def _add_telemetry_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="record spans/metrics/convergence and write them here "
             "(.json, .jsonl or .csv)",
    )
    parser.add_argument(
        "--stream", metavar="PATH",
        help="additionally stream telemetry records live to this "
             "append-only JSONL file (watch with 'trace tail --follow')",
    )
    parser.add_argument(
        "--profile", type=_positive_float, nargs="?", const=0.01,
        metavar="SECONDS",
        help="with --telemetry/--stream: sample the main thread's stack "
             "every SECONDS (default 0.01) and attach the aggregated "
             "samples to spans ('trace export' ships them alongside "
             "the flame graph)",
    )


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace, spec: FractureSpec):
    """Install a TelemetryRecorder for the command when requested.

    ``--telemetry`` writes the full payload after the run;
    ``--stream`` additionally (or on its own) emits records live.
    """
    path = getattr(args, "telemetry", None)
    stream_path = getattr(args, "stream", None)
    if not path and not stream_path:
        if getattr(args, "profile", None):
            raise SystemExit("--profile requires --telemetry or --stream")
        yield None
        return
    manifest = obs.run_manifest(
        spec=spec, argv=sys.argv[1:],
        extra={"kernels": kernels_manifest()},
    )
    # One trace context per invocation: minted here, stamped on the
    # manifest, every stream record, checkpoint line and worker-side
    # span — the offline twin of the service's submit-time trace.
    trace = obs.mint_trace()
    stream = (
        obs.TelemetryStream(stream_path, trace_id=trace.trace_id)
        if stream_path else None
    )
    recorder = obs.TelemetryRecorder(
        manifest=manifest, stream=stream, trace=trace
    )
    if stream is not None:
        stream.emit({"type": "manifest", **manifest})
    profiler = (
        obs.SamplingProfiler(recorder, interval_s=args.profile)
        if getattr(args, "profile", None) else None
    )
    status = "ok"
    try:
        with obs.recording(recorder):
            if profiler is not None:
                profiler.start()
            yield recorder
    except (KeyboardInterrupt, SystemExit):
        # Graceful shutdown (Ctrl-C or SIGTERM via _graceful_signals):
        # the stream records *why* it ends, and followers see a clean
        # terminal record instead of a torn tail.
        status = "interrupted"
        raise
    except BaseException:
        status = "error"
        raise
    finally:
        if profiler is not None:
            profiler.stop()
        if stream is not None:
            recorder.emit_metrics()
            stream.close(status)
            print(f"wrote telemetry stream to {stream_path}")
    if path:
        obs.write_telemetry(recorder.export(), path)
        print(f"wrote telemetry to {path} (trace {trace.trace_id})")


def _cmd_fracture(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    fracturer = _maybe_windowed(_make_fracturer(args.method), args)
    if _is_gds(args.clip_file):
        if args.svg or args.gds:
            raise SystemExit(
                "--svg/--gds are per-clip outputs; not supported for "
                "hierarchical GDSII input (use --output for the combined "
                "solution)"
            )
        if args.clip:
            raise SystemExit("--clip does not apply to GDSII layout input")
        return _run_layout(args, spec, fracturer)
    cache = _fracture_cache(args)
    if cache is not None:
        fracturer.cache = cache
    if args.clip_file:
        clips = load_clips(args.clip_file)
        if args.clip and args.clip not in clips:
            raise SystemExit(f"clip {args.clip!r} not in {args.clip_file}")
        selected = {args.clip: clips[args.clip]} if args.clip else clips
        shapes = [
            MaskShape.from_polygon(poly, pitch=spec.pitch,
                                   margin=spec.grid_margin, name=name)
            for name, poly in selected.items()
        ]
    else:
        from repro.bench.shapes import ilt_suite

        shapes = [s for s in ilt_suite(spec.pitch) if not args.clip or s.name == args.clip]
        if not shapes:
            raise SystemExit(f"no suite clip named {args.clip!r}")
    try:
        with _graceful_signals(), _telemetry(args, spec):
            _fracture_shapes(args, spec, fracturer, shapes)
    except KeyboardInterrupt:
        print("interrupted — telemetry closed, checkpoints flushed",
              file=sys.stderr)
        return 130
    return 0


def _fracture_shapes(
    args: argparse.Namespace,
    spec: FractureSpec,
    fracturer: Fracturer,
    shapes: list[MaskShape],
) -> None:
    for shape in shapes:
        result = fracturer.fracture(shape, spec)
        print(result.summary())
        if args.output:
            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            save_solution(
                result.shots, spec, out / f"{shape.name}.solution.json",
                clip_name=shape.name,
                metadata={"method": result.method, "runtime_s": result.runtime_s},
            )
        if args.svg:
            from repro.viz.render import render_fracture

            out = Path(args.svg)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{shape.name}.svg").write_text(
                render_fracture(shape, result.shots)
            )
        if args.gds:
            from repro.mask.gds import write_solution_gds

            out = Path(args.gds)
            out.mkdir(parents=True, exist_ok=True)
            write_solution_gds(
                shape.polygon, result.shots, out / f"{shape.name}.gds",
                cell_name=shape.name or "CLIP",
            )


def _cmd_verify(args: argparse.Namespace) -> int:
    """Re-check a stored solution against its clip, independently."""
    from repro.mask.constraints import check_solution
    from repro.mask.io import load_solution

    shots, spec, metadata = load_solution(args.solution)
    if args.clip_file:
        clips = load_clips(args.clip_file)
        name = args.clip or next(iter(clips))
        if name not in clips:
            raise SystemExit(f"clip {name!r} not in {args.clip_file}")
        shape = MaskShape.from_polygon(
            clips[name], pitch=spec.pitch, margin=spec.grid_margin, name=name
        )
    else:
        from repro.bench.shapes import ilt_suite

        name = args.clip or metadata.get("clip", "")
        matches = [s for s in ilt_suite(spec.pitch) if s.name == (args.clip or name)]
        if not matches:
            raise SystemExit(
                f"no suite clip named {args.clip!r}; pass --clip-file for "
                "custom clips"
            )
        shape = matches[0]
    report = check_solution(shots, shape, spec)
    status = "CD-clean" if report.feasible else (
        f"{report.total_failing} failing pixels "
        f"({report.count_on} under, {report.count_off} over), "
        f"{report.undersize_shots} undersize shots"
    )
    print(f"{shape.name}: {len(shots)} shots — {status}")
    return 0 if report.feasible else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import run_suite
    from repro.bench.shapes import agb_suite, ilt_suite, rgb_suite
    from repro.bench.tables import format_table2, format_table3

    spec = _spec_from_args(args)
    methods = [_make_fracturer(name) for name in args.methods.split(",")]
    with _telemetry(args, spec) as recorder:
        if args.table == 2:
            suite = run_suite(
                ilt_suite(spec.pitch), methods, spec,
                compute_bounds=True, verbose=not args.quiet,
            )
            print(format_table2(suite))
        else:
            shapes = agb_suite(spec, spec.pitch) + rgb_suite(spec, spec.pitch)
            suite = run_suite(shapes, methods, spec, verbose=not args.quiet)
            print(format_table3(suite))
        if recorder is not None:
            # Per-clip phase breakdown rides along with the paper table.
            print()
            print("Per-clip phase breakdown (wall seconds):")
            print(obs.format_clip_breakdown(recorder.export()))
    return 0


def _cmd_mdp(args: argparse.Namespace) -> int:
    """Batch fracture a clip file (optionally in parallel processes)."""
    from repro.mask.mdp import MdpPipeline

    spec = _spec_from_args(args)
    fracturer = _maybe_windowed(
        _make_fracturer(args.method), args, batch_checkpoint=True
    )
    if _is_gds(args.clip_file):
        if args.baseline:
            raise SystemExit(
                "--baseline is not supported for hierarchical GDSII input"
            )
        if args.checkpoint and not args.window_nm:
            raise SystemExit(
                "the --checkpoint batch journal applies to clip JSON "
                "batches; use --fracture-cache for resumable GDSII "
                "layout runs"
            )
        return _run_layout(args, spec, fracturer)
    cache = _fracture_cache(args)
    if cache is not None:
        fracturer.cache = cache
    clips = load_clips(args.clip_file)
    shapes = [
        MaskShape.from_polygon(poly, pitch=spec.pitch,
                               margin=spec.grid_margin, name=name)
        for name, poly in clips.items()
    ]
    pipeline = MdpPipeline(fracturer, spec)
    # With --window-nm the worker pool lives inside the tile executor
    # (parallelism across tiles of each large shape); without it, the
    # pool parallelizes across shapes as before.
    batch_workers = 1 if args.window_nm else args.workers
    # Without --window-nm, --checkpoint drives the cross-shape batch
    # journal instead of per-tile checkpoints: finished shapes are
    # indexed by canonical fingerprint and --resume replays them.
    journal = None
    if args.checkpoint and not args.window_nm:
        journal = Path(args.checkpoint) / "batch.index.jsonl"
    try:
        with _graceful_signals(), _telemetry(args, spec):
            report = pipeline.run(
                shapes, output_dir=args.output, workers=batch_workers,
                verbose=True, journal=journal,
                resume=args.resume if journal is not None else False,
            )
    except KeyboardInterrupt:
        print("interrupted — telemetry closed, checkpoints flushed",
              file=sys.stderr)
        return 130
    print(
        f"batch: {report.total_shots} shots over {len(report.results)} shapes, "
        f"{report.feasible_count} feasible"
    )
    if args.baseline:
        baseline = MdpPipeline(_make_fracturer(args.baseline), spec).run(shapes)
        saving = pipeline.projected_saving(baseline, report)
        print(
            f"vs {args.baseline}: {saving['shot_reduction']:.1%} fewer shots "
            f"≈ {saving['mask_cost_saving_fraction']:.1%} mask cost "
            f"(${saving['mask_set_saving_usd']:,.0f}/mask set)"
        )
    return 0 if report.all_feasible else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bench.shapes import agb_suite, ilt_suite, rgb_suite

    spec = _spec_from_args(args)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    ilt = {s.name: s.polygon for s in ilt_suite(spec.pitch)}
    save_clips(ilt, out / "ilt_suite.clips.json")
    known = {
        ko.shape.name: ko.shape.polygon
        for ko in agb_suite(spec, spec.pitch) + rgb_suite(spec, spec.pitch)
    }
    save_clips(known, out / "known_optimal.clips.json")
    print(f"wrote {len(ilt)} ILT clips and {len(known)} known-optimal clips to {out}")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Render a per-phase breakdown of a recorded telemetry file."""
    try:
        payload = obs.load_telemetry(args.path)
    except FileNotFoundError:
        raise SystemExit(f"no telemetry file at {args.path!r}") from None
    except ValueError as error:
        raise SystemExit(str(error)) from None
    print(obs.format_summary(payload))
    if args.clips:
        print()
        print("Per-clip phase breakdown (wall seconds):")
        print(obs.format_clip_breakdown(payload))
    return 0


def _record_matches(record: dict, filters: list[str]) -> bool:
    """Substring match of any filter against the record type/event name."""
    text = f"{record.get('type', '')} {record.get('name', '')}"
    return any(needle in text for needle in filters)


def _cmd_trace_tail(args: argparse.Namespace) -> int:
    """Render a telemetry stream line by line, optionally following it.

    ``path`` may also be a service job id (``job-xxxxxxxx``): it
    resolves to the job's live stream inside the daemon state directory
    (``--state-dir``), so ``trace tail job-ab12cd34 --follow`` watches
    a daemon job exactly like a ``--stream`` file.
    """
    from repro.service.jobs import resolve_stream_path

    path = resolve_stream_path(args.path, args.state_dir)
    formatter = obs.StreamFormatter()
    filters = args.filter or []
    try:
        for record in obs.follow_stream(
            path, follow=args.follow, timeout_s=args.timeout
        ):
            if filters and not _record_matches(record, filters):
                continue
            print(formatter.format(record), flush=True)
    except FileNotFoundError:
        raise SystemExit(f"no telemetry stream at {str(path)!r}") from None
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; silence the interpreter's
        # shutdown flush of the dead stdout and exit cleanly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Render a correlated trace as a chrome-trace / speedscope file.

    ``path`` accepts the same inputs as ``trace tail``: a ``--telemetry``
    payload (.json), a ``--stream`` file (.jsonl) or a service job id
    (resolved against ``--state-dir``).  Chrome output loads in
    ``chrome://tracing`` / Perfetto; speedscope in speedscope.app.
    """
    from repro.service.jobs import resolve_stream_path

    path = resolve_stream_path(args.path, args.state_dir)
    if not path.exists():
        raise SystemExit(f"no telemetry file at {str(path)!r}")
    if path.suffix.lower() == ".jsonl":
        records = obs.read_stream(path)
        if args.format == "chrome":
            # Stream records carry real wall-clock timestamps: export
            # them directly, keeping restart boundaries and heartbeats.
            doc = obs.chrome_from_records(records)
        else:
            if records and records[0].get("type") == "stream_header":
                payload = obs.stream_to_payload(records)
            else:
                payload = obs.records_to_payload(records)
            doc = obs.speedscope_from_payload(payload)
    else:
        try:
            payload = obs.load_telemetry(path)
        except ValueError as error:
            raise SystemExit(str(error)) from None
        doc = (
            obs.chrome_from_payload(payload)
            if args.format == "chrome"
            else obs.speedscope_from_payload(payload)
        )
    suffix = ".chrome.json" if args.format == "chrome" else ".speedscope.json"
    out = Path(args.out) if args.out else path.with_suffix(suffix)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1))
    if args.format == "chrome":
        summary = obs.validate_chrome_trace(doc)
        print(
            f"wrote {out} ({summary['spans']} spans, "
            f"{summary['instants']} instants, {summary['lanes']} lanes"
            + (f", trace {summary['trace_id']}" if summary['trace_id']
               else "")
            + ")"
        )
    else:
        print(f"wrote {out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Prometheus exposition text: scrape a daemon or render a file."""
    if args.path:
        p = Path(args.path)
        if not p.exists():
            raise SystemExit(f"no telemetry file at {args.path!r}")
        if p.suffix.lower() == ".jsonl":
            records = obs.read_stream(p)
            if records and records[0].get("type") == "stream_header":
                payload = obs.stream_to_payload(records)
            else:
                payload = obs.records_to_payload(records)
        else:
            try:
                payload = obs.load_telemetry(p)
            except ValueError as error:
                raise SystemExit(str(error)) from None
        print(obs.render_prometheus(obs.payload_samples(payload)), end="")
        return 0

    def run(client) -> int:
        print(client.metrics(), end="")
        return 0

    return _run_client_op(args, run)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over the daemon: stats + job streams, refreshing."""
    import time as _time

    from repro.service.client import ServiceError
    from repro.service.jobs import JobPaths

    client = _service_client(args)

    def frame() -> str:
        stats = client.stats()
        jobs = client.list_jobs()
        progress = {}
        for job in jobs:
            if job.get("state") not in ("running", "queued"):
                continue
            stream = JobPaths.for_job(args.state_dir, job["job_id"]).stream
            records = obs.tail_records(stream)
            if records:
                progress[job["job_id"]] = obs.gather_job_progress(records)
        return obs.render_top(stats, jobs, progress)

    try:
        if args.once:
            print(frame())
            return 0
        while True:
            text = frame()
            # Clear + home, then one frame; plain ANSI keeps this
            # dependency-free and scrollback-friendly under watch(1).
            sys.stdout.write("\x1b[H\x1b[2J" + text + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except ServiceError as error:
        raise SystemExit(f"service error [{error.code}]: {error}") from None
    except KeyboardInterrupt:
        return 130


def _load_diffable(path: str) -> dict:
    """Load one ``trace diff`` input: payload, stream or benchmark JSON."""
    p = Path(path)
    if not p.exists():
        raise SystemExit(f"no such file: {path!r}")
    if p.suffix.lower() == ".jsonl":
        records = obs.read_stream(p)
        if records and records[0].get("type") == "stream_header":
            return obs.stream_to_payload(records)
        return obs.records_to_payload(records)
    try:
        return json.loads(p.read_text())
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not valid JSON ({error})") from None


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    """Compare two runs; exit nonzero when a metric regresses."""
    base = _load_diffable(args.base)
    head = _load_diffable(args.head)
    thresholds = obs.DiffThresholds(
        time_rel=args.time_rel,
        time_abs_floor_s=args.time_abs,
        count_rel=args.count_rel,
    )
    result = obs.diff_payloads(base, head, thresholds)
    print(obs.format_diff(
        result,
        base_label=Path(args.base).name,
        head_label=Path(args.head).name,
        show_all=args.all,
    ))
    return 1 if result.regressed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the fracture-as-a-service daemon until SIGTERM/SIGINT."""
    import asyncio

    from repro.service.caches import WarmCaches
    from repro.service.guard import ServiceLimits
    from repro.service.server import FractureService

    limits = ServiceLimits()
    overrides = {
        "max_clips": args.max_clips,
        "max_clip_vertices": args.max_clip_vertices,
        "max_total_vertices": args.max_total_vertices,
        "read_deadline_s": args.read_deadline,
        "idle_timeout_s": args.idle_timeout,
        "rate_per_s": args.rate_limit,
        "rate_burst": args.rate_burst,
        "queue_share": args.queue_share,
        "job_wall_budget_s": args.job_wall_budget,
        "job_rss_budget_bytes": (
            None if args.job_rss_budget_mb is None
            else int(args.job_rss_budget_mb * 1024 * 1024)
        ),
        "watchdog_interval_s": args.watchdog_interval,
        "disk_floor_bytes": (
            None if args.disk_floor_mb is None
            else int(args.disk_floor_mb * 1024 * 1024)
        ),
    }
    for name, value in overrides.items():
        if value is not None:
            setattr(limits, name, value)
    limits.degrade_over_budget = bool(args.degrade_over_budget)
    try:
        limits.validated()
    except ValueError as error:
        raise SystemExit(f"invalid --limits: {error}") from None
    caches = None
    if getattr(args, "fracture_cache", None):
        caches = WarmCaches(
            persist_dir=args.fracture_cache,
            min_free_bytes=limits.disk_floor_bytes,
        )
    service = FractureService(
        args.state_dir,
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        caches=caches,
        limits=limits,
    )

    async def _serve() -> None:
        await service.start()
        recovered = service.recovered
        print(
            f"fracture daemon pid={os.getpid()} "
            f"listening on {service.socket_path} "
            f"(workers={service.workers}, "
            f"recovered {recovered['queued']} queued / "
            f"{recovered['resumed']} resumed)",
            flush=True,
        )
        await service.run_until_shutdown()

    try:
        asyncio.run(_serve())
    except RuntimeError as error:
        raise SystemExit(str(error)) from None
    print("fracture daemon stopped", flush=True)
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.state_dir)


def _job_clips(args: argparse.Namespace) -> dict[str, list[list[float]]]:
    """Clip geometry for a submission: a clip file or built-in suite clips."""
    if args.clip_file:
        clips = load_clips(args.clip_file)
        if args.clip and args.clip not in clips:
            raise SystemExit(f"clip {args.clip!r} not in {args.clip_file}")
        selected = {args.clip: clips[args.clip]} if args.clip else clips
        return {
            name: [[p.x, p.y] for p in poly.vertices]
            for name, poly in selected.items()
        }
    from repro.bench.shapes import ilt_suite

    shapes = [
        s for s in ilt_suite(args.pitch)
        if not args.clip or s.name == args.clip
    ]
    if not shapes:
        raise SystemExit(f"no suite clip named {args.clip!r}")
    return {
        s.name: [[p.x, p.y] for p in s.polygon.vertices] for s in shapes
    }


def _run_client_op(args: argparse.Namespace, op) -> int:
    """Run one client operation with uniform daemon-error reporting."""
    from repro.service.client import ServiceError

    try:
        return op(_service_client(args))
    except ServiceError as error:
        raise SystemExit(f"service error [{error.code}]: {error}") from None


def _cmd_job_submit(args: argparse.Namespace) -> int:
    clips = _job_clips(args)
    spec = {
        "sigma": args.sigma, "gamma": args.gamma, "pitch": args.pitch,
        "rho": args.rho, "lmin": args.lmin,
    }

    def run(client) -> int:
        job_id = client.submit(
            clips,
            name=args.name,
            method=args.method,
            priority=args.priority,
            window_nm=args.window_nm,
            tile_workers=args.workers,
            spec=spec,
            use_result_cache=not args.no_cache,
            checkpoint=not args.no_checkpoint,
        )
        print(job_id)
        print(
            f"  {len(clips)} clips, method={args.method}, "
            f"priority={args.priority}; "
            f"watch: trace tail {job_id} --follow "
            f"--state-dir {args.state_dir}",
            file=sys.stderr,
        )
        if args.wait:
            job = client.wait(job_id, timeout_s=args.wait)
            print(
                f"  {job['state']}: {job.get('summary', {})}",
                file=sys.stderr,
            )
            return 0 if job["state"] == "done" else 1
        return 0

    return _run_client_op(args, run)


def _cmd_job_status(args: argparse.Namespace) -> int:
    def run(client) -> int:
        job = client.status(args.job_id)
        print(json.dumps(job, indent=1))
        return 0

    return _run_client_op(args, run)


def _cmd_job_result(args: argparse.Namespace) -> int:
    def run(client) -> int:
        result = client.result(args.job_id)
        if args.output:
            from repro.mask.io import rect_from_list, spec_from_dict

            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            spec = spec_from_dict(result["spec"])
            for name, clip in result["clips"].items():
                save_solution(
                    [rect_from_list(s) for s in clip["shots"]],
                    spec, out / f"{name}.solution.json", clip_name=name,
                    metadata={
                        "method": result["method"],
                        "job_id": result["job_id"],
                        "cached": clip["cached"],
                    },
                )
            print(f"wrote {len(result['clips'])} solutions to {out}",
                  file=sys.stderr)
        if args.json:
            print(json.dumps(result, indent=1))
        else:
            totals = result["totals"]
            cached = totals["cached_clips"]
            print(
                f"{result['job_id']}: {totals['clips']} clips, "
                f"{totals['shots']} shots, "
                f"feasible={totals['feasible']}"
                + (f", {cached} from warm cache" if cached else "")
            )
        return 0

    return _run_client_op(args, run)


def _cmd_job_cancel(args: argparse.Namespace) -> int:
    def run(client) -> int:
        response = client.cancel(args.job_id)
        state = response["state"]
        suffix = " (stop requested)" if response.get("cancelling") else ""
        print(f"{args.job_id}: {state}{suffix}")
        return 0

    return _run_client_op(args, run)


def _cmd_job_list(args: argparse.Namespace) -> int:
    def run(client) -> int:
        jobs = client.list_jobs()
        if args.json:
            print(json.dumps(jobs, indent=1))
            return 0
        for job in jobs:
            summary = job.get("summary") or {}
            shots = summary.get("shots", "-")
            print(
                f"{job['job_id']}  {job['state']:<9s}  "
                f"prio={job['priority']:<3d} "
                f"clips={len(job['spec'].get('clip_names', []))} "
                f"shots={shots}"
            )
        return 0

    return _run_client_op(args, run)


def _cmd_job_stats(args: argparse.Namespace) -> int:
    def run(client) -> int:
        print(json.dumps(client.stats(), indent=1))
        return 0

    return _run_client_op(args, run)


def _cmd_job_shutdown(args: argparse.Namespace) -> int:
    def run(client) -> int:
        response = client.shutdown(args.mode)
        print(
            f"shutdown requested (mode={response['mode']}, "
            f"{response['running']} running)"
        )
        return 0

    return _run_client_op(args, run)


def _add_state_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--state-dir", default=".repro-service", metavar="DIR",
        help="daemon state directory (default .repro-service)",
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.bench.figures import render_figure

    spec = _spec_from_args(args)
    svg = render_figure(args.number, spec)
    out = Path(args.output or f"figure{args.number}.svg")
    out.write_text(svg)
    print(f"wrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mask-fracture",
        description="Model-based mask fracturing (DAC 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fracture = sub.add_parser("fracture", help="fracture clips")
    p_fracture.add_argument("--method", default="ours", help=str(method_names()))
    p_fracture.add_argument(
        "--clip-file",
        help="clip JSON, or a hierarchical GDSII layout (.gds) "
             "(default: built-in ILT suite)",
    )
    p_fracture.add_argument("--clip", help="single clip name")
    p_fracture.add_argument("--output", help="directory for solution JSON files")
    p_fracture.add_argument("--svg", help="directory for SVG renderings")
    p_fracture.add_argument("--gds", help="directory for GDSII solution files")
    _add_window_arguments(p_fracture)
    _add_runtime_arguments(p_fracture)
    _add_cache_argument(p_fracture)
    _add_hierarchy_arguments(p_fracture)
    _add_spec_arguments(p_fracture)
    _add_telemetry_argument(p_fracture)
    _add_kernels_argument(p_fracture)
    p_fracture.set_defaults(func=_cmd_fracture)

    p_verify = sub.add_parser("verify", help="re-check a stored solution")
    p_verify.add_argument("solution", help="solution JSON file")
    p_verify.add_argument("--clip-file", help="clip JSON (default: built-in suite)")
    p_verify.add_argument("--clip", help="clip name inside the clip file/suite")
    p_verify.set_defaults(func=_cmd_verify)

    p_bench = sub.add_parser("bench", help="regenerate a paper table")
    p_bench.add_argument("--table", type=int, choices=(2, 3), required=True)
    p_bench.add_argument(
        "--methods", default="gsc,mp,proto-eda,ours",
        help="comma-separated method list",
    )
    p_bench.add_argument("--quiet", action="store_true")
    _add_spec_arguments(p_bench)
    _add_telemetry_argument(p_bench)
    _add_kernels_argument(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_mdp = sub.add_parser("mdp", help="batch fracture a clip file")
    p_mdp.add_argument(
        "clip_file", help="clip JSON file, or a hierarchical GDSII layout (.gds)"
    )
    p_mdp.add_argument("--method", default="ours")
    p_mdp.add_argument("--baseline", help="compare economics against this method")
    p_mdp.add_argument(
        "--workers", type=_positive_int, default=1,
        help="process-pool width: across shapes, or across tiles of "
             "each shape when --window-nm is set",
    )
    p_mdp.add_argument(
        "--window-nm", type=_positive_float, metavar="NM",
        help="tile large shapes into NM-sized 2-D windows (tiled "
             "executor; --workers then parallelizes tiles)",
    )
    _add_runtime_arguments(p_mdp)
    _add_cache_argument(p_mdp)
    _add_hierarchy_arguments(p_mdp)
    p_mdp.add_argument("--output", help="directory for solution JSON files")
    _add_spec_arguments(p_mdp)
    _add_telemetry_argument(p_mdp)
    _add_kernels_argument(p_mdp)
    p_mdp.set_defaults(func=_cmd_mdp)

    p_trace = sub.add_parser("trace", help="inspect a telemetry file")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="per-phase time breakdown of a --telemetry file"
    )
    p_summarize.add_argument("path", help="telemetry file (.json or .jsonl)")
    p_summarize.add_argument(
        "--clips", action="store_true",
        help="also print the per-clip phase table (bench telemetry)",
    )
    p_summarize.set_defaults(func=_cmd_trace_summarize)
    p_tail = trace_sub.add_parser(
        "tail", help="render a --stream telemetry file line by line"
    )
    p_tail.add_argument(
        "path",
        help="telemetry stream (.jsonl) or a service job id (job-xxxxxxxx)",
    )
    _add_state_dir_argument(p_tail)
    p_tail.add_argument(
        "--follow", "-f", action="store_true",
        help="keep reading appended records until the stream ends",
    )
    p_tail.add_argument(
        "--filter", action="append", metavar="SUBSTRING",
        help="only show records whose type/event name contains SUBSTRING "
             "(repeatable; e.g. --filter progress --filter stalled)",
    )
    p_tail.add_argument(
        "--timeout", type=_positive_float, metavar="SECONDS",
        help="with --follow, stop waiting after SECONDS of run time",
    )
    p_tail.set_defaults(func=_cmd_trace_tail)
    p_diff = trace_sub.add_parser(
        "diff", help="compare two telemetry/benchmark runs for regressions"
    )
    p_diff.add_argument("base", help="baseline file (.json/.jsonl)")
    p_diff.add_argument("head", help="candidate file (.json/.jsonl)")
    p_diff.add_argument(
        "--time-rel", type=_positive_float, default=0.30, metavar="FRAC",
        help="relative wall-time increase that gates (default 0.30)",
    )
    p_diff.add_argument(
        "--time-abs", type=_positive_float, default=0.05, metavar="SECONDS",
        help="absolute wall-time floor below which deltas never gate "
             "(default 0.05)",
    )
    p_diff.add_argument(
        "--count-rel", type=_positive_float, default=0.01, metavar="FRAC",
        help="relative increase gating quality counts like shot totals "
             "(default 0.01)",
    )
    p_diff.add_argument(
        "--all", action="store_true",
        help="list every shared metric, not just the changed ones",
    )
    p_diff.set_defaults(func=_cmd_trace_diff)
    p_export = trace_sub.add_parser(
        "export",
        help="export a trace as chrome://tracing or speedscope JSON",
    )
    p_export.add_argument(
        "path",
        help="telemetry file (.json/.jsonl) or a service job id "
             "(job-xxxxxxxx)",
    )
    _add_state_dir_argument(p_export)
    p_export.add_argument(
        "--format", choices=("chrome", "speedscope"), default="chrome",
        help="output flavour (default chrome)",
    )
    p_export.add_argument(
        "--out", metavar="PATH",
        help="output file (default: input with .chrome.json / "
             ".speedscope.json suffix)",
    )
    p_export.set_defaults(func=_cmd_trace_export)

    p_metrics = sub.add_parser(
        "metrics",
        help="Prometheus exposition text from a daemon or telemetry file",
    )
    p_metrics.add_argument(
        "path", nargs="?",
        help="telemetry file (.json/.jsonl); omit to scrape a running "
             "daemon's metrics op",
    )
    _add_state_dir_argument(p_metrics)
    p_metrics.set_defaults(func=_cmd_metrics)

    p_top = sub.add_parser(
        "top", help="live dashboard for a running fracture daemon"
    )
    _add_state_dir_argument(p_top)
    p_top.add_argument(
        "--interval", type=_positive_float, default=2.0, metavar="SECONDS",
        help="refresh period (default 2.0)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_serve = sub.add_parser(
        "serve", help="run the fracture job daemon (fracture-as-a-service)"
    )
    _add_state_dir_argument(p_serve)
    p_serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="concurrent job slots (default 2)",
    )
    p_serve.add_argument(
        "--queue-depth", type=_positive_int, default=64,
        help="bounded queue depth; submissions beyond it are rejected "
             "with a queue_full error (default 64)",
    )
    limits_group = p_serve.add_argument_group(
        "limits",
        "admission / budget knobs of the guard layer; nonsense values "
        "(negative budgets, zero timeouts) are rejected here, not "
        "surfaced as daemon misbehaviour",
    )
    limits_group.add_argument(
        "--max-clips", type=_positive_int, default=None, metavar="N",
        help="reject submissions with more clips than N",
    )
    limits_group.add_argument(
        "--max-clip-vertices", type=_positive_int, default=None, metavar="N",
        help="reject submissions where any clip has more than N vertices",
    )
    limits_group.add_argument(
        "--max-total-vertices", type=_positive_int, default=None, metavar="N",
        help="reject submissions totalling more than N vertices",
    )
    limits_group.add_argument(
        "--read-deadline", type=_positive_float, default=None,
        metavar="SECONDS",
        help="close connections that stall mid-request for this long "
             "(default 30)",
    )
    limits_group.add_argument(
        "--idle-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="close connections idle between requests for this long "
             "(default 300)",
    )
    limits_group.add_argument(
        "--rate-limit", type=_positive_float, default=None, metavar="PER_S",
        help="per-client submit rate (token bucket); off by default",
    )
    limits_group.add_argument(
        "--rate-burst", type=_positive_int, default=None, metavar="N",
        help="token-bucket burst capacity (default 20)",
    )
    limits_group.add_argument(
        "--queue-share", type=_fraction, default=None, metavar="FRAC",
        help="max fraction of the queue one client may hold (fair share)",
    )
    limits_group.add_argument(
        "--job-wall-budget", type=_positive_float, default=None,
        metavar="SECONDS",
        help="cancel jobs running longer than this (typed over_budget "
             "failure)",
    )
    limits_group.add_argument(
        "--job-rss-budget-mb", type=_positive_float, default=None,
        metavar="MB",
        help="cancel jobs whose worker RSS exceeds this (heartbeat-based)",
    )
    limits_group.add_argument(
        "--watchdog-interval", type=_positive_float, default=None,
        metavar="SECONDS",
        help="budget enforcement pass interval (default 1)",
    )
    limits_group.add_argument(
        "--degrade-over-budget", action="store_true",
        help="requeue over-budget jobs once on the partition baseline "
             "instead of failing them",
    )
    limits_group.add_argument(
        "--disk-floor-mb", type=_nonnegative_float, default=None,
        metavar="MB",
        help="refuse checkpoint/result/cache writes (typed disk_full "
             "failure, LRU cache eviction) when free space drops below "
             "this",
    )
    _add_cache_argument(p_serve)
    _add_kernels_argument(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_job = sub.add_parser("job", help="talk to a running fracture daemon")
    job_sub = p_job.add_subparsers(dest="job_command", required=True)

    p_submit = job_sub.add_parser("submit", help="enqueue a fracture job")
    _add_state_dir_argument(p_submit)
    p_submit.add_argument("--clip-file", help="clip JSON (default: built-in ILT suite)")
    p_submit.add_argument("--clip", help="single clip name")
    p_submit.add_argument("--name", default="", help="free-form job label")
    p_submit.add_argument("--method", default="ours", help=str(method_names()))
    p_submit.add_argument(
        "--priority", type=int, default=0,
        help="higher runs first; FIFO within a priority (default 0)",
    )
    p_submit.add_argument(
        "--window-nm", type=_positive_float, metavar="NM",
        help="tile large shapes into NM-sized windows (tiled executor)",
    )
    p_submit.add_argument(
        "--workers", type=_positive_int, default=1,
        help="tile-executor pool width inside the job (with --window-nm)",
    )
    p_submit.add_argument(
        "--no-cache", action="store_true",
        help="bypass the daemon's content-addressed result cache",
    )
    p_submit.add_argument(
        "--no-checkpoint", action="store_true",
        help="skip the per-job tile checkpoint journal",
    )
    p_submit.add_argument(
        "--wait", type=_positive_float, nargs="?", const=3600.0,
        metavar="SECONDS",
        help="block until the job settles (optionally capped at SECONDS)",
    )
    _add_spec_arguments(p_submit)
    p_submit.set_defaults(func=_cmd_job_submit)

    p_status = job_sub.add_parser("status", help="one job's full record")
    _add_state_dir_argument(p_status)
    p_status.add_argument("job_id")
    p_status.set_defaults(func=_cmd_job_status)

    p_result = job_sub.add_parser("result", help="fetch a finished job")
    _add_state_dir_argument(p_result)
    p_result.add_argument("job_id")
    p_result.add_argument("--json", action="store_true", help="full payload")
    p_result.add_argument("--output", help="write per-clip solution JSON here")
    p_result.set_defaults(func=_cmd_job_result)

    p_cancel = job_sub.add_parser("cancel", help="cancel a queued/running job")
    _add_state_dir_argument(p_cancel)
    p_cancel.add_argument("job_id")
    p_cancel.set_defaults(func=_cmd_job_cancel)

    p_list = job_sub.add_parser("list", help="all known jobs, newest first")
    _add_state_dir_argument(p_list)
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=_cmd_job_list)

    p_stats = job_sub.add_parser(
        "stats", help="daemon gauges: queue, workers, warm caches"
    )
    _add_state_dir_argument(p_stats)
    p_stats.set_defaults(func=_cmd_job_stats)

    p_shutdown = job_sub.add_parser("shutdown", help="stop the daemon")
    _add_state_dir_argument(p_shutdown)
    p_shutdown.add_argument(
        "--mode", choices=("drain", "interrupt"), default="drain",
        help="drain finishes running jobs; interrupt checkpoints and "
             "requeues them for the next daemon (default drain)",
    )
    p_shutdown.set_defaults(func=_cmd_job_shutdown)

    p_generate = sub.add_parser("generate", help="write benchmark clip files")
    p_generate.add_argument("--output", default="clips")
    _add_spec_arguments(p_generate)
    p_generate.set_defaults(func=_cmd_generate)

    p_figure = sub.add_parser("figure", help="render a paper figure as SVG")
    p_figure.add_argument("number", type=int, choices=range(1, 6))
    p_figure.add_argument("--output")
    _add_spec_arguments(p_figure)
    p_figure.set_defaults(func=_cmd_figure)
    return parser


def main(argv: list[str] | None = None) -> int:
    # The CLI is the interactive surface: opt into the library's (by
    # default silent) logging so progress lands on stderr.
    obs.enable_console_logging()
    args = build_parser().parse_args(argv)
    _apply_kernels(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
