"""Minimum rectangle partition of a hole-free rectilinear polygon.

This is the classical "conventional mask fracturing" primitive (paper §1,
references [5]–[7]): partition the polygon into the fewest axis-parallel
rectangles.  We implement the textbook optimal construction:

1. find the reflex (concave) vertices;
2. enumerate axis-parallel *chords* — segments between two co-linear
   reflex vertices whose interior lies inside the polygon;
3. pick a maximum non-crossing chord subset = maximum independent set of
   the bipartite horizontal/vertical chord intersection graph (König's
   theorem via Hopcroft–Karp matching, ``repro.graphlib.matching``);
4. resolve the remaining reflex vertices by extending one incident edge
   until it hits the boundary or a previously drawn segment;
5. read the rectangles off a coordinate-compressed cell decomposition.

For a polygon with ``n`` vertices and ``h`` chords the rectangle count is
``n/2 + h_max − chosen − 1`` in theory; we simply return the rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.graphlib.matching import hopcroft_karp, min_vertex_cover

_EPS = 1e-6


@dataclass(frozen=True, slots=True)
class _Segment:
    """Axis-parallel segment with sorted endpoints."""

    x1: float
    y1: float
    x2: float
    y2: float

    @property
    def horizontal(self) -> bool:
        return abs(self.y1 - self.y2) <= _EPS

    @classmethod
    def make(cls, a: Point, b: Point) -> "_Segment":
        if (a.x, a.y) <= (b.x, b.y):
            return cls(a.x, a.y, b.x, b.y)
        return cls(b.x, b.y, a.x, a.y)


def _reflex_vertices(polygon: Polygon) -> list[int]:
    verts = polygon.vertices
    n = len(verts)
    reflex = []
    for i in range(n):
        d_in = verts[i] - verts[(i - 1) % n]
        d_out = verts[(i + 1) % n] - verts[i]
        if d_in.cross(d_out) < -_EPS:  # right turn on a CCW boundary
            reflex.append(i)
    return reflex


def _strictly_inside(polygon: Polygon, p: Point) -> bool:
    """Interior test robust to points lying on a collinear boundary edge."""
    eps = _EPS * 10.0
    return all(
        polygon.contains_point(Point(p.x + dx, p.y + dy))
        for dx, dy in ((eps, eps), (-eps, eps), (eps, -eps), (-eps, -eps))
    )


def _chord_is_interior(polygon: Polygon, a: Point, b: Point) -> bool:
    """True when the open segment a–b lies in the polygon interior.

    Sample the midpoints of all sub-intervals induced by vertex
    coordinates along the chord: on a rectilinear polygon the inside/
    outside status can only change at those coordinates.
    """
    if a.distance_to(b) <= _EPS:
        return False
    if abs(a.y - b.y) <= _EPS:  # horizontal
        coords = sorted(
            {a.x, b.x}
            | {v.x for v in polygon.vertices if min(a.x, b.x) < v.x < max(a.x, b.x)}
        )
        return all(
            _strictly_inside(polygon, Point((lo + hi) / 2.0, a.y))
            for lo, hi in zip(coords, coords[1:])
        )
    if abs(a.x - b.x) <= _EPS:  # vertical
        coords = sorted(
            {a.y, b.y}
            | {v.y for v in polygon.vertices if min(a.y, b.y) < v.y < max(a.y, b.y)}
        )
        return all(
            _strictly_inside(polygon, Point(a.x, (lo + hi) / 2.0))
            for lo, hi in zip(coords, coords[1:])
        )
    return False


def _segments_cross(h: _Segment, v: _Segment) -> bool:
    """Open-interior crossing test between a horizontal and vertical segment."""
    return (
        h.x1 - _EPS < v.x1 < h.x2 + _EPS and v.y1 - _EPS < h.y1 < v.y2 + _EPS
    )


def _find_chords(
    polygon: Polygon, reflex: list[int]
) -> tuple[list[tuple[_Segment, int, int]], list[tuple[_Segment, int, int]]]:
    verts = polygon.vertices
    horizontal: list[tuple[_Segment, int, int]] = []
    vertical: list[tuple[_Segment, int, int]] = []
    for idx, i in enumerate(reflex):
        for j in reflex[idx + 1 :]:
            a, b = verts[i], verts[j]
            if abs(a.y - b.y) <= _EPS and _chord_is_interior(polygon, a, b):
                horizontal.append((_Segment.make(a, b), i, j))
            elif abs(a.x - b.x) <= _EPS and _chord_is_interior(polygon, a, b):
                vertical.append((_Segment.make(a, b), i, j))
    return horizontal, vertical


def _select_chords(
    horizontal: list[tuple[_Segment, int, int]],
    vertical: list[tuple[_Segment, int, int]],
) -> list[tuple[_Segment, int, int]]:
    """Maximum non-crossing chord set via König's theorem."""
    adjacency = {
        h_idx: [
            v_idx
            for v_idx, (v_seg, _, _) in enumerate(vertical)
            if _segments_cross(h_seg, v_seg)
        ]
        for h_idx, (h_seg, _, _) in enumerate(horizontal)
    }
    matching = hopcroft_karp(adjacency, len(vertical))
    cover_left, cover_right = min_vertex_cover(adjacency, len(vertical), matching)
    chosen = [
        entry for idx, entry in enumerate(horizontal) if idx not in cover_left
    ]
    chosen += [entry for idx, entry in enumerate(vertical) if idx not in cover_right]
    return chosen


def _ray_from_reflex(
    polygon: Polygon, vertex_index: int, blockers: list[_Segment]
) -> _Segment | None:
    """Extend the incoming boundary edge through an unresolved reflex vertex."""
    verts = polygon.vertices
    v = verts[vertex_index]
    d = (v - verts[(vertex_index - 1) % len(verts)]).normalized()
    best_t: float | None = None
    candidates: list[_Segment] = blockers + [
        _Segment.make(a, b) for a, b in polygon.edges()
    ]
    for seg in candidates:
        if abs(d.y) <= _EPS:  # horizontal ray blocked by vertical segments
            if seg.horizontal:
                continue
            t = (seg.x1 - v.x) / d.x
            if t > _EPS and seg.y1 - _EPS <= v.y <= seg.y2 + _EPS:
                best_t = t if best_t is None else min(best_t, t)
        else:  # vertical ray blocked by horizontal segments
            if not seg.horizontal:
                continue
            t = (seg.y1 - v.y) / d.y
            if t > _EPS and seg.x1 - _EPS <= v.x <= seg.x2 + _EPS:
                best_t = t if best_t is None else min(best_t, t)
    if best_t is None:
        return None
    return _Segment.make(v, v + d * best_t)


def _extract_rectangles(
    polygon: Polygon, internal: list[_Segment]
) -> list[Rect]:
    """Cell decomposition → union-find merge → rectangle read-off."""
    xs = sorted({v.x for v in polygon.vertices})
    ys = sorted({v.y for v in polygon.vertices})
    for seg in internal:
        xs.extend((seg.x1, seg.x2))
        ys.extend((seg.y1, seg.y2))
    xs = sorted(set(xs))
    ys = sorted(set(ys))
    nx, ny = len(xs) - 1, len(ys) - 1
    inside = [
        [
            polygon.contains_point(
                Point((xs[i] + xs[i + 1]) / 2.0, (ys[j] + ys[j + 1]) / 2.0)
            )
            for i in range(nx)
        ]
        for j in range(ny)
    ]

    def blocked_vertical_edge(x: float, y_lo: float, y_hi: float) -> bool:
        mid = (y_lo + y_hi) / 2.0
        return any(
            not seg.horizontal
            and abs(seg.x1 - x) <= _EPS
            and seg.y1 - _EPS <= mid <= seg.y2 + _EPS
            for seg in internal
        )

    def blocked_horizontal_edge(y: float, x_lo: float, x_hi: float) -> bool:
        mid = (x_lo + x_hi) / 2.0
        return any(
            seg.horizontal
            and abs(seg.y1 - y) <= _EPS
            and seg.x1 - _EPS <= mid <= seg.x2 + _EPS
            for seg in internal
        )

    parent = list(range(nx * ny))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for j in range(ny):
        for i in range(nx):
            if not inside[j][i]:
                continue
            if i + 1 < nx and inside[j][i + 1]:
                if not blocked_vertical_edge(xs[i + 1], ys[j], ys[j + 1]):
                    union(j * nx + i, j * nx + i + 1)
            if j + 1 < ny and inside[j + 1][i]:
                if not blocked_horizontal_edge(ys[j + 1], xs[i], xs[i + 1]):
                    union(j * nx + i, (j + 1) * nx + i)

    boxes: dict[int, list[float]] = {}
    for j in range(ny):
        for i in range(nx):
            if not inside[j][i]:
                continue
            root = find(j * nx + i)
            box = boxes.get(root)
            if box is None:
                boxes[root] = [xs[i], ys[j], xs[i + 1], ys[j + 1]]
            else:
                box[0] = min(box[0], xs[i])
                box[1] = min(box[1], ys[j])
                box[2] = max(box[2], xs[i + 1])
                box[3] = max(box[3], ys[j + 1])
    return [Rect(*box) for box in boxes.values()]


def partition_rectilinear(polygon: Polygon) -> list[Rect]:
    """Partition a hole-free rectilinear polygon into rectangles.

    Returns an exact, non-overlapping rectangle cover of the polygon with
    the minimum rectangle count (optimal for hole-free inputs).  Raises
    :class:`ValueError` when the polygon is not rectilinear.
    """
    polygon = polygon.without_collinear_vertices()
    if not polygon.is_rectilinear():
        raise ValueError("partition_rectilinear requires a rectilinear polygon")
    reflex = _reflex_vertices(polygon)
    if not reflex:
        return [polygon.bounding_box()]
    horizontal, vertical = _find_chords(polygon, reflex)
    chosen = _select_chords(horizontal, vertical)
    internal = [seg for seg, _, _ in chosen]
    resolved = {i for _, i, j in chosen for i in (i, j)}
    for idx in reflex:
        if idx in resolved:
            continue
        ray = _ray_from_reflex(polygon, idx, internal)
        if ray is not None:
            internal.append(ray)
    return _extract_rectangles(polygon, internal)


def scanline_partition(mask, grid, merge_tolerance: float = 0.0) -> list[Rect]:
    """Sweep-line rectangle partition of a boolean pixel mask.

    The industry-standard "conventional fracturing" shape decomposition:
    each pixel row is split into maximal runs, and runs are merged with
    the slab above when their x extents match within ``merge_tolerance``
    (0 = exact partition; the merged rectangle is the union bounding box,
    so a non-zero tolerance yields a slightly overflowing *cover*).

    Runs in O(ny · nx); suitable for pixel-resolution ILT contours where
    :func:`partition_rectilinear` (which is optimal but polygon-based)
    would be too slow.
    """
    import numpy as np

    ny, nx = mask.shape
    pitch = grid.pitch
    open_slabs: dict[tuple[int, int], list[float]] = {}
    rects: list[Rect] = []

    def runs_of_row(row) -> list[tuple[int, int]]:
        padded = np.zeros(nx + 2, dtype=np.int8)
        padded[1:-1] = row
        diff = np.diff(padded)
        starts = np.nonzero(diff == 1)[0]
        stops = np.nonzero(diff == -1)[0]
        return list(zip(starts.tolist(), stops.tolist()))

    for iy in range(ny):
        row_runs = runs_of_row(mask[iy])
        next_slabs: dict[tuple[int, int], list[float]] = {}
        claimed: set[tuple[int, int]] = set()
        for ix_lo, ix_hi in row_runs:
            x_lo = grid.x0 + ix_lo * pitch
            x_hi = grid.x0 + ix_hi * pitch
            match = None
            for key, slab in open_slabs.items():
                if key in claimed:
                    continue
                if (
                    abs(slab[0] - x_lo) <= merge_tolerance
                    and abs(slab[1] - x_hi) <= merge_tolerance
                ):
                    match = key
                    break
            y_here = grid.y0 + iy * pitch
            if match is not None:
                claimed.add(match)
                slab = open_slabs[match]
                merged = [
                    min(slab[0], x_lo),
                    max(slab[1], x_hi),
                    slab[2],
                ]
                next_slabs[(ix_lo, ix_hi)] = merged
            else:
                next_slabs[(ix_lo, ix_hi)] = [x_lo, x_hi, y_here]
        # Close slabs that found no continuation in this row.
        for key, slab in open_slabs.items():
            if key not in claimed:
                y_top = grid.y0 + iy * pitch
                rects.append(Rect(slab[0], slab[2], slab[1], y_top))
        open_slabs = next_slabs
    y_end = grid.y0 + ny * pitch
    for slab in open_slabs.values():
        rects.append(Rect(slab[0], slab[2], slab[1], y_end))
    return rects
