"""Simple polygons with the predicates mask fracturing needs.

Target mask shapes arrive as closed vertex loops (``V_M`` in the paper's
notation).  Real ILT contours traced from a pixel grid have thousands of
vertices; the RDP simplifier reduces them to the ``V_M^s`` subset used for
shot-corner extraction.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.geometry.point import Point, collinear
from repro.geometry.rect import Rect


class Polygon:
    """A simple (non-self-intersecting) polygon given as a vertex loop.

    Vertices are stored without a repeated closing vertex.  Orientation is
    normalized to counter-clockwise on construction so downstream code can
    rely on "interior on the left" when walking the boundary.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Iterable[Point | tuple[float, float]]):
        pts = [p if isinstance(p, Point) else Point(*p) for p in vertices]
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError(f"polygon needs at least 3 vertices, got {len(pts)}")
        if _signed_area(pts) < 0.0:
            pts.reverse()
        self._vertices = tuple(pts)

    # -- accessors ---------------------------------------------------------

    @property
    def vertices(self) -> tuple[Point, ...]:
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self)} vertices, area={self.area:.1f})"

    # -- measures ----------------------------------------------------------

    @property
    def area(self) -> float:
        """Unsigned area (orientation is normalized to CCW)."""
        return _signed_area(self._vertices)

    @property
    def perimeter(self) -> float:
        return sum(a.distance_to(b) for a, b in self.edges())

    def bounding_box(self) -> Rect:
        xs = [p.x for p in self._vertices]
        ys = [p.y for p in self._vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def centroid(self) -> Point:
        cx = cy = 0.0
        a = 0.0
        for p, q in self.edges():
            w = p.cross(q)
            a += w
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        a *= 0.5
        if a == 0.0:
            # Degenerate: fall back to the vertex average.
            n = len(self._vertices)
            return Point(
                sum(p.x for p in self._vertices) / n,
                sum(p.y for p in self._vertices) / n,
            )
        return Point(cx / (6.0 * a), cy / (6.0 * a))

    # -- traversal ---------------------------------------------------------

    def edges(self) -> Iterator[tuple[Point, Point]]:
        """Consecutive vertex pairs, including the closing edge."""
        verts = self._vertices
        for i in range(len(verts)):
            yield verts[i], verts[(i + 1) % len(verts)]

    # -- predicates ---------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Even-odd rule point-in-polygon; boundary points count as inside."""
        inside = False
        for a, b in self.edges():
            if _on_segment(a, b, p):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def is_rectilinear(self, tol: float = 1e-9) -> bool:
        return all(
            abs(a.x - b.x) <= tol or abs(a.y - b.y) <= tol for a, b in self.edges()
        )

    def is_convex(self) -> bool:
        sign = 0
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            cross = (verts[(i + 1) % n] - verts[i]).cross(
                verts[(i + 2) % n] - verts[(i + 1) % n]
            )
            if cross != 0.0:
                s = 1 if cross > 0 else -1
                if sign == 0:
                    sign = s
                elif s != sign:
                    return False
        return True

    # -- transforms ----------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon(Point(p.x + dx, p.y + dy) for p in self._vertices)

    def scaled(self, factor: float) -> "Polygon":
        return Polygon(Point(p.x * factor, p.y * factor) for p in self._vertices)

    def without_collinear_vertices(self, tol: float = 1e-9) -> "Polygon":
        """Drop vertices that lie on the line through their neighbours.

        Contour tracing emits a vertex per pixel edge; this collapses runs
        of collinear vertices so ``V_M`` only contains true corners.
        """
        verts = list(self._vertices)
        out: list[Point] = []
        n = len(verts)
        for i in range(n):
            prev = verts[(i - 1) % n]
            cur = verts[i]
            nxt = verts[(i + 1) % n]
            if not collinear(prev, cur, nxt, tol):
                out.append(cur)
        if len(out) < 3:
            return self
        return Polygon(out)

    # -- convenience constructors -------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        return cls(rect.corners())

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        if sides < 3:
            raise ValueError("a polygon needs at least 3 sides")
        return cls(
            Point(
                center.x + radius * math.cos(2.0 * math.pi * k / sides),
                center.y + radius * math.sin(2.0 * math.pi * k / sides),
            )
            for k in range(sides)
        )


def canonical_form(
    polygon: "Polygon",
) -> tuple[tuple[tuple[float, float], ...], tuple[float, float]]:
    """Translation-normalized, ordering-canonical vertex loop.

    Returns ``(vertices, offset)`` where ``vertices`` is the polygon's
    vertex loop translated so its bounding-box minimum sits at the
    origin, started at the lexicographically smallest ``(x, y)`` vertex
    (winding is already CCW-normalized by the constructor), and
    ``offset`` is the translation that maps the canonical loop back onto
    the input: ``input = canonical + offset``.

    Two polygons that are exact translates of each other — or the same
    loop entered at a different starting vertex or winding — canonicalize
    to the identical vertex tuple, which is what makes the content hash
    of the fracture cache placement-invariant.  The normalizing
    subtraction is exact for exactly representable coordinates (the
    GDSII integer-nanometre case), so fracturing the canonical geometry
    and translating the shots back by ``offset`` is bit-identical to
    fracturing in place.
    """
    bbox = polygon.bounding_box()
    dx, dy = bbox.xbl, bbox.ybl
    verts = [(p.x - dx, p.y - dy) for p in polygon.vertices]
    start = min(range(len(verts)), key=verts.__getitem__)
    return tuple(verts[start:] + verts[:start]), (dx, dy)


def _signed_area(vertices: Sequence[Point]) -> float:
    total = 0.0
    n = len(vertices)
    for i in range(n):
        total += vertices[i].cross(vertices[(i + 1) % n])
    return total / 2.0


def _on_segment(a: Point, b: Point, p: Point, tol: float = 1e-9) -> bool:
    if abs((b - a).cross(p - a)) > tol:
        return False
    return (
        min(a.x, b.x) - tol <= p.x <= max(a.x, b.x) + tol
        and min(a.y, b.y) - tol <= p.y <= max(a.y, b.y) + tol
    )
