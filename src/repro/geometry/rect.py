"""Axis-parallel rectangles — the variable-shaped-beam shot primitive.

A :class:`Rect` mirrors the paper's shot parameterization: bottom-left
corner ``(xbl, ybl)`` and top-right corner ``(xtr, ytr)`` (Table 1).  All
shot-level geometry used by the fracturer (edge moves, merging, overlap
tests, containment) lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.geometry.point import Point

# Edge names used by the refinement moves (paper §4.1).
EDGES = ("left", "right", "bottom", "top")


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-parallel rectangle with ``xbl <= xtr`` and ``ybl <= ytr``."""

    xbl: float
    ybl: float
    xtr: float
    ytr: float

    def __post_init__(self) -> None:
        if self.xtr < self.xbl or self.ytr < self.ybl:
            raise ValueError(
                f"degenerate rectangle: ({self.xbl},{self.ybl})-({self.xtr},{self.ytr})"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_corners(cls, a: Point, b: Point) -> "Rect":
        """Rectangle spanned by two opposite corners in any order."""
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        hw, hh = width / 2.0, height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.xtr - self.xbl

    @property
    def height(self) -> float:
        return self.ytr - self.ybl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xbl + self.xtr) / 2.0, (self.ybl + self.ytr) / 2.0)

    @property
    def bottom_left(self) -> Point:
        return Point(self.xbl, self.ybl)

    @property
    def bottom_right(self) -> Point:
        return Point(self.xtr, self.ybl)

    @property
    def top_left(self) -> Point:
        return Point(self.xbl, self.ytr)

    @property
    def top_right(self) -> Point:
        return Point(self.xtr, self.ytr)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """Corners in CCW order starting at the bottom-left."""
        return (self.bottom_left, self.bottom_right, self.top_right, self.top_left)

    # -- predicates --------------------------------------------------------

    def is_empty(self) -> bool:
        return self.width == 0.0 or self.height == 0.0

    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        if strict:
            return self.xbl < p.x < self.xtr and self.ybl < p.y < self.ytr
        return self.xbl <= p.x <= self.xtr and self.ybl <= p.y <= self.ytr

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside (or on) this rectangle.

        Used by the redundant-shot removal rule of MergeShots (paper §4.5
        criterion 2).
        """
        return (
            self.xbl <= other.xbl
            and self.ybl <= other.ybl
            and self.xtr >= other.xtr
            and self.ytr >= other.ytr
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            self.xtr < other.xbl
            or other.xtr < self.xbl
            or self.ytr < other.ybl
            or other.ytr < self.ybl
        )

    def meets_min_size(self, lmin: float) -> bool:
        """Minimum shot size constraint (problem statement, condition 2)."""
        return self.width >= lmin and self.height >= lmin

    # -- combination -------------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        xbl = max(self.xbl, other.xbl)
        ybl = max(self.ybl, other.ybl)
        xtr = min(self.xtr, other.xtr)
        ytr = min(self.ytr, other.ytr)
        if xtr < xbl or ytr < ybl:
            return None
        return Rect(xbl, ybl, xtr, ytr)

    def intersection_area(self, other: "Rect") -> float:
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.area

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xbl, other.xbl),
            min(self.ybl, other.ybl),
            max(self.xtr, other.xtr),
            max(self.ytr, other.ytr),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on all four sides."""
        return Rect(
            self.xbl - margin, self.ybl - margin, self.xtr + margin, self.ytr + margin
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xbl + dx, self.ybl + dy, self.xtr + dx, self.ytr + dy)

    # -- edge moves (refinement primitives, paper §4.1/§4.2) ---------------

    def moved_edge(self, edge: str, delta: float) -> "Rect":
        """Rectangle with one edge displaced by ``delta``.

        Positive ``delta`` always moves the edge in the +x/+y direction;
        the caller decides whether that grows or shrinks the shot.  Raises
        :class:`ValueError` if the move would invert the rectangle.
        """
        if edge == "left":
            return Rect(self.xbl + delta, self.ybl, self.xtr, self.ytr)
        if edge == "right":
            return Rect(self.xbl, self.ybl, self.xtr + delta, self.ytr)
        if edge == "bottom":
            return Rect(self.xbl, self.ybl + delta, self.xtr, self.ytr)
        if edge == "top":
            return Rect(self.xbl, self.ybl, self.xtr, self.ytr + delta)
        raise ValueError(f"unknown edge {edge!r}")

    def edge_coordinate(self, edge: str) -> float:
        if edge == "left":
            return self.xbl
        if edge == "right":
            return self.xtr
        if edge == "bottom":
            return self.ybl
        if edge == "top":
            return self.ytr
        raise ValueError(f"unknown edge {edge!r}")

    def shrunk(self, amount: float, lmin: float) -> "Rect":
        """Shrink every edge by ``amount`` but never below ``lmin`` per axis.

        Implements the per-shot clamp of BiasAllShots (paper §4.2,
        footnote 3: edges whose move would violate Lmin are not shrunk).
        """
        xbl, xtr = self.xbl, self.xtr
        ybl, ytr = self.ybl, self.ytr
        if (xtr - amount) - (xbl + amount) >= lmin:
            xbl += amount
            xtr -= amount
        if (ytr - amount) - (ybl + amount) >= lmin:
            ybl += amount
            ytr -= amount
        return Rect(xbl, ybl, xtr, ytr)

    def snapped(self, grid: float = 1.0) -> "Rect":
        """Rectangle with all coordinates rounded to the writer grid."""
        return Rect(
            round(self.xbl / grid) * grid,
            round(self.ybl / grid) * grid,
            round(self.xtr / grid) * grid,
            round(self.ytr / grid) * grid,
        )

    def iter_edges(self) -> Iterator[tuple[str, float]]:
        for edge in EDGES:
            yield edge, self.edge_coordinate(edge)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xbl, self.ybl, self.xtr, self.ytr)


def bounding_box(rects: "list[Rect]") -> Rect:
    """Tight bounding box of a non-empty rectangle collection."""
    if not rects:
        raise ValueError("bounding_box of an empty collection")
    return Rect(
        min(r.xbl for r in rects),
        min(r.ybl for r in rects),
        max(r.xtr for r in rects),
        max(r.ytr for r in rects),
    )


def total_union_area(rects: "list[Rect]") -> float:
    """Exact area of the union of axis-parallel rectangles.

    Coordinate-compression sweep; O(n^2) in the number of rectangles, which
    is ample for shot solutions (tens of shots).  Used by shot-overlap
    statistics in the benchmark metrics.
    """
    if not rects:
        return 0.0
    xs = sorted({r.xbl for r in rects} | {r.xtr for r in rects})
    ys = sorted({r.ybl for r in rects} | {r.ytr for r in rects})
    area = 0.0
    for i in range(len(xs) - 1):
        x_mid = (xs[i] + xs[i + 1]) / 2.0
        dx = xs[i + 1] - xs[i]
        if dx == 0.0:
            continue
        covering = [r for r in rects if r.xbl <= x_mid <= r.xtr]
        for j in range(len(ys) - 1):
            y_mid = (ys[j] + ys[j + 1]) / 2.0
            dy = ys[j + 1] - ys[j]
            if dy == 0.0:
                continue
            if any(r.ybl <= y_mid <= r.ytr for r in covering):
                area += dx * dy
    return area
