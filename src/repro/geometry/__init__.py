"""Rectilinear geometry kernel for mask data preparation.

This package is the pure-Python/numpy replacement for the Boost Polygon
Library infrastructure the paper's C++ implementation relied on.  It
provides the primitives every other subsystem builds on:

* :class:`~repro.geometry.point.Point` — immutable 2-D point.
* :class:`~repro.geometry.rect.Rect` — axis-parallel rectangle (the e-beam
  shot primitive).
* :class:`~repro.geometry.polygon.Polygon` — simple polygon with signed
  area, orientation, point containment and perimeter utilities.
* :func:`~repro.geometry.rdp.rdp_simplify` — Ramer–Douglas–Peucker
  polyline/polygon simplification (paper §3, Fig. 1).
* :func:`~repro.geometry.raster.rasterize_polygon` — polygon → boolean
  pixel mask at a given pixel pitch.
* :func:`~repro.geometry.trace.trace_boundary` — boolean mask → rectilinear
  boundary polygon (marching along pixel edges).
* :class:`~repro.geometry.sat.SummedAreaTable` — O(1) rectangle-sum queries
  used for the 80 %/90 % shot-overlap tests.
* :func:`~repro.geometry.labeling.label_components` — connected-component
  labeling used by the AddShot refinement move (paper §4.3).
* :func:`~repro.geometry.partition.partition_rectilinear` — minimum
  rectangle partition of a hole-free rectilinear polygon (Imai–Asano style,
  used by the conventional-fracturing baseline).
"""

from repro.geometry.boolean import (
    polygon_difference,
    polygon_intersection,
    polygon_union,
)
from repro.geometry.labeling import bounding_boxes, label_components
from repro.geometry.partition import partition_rectilinear
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.raster import rasterize_polygon
from repro.geometry.rdp import rdp_simplify
from repro.geometry.rect import Rect
from repro.geometry.sat import SummedAreaTable
from repro.geometry.trace import trace_boundary, trace_all_boundaries

__all__ = [
    "Point",
    "Polygon",
    "Rect",
    "SummedAreaTable",
    "bounding_boxes",
    "label_components",
    "partition_rectilinear",
    "polygon_difference",
    "polygon_intersection",
    "polygon_union",
    "rasterize_polygon",
    "rdp_simplify",
    "trace_boundary",
    "trace_all_boundaries",
]
