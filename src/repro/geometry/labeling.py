"""Connected-component labeling on boolean pixel masks.

The AddShot refinement move (paper §4.3) merges neighbouring failing
pixels into polygons with a boolean OR and takes the bounding box of each
component.  Labeling is 4-connected with components numbered in
raster-scan order of their first pixel — tile extraction, AddShot, and
the GSC baseline all consume that ordering, so it is part of the
contract, not an implementation detail.

Two implementations live behind the :mod:`repro.kernels` backend seam:
the vectorized run-length/row-merge kernel (default ``numpy`` backend)
and :func:`label_components_scalar`, the original per-pixel two-pass
union–find, kept as the oracle the vectorized path is gated
bit-identical against.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.kernels import get_backend


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: list[int] = []

    def make(self) -> int:
        self.parent.append(len(self.parent))
        return len(self.parent) - 1

    def find(self, a: int) -> int:
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:  # path compression
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labeling via the active kernel backend.

    Returns ``(labels, count)`` where ``labels`` holds 0 for background and
    1..count for components, numbered in raster-scan order of their first
    pixel.  Every backend must match :func:`label_components_scalar`
    exactly — labels AND numbering.
    """
    return get_backend().label_components(mask)


def label_components_scalar(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """Per-pixel two-pass union–find labeling (the scalar oracle).

    Same contract as :func:`label_components`; this is the reference
    implementation the vectorized kernels are gated against, and the
    code path the ``scalar`` backend selects.
    """
    ny, nx = mask.shape
    labels = np.zeros((ny, nx), dtype=np.int32)
    uf = _UnionFind()
    # First pass: provisional labels + equivalences.
    for iy in range(ny):
        row = mask[iy]
        for ix in range(nx):
            if not row[ix]:
                continue
            up = labels[iy - 1, ix] if iy > 0 else 0
            left = labels[iy, ix - 1] if ix > 0 else 0
            if up and left:
                labels[iy, ix] = min(up, left)
                uf.union(up - 1, left - 1)
            elif up or left:
                labels[iy, ix] = up or left
            else:
                labels[iy, ix] = uf.make() + 1
    if not uf.parent:
        return labels, 0
    # Second pass: flatten equivalences to consecutive labels.
    roots = np.array([uf.find(i) for i in range(len(uf.parent))], dtype=np.int32)
    remap = np.zeros(len(uf.parent) + 1, dtype=np.int32)
    next_label = 0
    seen: dict[int, int] = {}
    for provisional, root in enumerate(roots):
        if root not in seen:
            next_label += 1
            seen[root] = next_label
        remap[provisional + 1] = seen[root]
    return remap[labels], next_label


def largest_component(mask: np.ndarray) -> np.ndarray:
    """Boolean mask of the largest 4-connected component of ``mask``.

    Returns ``mask`` unchanged when it holds at most one component, so
    single-polygon inputs pay only the labeling pass.
    """
    labels, count = label_components(mask)
    if count <= 1:
        return mask
    sizes = np.bincount(labels.ravel())
    sizes[0] = 0
    return labels == int(sizes.argmax())


def component_masks(mask: np.ndarray) -> list[np.ndarray]:
    """Every 4-connected component of ``mask`` as its own boolean mask.

    Ordered by raster-scan position of each component's first pixel
    (the :func:`label_components` numbering), which makes downstream
    per-component work deterministic.
    """
    labels, count = label_components(mask)
    if count <= 1:
        return [mask] if count == 1 else []
    return [labels == label for label in range(1, count + 1)]


def bounding_boxes(
    labels: np.ndarray, count: int, grid: PixelGrid
) -> list[tuple[Rect, int]]:
    """Bounding box and pixel count of every labeled component.

    Boxes are in mask-plane coordinates and cover the full pixel cells of
    the component.  Sorted by descending pixel count so AddShot can pick
    the component covering the most failing pixels first; ties keep
    ascending label order (Python's stable sort), matching the original
    per-label scan.  All boxes and counts come from a single pass over
    the label array via the backend's ``component_stats`` kernel.
    """
    present, counts, ymin, ymax, xmin, xmax = get_backend().component_stats(
        labels, count
    )
    out: list[tuple[Rect, int]] = []
    for i in range(present.shape[0]):
        rect = Rect(
            grid.x0 + float(xmin[i]) * grid.pitch,
            grid.y0 + float(ymin[i]) * grid.pitch,
            grid.x0 + (float(xmax[i]) + 1.0) * grid.pitch,
            grid.y0 + (float(ymax[i]) + 1.0) * grid.pitch,
        )
        out.append((rect, int(counts[i])))
    out.sort(key=lambda item: -item[1])
    return out
