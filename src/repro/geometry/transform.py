"""Exact placement transforms: the axis-parallel dihedral subgroup.

GDSII structure references place a cell under a reflection about the
x axis, a rotation, and a translation.  Mask fracturing only ever needs
the subgroup that maps axis-parallel rectangles to axis-parallel
rectangles — rotations by multiples of 90° with an optional mirror —
so :class:`Transform` restricts itself to it and gains exactness in
return: every coordinate map is a sign flip, a coordinate swap, or an
addition, all of which are exact IEEE operations on exactly
representable inputs.  That exactness is what lets the hierarchy layer
instantiate a cached template's shot list per placement and stay
bit-identical to fracturing the placed geometry directly.

Conventions match the GDSII STRANS record: the mirror (reflection about
the x axis, ``y → -y``) is applied *first*, then the counter-clockwise
rotation, then the translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.geometry.point import Point
from repro.geometry.rect import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (polygon uses rect)
    from repro.geometry.polygon import Polygon

__all__ = ["ROTATIONS", "Transform"]

#: The four representable rotations, in degrees counter-clockwise.
ROTATIONS = (0, 90, 180, 270)

# cos/sin of each rotation as exact integers.
_COS_SIN = {0: (1, 0), 90: (0, 1), 180: (-1, 0), 270: (0, -1)}


@dataclass(frozen=True, slots=True)
class Transform:
    """Mirror-about-x, then rotate by ``rotation``°, then translate.

    ``rotation`` must be one of 0/90/180/270.  All coordinate maps are
    exact (sign flips, swaps and additions), so applying a transform and
    its inverse round-trips bit-identically for exactly representable
    coordinates.
    """

    rotation: int = 0
    mirror_x: bool = False
    dx: float = 0.0
    dy: float = 0.0

    def __post_init__(self) -> None:
        if self.rotation not in _COS_SIN:
            raise ValueError(
                f"rotation must be one of {ROTATIONS}, got {self.rotation}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls) -> "Transform":
        return cls()

    @classmethod
    def translation(cls, dx: float, dy: float) -> "Transform":
        return cls(dx=dx, dy=dy)

    @property
    def is_identity(self) -> bool:
        return (
            self.rotation == 0
            and not self.mirror_x
            and self.dx == 0.0
            and self.dy == 0.0
        )

    @property
    def is_translation(self) -> bool:
        return self.rotation == 0 and not self.mirror_x

    # -- application ---------------------------------------------------------

    def apply(self, x: float, y: float) -> tuple[float, float]:
        """Map one coordinate pair."""
        if self.mirror_x:
            y = -y
        c, s = _COS_SIN[self.rotation]
        return (c * x - s * y + self.dx, s * x + c * y + self.dy)

    def apply_point(self, p: Point) -> Point:
        return Point(*self.apply(p.x, p.y))

    def apply_polygon(self, polygon: "Polygon") -> "Polygon":
        """Transformed polygon (winding re-normalized by the constructor)."""
        from repro.geometry.polygon import Polygon

        return Polygon(Point(*self.apply(p.x, p.y)) for p in polygon.vertices)

    def apply_rect(self, rect: Rect) -> Rect:
        """Axis-parallel image of an axis-parallel rectangle (exact)."""
        a = self.apply(rect.xbl, rect.ybl)
        b = self.apply(rect.xtr, rect.ytr)
        return Rect(min(a[0], b[0]), min(a[1], b[1]),
                    max(a[0], b[0]), max(a[1], b[1]))

    def apply_rects(self, rects: Iterable[Rect]) -> list[Rect]:
        if self.is_identity:
            return list(rects)
        return [self.apply_rect(r) for r in rects]

    # -- algebra -------------------------------------------------------------

    def compose(self, inner: "Transform") -> "Transform":
        """``self ∘ inner``: apply ``inner`` first, then ``self``.

        Used when walking nested structure references: the child ref's
        transform composes under the parent's.
        """
        if self.mirror_x:
            rotation = (self.rotation - inner.rotation) % 360
        else:
            rotation = (self.rotation + inner.rotation) % 360
        dx, dy = self.apply(inner.dx, inner.dy)
        return Transform(
            rotation=rotation,
            mirror_x=self.mirror_x != inner.mirror_x,
            dx=dx,
            dy=dy,
        )

    def inverse(self) -> "Transform":
        """The transform undoing this one (exact round trip)."""
        # Linear part inverse: M⁻¹R(−θ) = (R(θ)M)⁻¹; expressed back in
        # mirror-first form: rotation θ' = θ if mirrored else −θ.
        rotation = self.rotation if self.mirror_x else (-self.rotation) % 360
        linear_inverse = Transform(rotation=rotation, mirror_x=self.mirror_x)
        tx, ty = linear_inverse.apply(self.dx, self.dy)
        return Transform(
            rotation=rotation, mirror_x=self.mirror_x, dx=-tx, dy=-ty
        )

    def translated(self, dx: float, dy: float) -> "Transform":
        """Same linear part, translation shifted by ``(dx, dy)``."""
        return Transform(
            rotation=self.rotation, mirror_x=self.mirror_x,
            dx=self.dx + dx, dy=self.dy + dy,
        )

    def __repr__(self) -> str:
        parts = []
        if self.mirror_x:
            parts.append("mirror")
        if self.rotation:
            parts.append(f"rot{self.rotation}")
        if self.dx or self.dy:
            parts.append(f"({self.dx:g},{self.dy:g})")
        return f"Transform({' '.join(parts) or 'identity'})"
