"""Immutable 2-D points with the small vector algebra the fracturer needs."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the mask plane.

    Coordinates are in nanometres throughout the library; they may be
    fractional because shot corner points are shifted by ``Lth / sqrt(2)``
    (paper §3), which is irrational.
    """

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scale: float) -> "Point":
        return Point(self.x * scale, self.y * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def normalized(self) -> "Point":
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """Counter-clockwise perpendicular vector."""
        return Point(-self.y, self.x)

    def rounded(self) -> "Point":
        return Point(round(self.x), round(self.y))

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def segment_point_distance(a: Point, b: Point, p: Point) -> float:
    """Perpendicular distance from ``p`` to segment ``a``–``b``.

    Falls back to endpoint distance when the projection of ``p`` lies
    outside the segment.  This is the distance test used by the RDP
    simplifier.
    """
    ab = b - a
    ab_len2 = ab.dot(ab)
    if ab_len2 == 0.0:
        return p.distance_to(a)
    t = (p - a).dot(ab) / ab_len2
    t = max(0.0, min(1.0, t))
    closest = a + ab * t
    return p.distance_to(closest)


def collinear(a: Point, b: Point, c: Point, tol: float = 1e-9) -> bool:
    """True when the three points lie on a common line (within ``tol``)."""
    return abs((b - a).cross(c - a)) <= tol
