"""Ramer–Douglas–Peucker simplification (paper §3, reference [22]).

The fracturer first approximates the target boundary ``V_M`` by a subset
``V_M^s`` such that every dropped vertex lies within the CD tolerance γ of
the simplified boundary.  We provide both the classic open-polyline RDP and
a closed-loop variant that picks stable anchor vertices so the result does
not depend on where the vertex list happens to start.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point, segment_point_distance
from repro.geometry.polygon import Polygon


def rdp_polyline(points: Sequence[Point], epsilon: float) -> list[Point]:
    """Simplify an open polyline, keeping both endpoints.

    Guarantees every input point is within ``epsilon`` of the output
    polyline (the property the paper requires of the approximation).
    """
    if epsilon < 0.0:
        raise ValueError("epsilon must be non-negative")
    if len(points) < 3:
        return list(points)
    keep = [False] * len(points)
    keep[0] = keep[-1] = True
    # Iterative stack-based recursion to survive pixel-resolution contours
    # with tens of thousands of vertices.
    stack: list[tuple[int, int]] = [(0, len(points) - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a, b = points[lo], points[hi]
        worst_d = -1.0
        worst_i = -1
        for i in range(lo + 1, hi):
            d = segment_point_distance(a, b, points[i])
            if d > worst_d:
                worst_d = d
                worst_i = i
        if worst_d > epsilon:
            keep[worst_i] = True
            stack.append((lo, worst_i))
            stack.append((worst_i, hi))
    return [p for p, k in zip(points, keep) if k]


def rdp_closed(points: Sequence[Point], epsilon: float) -> list[Point]:
    """Simplify a closed vertex loop.

    Splits the loop at the two mutually farthest extreme vertices (min/max
    x), runs RDP on each half, and rejoins.  Anchoring at geometric
    extremes makes the output invariant to the loop's starting index.
    """
    if len(points) < 4:
        return list(points)
    i_min = min(range(len(points)), key=lambda i: (points[i].x, points[i].y))
    i_max = max(range(len(points)), key=lambda i: (points[i].x, points[i].y))
    if i_min == i_max:
        return list(points)
    lo, hi = sorted((i_min, i_max))
    first_half = list(points[lo : hi + 1])
    second_half = list(points[hi:]) + list(points[: lo + 1])
    simplified = rdp_polyline(first_half, epsilon)[:-1] + rdp_polyline(
        second_half, epsilon
    )[:-1]
    return simplified


def rdp_simplify(polygon: Polygon, epsilon: float) -> Polygon:
    """Simplify a polygon boundary with RDP at tolerance ``epsilon``.

    This is the first step of graph-coloring-based approximate fracturing;
    the paper sets ``epsilon`` to the CD tolerance γ.  Falls back to the
    original polygon when simplification would degenerate it.
    """
    simplified = rdp_closed(list(polygon.vertices), epsilon)
    if len(simplified) < 3:
        return polygon
    try:
        return Polygon(simplified)
    except ValueError:
        return polygon
