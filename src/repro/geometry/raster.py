"""Polygon rasterization onto the fracturing pixel grid.

The model-based fracturing problem is evaluated on a pixel sampling of the
target shape (paper §2): pixel size ``Δp`` (1 nm in the paper's setup).
:class:`PixelGrid` fixes the geometry of that sampling — origin, pitch and
extent — and is shared by the rasterizer, the intensity map and the pixel
classifier so they always agree on pixel-centre coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class PixelGrid:
    """A regular pixel grid over the mask plane.

    Pixel ``(iy, ix)`` has its centre at
    ``(x0 + (ix + 0.5) * pitch, y0 + (iy + 0.5) * pitch)``.  Row index is
    the *first* numpy axis, matching the ``(ny, nx)`` array convention used
    throughout the library.
    """

    x0: float
    y0: float
    pitch: float
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.pitch <= 0.0:
            raise ValueError("pixel pitch must be positive")
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError("grid must contain at least one pixel")

    @classmethod
    def for_rect(cls, rect: Rect, pitch: float, margin: float = 0.0) -> "PixelGrid":
        """Grid covering ``rect`` expanded by ``margin`` on every side."""
        x0 = rect.xbl - margin
        y0 = rect.ybl - margin
        nx = max(1, int(np.ceil((rect.width + 2.0 * margin) / pitch)))
        ny = max(1, int(np.ceil((rect.height + 2.0 * margin) / pitch)))
        return cls(x0, y0, pitch, nx, ny)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.ny, self.nx)

    @property
    def extent(self) -> Rect:
        return Rect(
            self.x0,
            self.y0,
            self.x0 + self.nx * self.pitch,
            self.y0 + self.ny * self.pitch,
        )

    def x_centers(self) -> np.ndarray:
        return self.x0 + (np.arange(self.nx) + 0.5) * self.pitch

    def y_centers(self) -> np.ndarray:
        return self.y0 + (np.arange(self.ny) + 0.5) * self.pitch

    def pixel_center(self, iy: int, ix: int) -> Point:
        return Point(
            self.x0 + (ix + 0.5) * self.pitch, self.y0 + (iy + 0.5) * self.pitch
        )

    def index_of(self, p: Point) -> tuple[int, int]:
        """Indices of the pixel whose cell contains ``p`` (clamped to grid)."""
        ix = int(np.floor((p.x - self.x0) / self.pitch))
        iy = int(np.floor((p.y - self.y0) / self.pitch))
        return (min(max(iy, 0), self.ny - 1), min(max(ix, 0), self.nx - 1))

    def x_span_to_slice(self, lo: float, hi: float, margin: float = 0.0) -> slice:
        """Column slice of pixel centres inside ``[lo − margin, hi + margin]``.

        Scalar math only — this runs several times per candidate edge
        move, so numpy-scalar overhead would dominate.
        """
        ix_lo = math.floor((lo - margin - self.x0) / self.pitch - 0.5) + 1
        ix_hi = math.ceil((hi + margin - self.x0) / self.pitch - 0.5)
        ix_lo = min(max(ix_lo, 0), self.nx)
        return slice(ix_lo, min(max(ix_hi + 1, ix_lo), self.nx))

    def y_span_to_slice(self, lo: float, hi: float, margin: float = 0.0) -> slice:
        """Row slice of pixel centres inside ``[lo − margin, hi + margin]``."""
        iy_lo = math.floor((lo - margin - self.y0) / self.pitch - 0.5) + 1
        iy_hi = math.ceil((hi + margin - self.y0) / self.pitch - 0.5)
        iy_lo = min(max(iy_lo, 0), self.ny)
        return slice(iy_lo, min(max(iy_hi + 1, iy_lo), self.ny))

    def rect_to_slices(self, rect: Rect, margin: float = 0.0) -> tuple[slice, slice]:
        """Index slices of all pixels whose centres fall in the padded rect.

        Used to restrict intensity updates and cost evaluation to the 3σ
        neighbourhood of a shot.
        """
        return (
            self.y_span_to_slice(rect.ybl, rect.ytr, margin),
            self.x_span_to_slice(rect.xbl, rect.xtr, margin),
        )


def rasterize_polygon(polygon: Polygon, grid: PixelGrid) -> np.ndarray:
    """Boolean inside-mask of ``polygon`` sampled at pixel centres.

    Even-odd scanline fill: for every pixel row, the crossings of the
    boundary with the row's y coordinate are computed and pixels between
    alternating crossing pairs are set.  Handles arbitrary simple polygons
    (ILT contours are curvy, not just rectilinear).
    """
    mask = np.zeros(grid.shape, dtype=bool)
    ys = grid.y_centers()
    xs = grid.x_centers()
    edges = [
        (a, b)
        for a, b in polygon.edges()
        if a.y != b.y  # horizontal edges never cross a scanline strictly
    ]
    if not edges:
        return mask
    ay = np.array([a.y for a, _ in edges])
    by = np.array([b.y for _, b in edges])
    ax = np.array([a.x for a, _ in edges])
    bx = np.array([b.x for _, b in edges])
    y_lo = np.minimum(ay, by)
    y_hi = np.maximum(ay, by)
    for iy, y in enumerate(ys):
        # Half-open rule [y_lo, y_hi) avoids double-counting shared vertices.
        active = (y_lo <= y) & (y < y_hi)
        if not active.any():
            continue
        t = (y - ay[active]) / (by[active] - ay[active])
        crossings = np.sort(ax[active] + t * (bx[active] - ax[active]))
        for k in range(0, len(crossings) - 1, 2):
            lo, hi = crossings[k], crossings[k + 1]
            mask[iy, (xs >= lo) & (xs <= hi)] = True
    return mask


def rasterize_rect(rect: Rect, grid: PixelGrid) -> np.ndarray:
    """Boolean mask of pixels whose centres lie inside ``rect``."""
    xs = grid.x_centers()
    ys = grid.y_centers()
    in_x = (xs >= rect.xbl) & (xs <= rect.xtr)
    in_y = (ys >= rect.ybl) & (ys <= rect.ytr)
    return np.outer(in_y, in_x)
