"""Polygon boolean operations (union / intersection / difference).

The paper's C++ implementation leans on the Boost Polygon Library for
"polygon Boolean operations" — used when merging failing-pixel regions
(§4.3) and generally throughout mask data prep.  Exact polygon clipping
is notoriously fiddly; since every consumer in this library ultimately
works on the Δp pixel grid anyway, the operations are computed on a
common rasterization and traced back to rectilinear result polygons.
Results are exact at pixel resolution — the resolution the fracturing
problem itself is defined at (paper §2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid, rasterize_polygon
from repro.geometry.rect import Rect
from repro.geometry.trace import trace_all_boundaries


def _common_grid(polygons: Iterable[Polygon], pitch: float, margin: float) -> PixelGrid:
    polys = list(polygons)
    if not polys:
        raise ValueError("boolean operation needs at least one polygon")
    bbox = polys[0].bounding_box()
    for poly in polys[1:]:
        bbox = bbox.union_bbox(poly.bounding_box())
    return PixelGrid.for_rect(bbox, pitch, margin=margin)


def _combine(
    a: Polygon | Iterable[Polygon],
    b: Polygon | Iterable[Polygon],
    op: str,
    pitch: float,
) -> list[Polygon]:
    group_a = [a] if isinstance(a, Polygon) else list(a)
    group_b = [b] if isinstance(b, Polygon) else list(b)
    grid = _common_grid(group_a + group_b, pitch, margin=2.0 * pitch)
    mask_a = np.zeros(grid.shape, dtype=bool)
    for poly in group_a:
        mask_a |= rasterize_polygon(poly, grid)
    mask_b = np.zeros(grid.shape, dtype=bool)
    for poly in group_b:
        mask_b |= rasterize_polygon(poly, grid)
    if op == "union":
        result = mask_a | mask_b
    elif op == "intersection":
        result = mask_a & mask_b
    elif op == "difference":
        result = mask_a & ~mask_b
    else:
        raise ValueError(f"unknown boolean op {op!r}")
    if not result.any():
        return []
    return trace_all_boundaries(result, grid)


def polygon_union(
    a: Polygon | Iterable[Polygon], b: Polygon | Iterable[Polygon], pitch: float = 1.0
) -> list[Polygon]:
    """Union of two polygons (or polygon groups) at pixel resolution.

    Returns one polygon per connected component of the result; hole
    boundaries, if any, are returned as additional loops (see
    :func:`repro.geometry.trace.trace_all_boundaries`).
    """
    return _combine(a, b, "union", pitch)


def polygon_intersection(
    a: Polygon | Iterable[Polygon], b: Polygon | Iterable[Polygon], pitch: float = 1.0
) -> list[Polygon]:
    """Intersection of two polygons (or groups) at pixel resolution."""
    return _combine(a, b, "intersection", pitch)


def polygon_difference(
    a: Polygon | Iterable[Polygon], b: Polygon | Iterable[Polygon], pitch: float = 1.0
) -> list[Polygon]:
    """``a`` minus ``b`` at pixel resolution."""
    return _combine(a, b, "difference", pitch)


def _interior_probe(poly: Polygon, pitch: float) -> Point:
    """A point strictly inside a grid-traced rectilinear boundary loop.

    Every loop vertex and edge lies on pitch-multiple grid lines, and
    the bottom-left-most vertex is a convex corner with the loop's
    enclosed region up-right of it — so the centre of the grid cell
    diagonal to that vertex is strictly inside this loop and strictly
    off every other loop's boundary.
    """
    bl = min(poly.vertices, key=lambda p: (p.y, p.x))
    return Point(bl.x + 0.5 * pitch, bl.y + 0.5 * pitch)


def polygon_area_of(polygons: list[Polygon], pitch: float = 1.0) -> float:
    """Even-odd area of a boolean-op result.

    :func:`repro.geometry.trace.trace_all_boundaries` returns hole
    boundaries as additional loops with orientation normalized away, so
    plain summing counts holes positively (``B ⊂ A`` made
    ``polygon_difference(A, B)`` report ``|A| + |B|`` instead of
    ``|A| − |B|``).  A loop nested inside an odd number of the other
    loops bounds a hole; its area subtracts.  ``pitch`` must match the
    pitch the boolean op ran at (both default to 1.0).
    """
    total = 0.0
    for i, poly in enumerate(polygons):
        probe = _interior_probe(poly, pitch)
        depth = sum(
            1
            for j, other in enumerate(polygons)
            if j != i and other.contains_point(probe)
        )
        total += -poly.area if depth % 2 else poly.area
    return total


def shots_union_polygons(shots: list[Rect], pitch: float = 1.0) -> list[Polygon]:
    """Union of a shot list as polygons — the geometric written area.

    Useful for visual diffing of a solution against its target (e.g.
    ``polygon_difference(target, shots_union_polygons(shots))`` is the
    geometrically uncovered region before blur is considered).
    """
    if not shots:
        return []
    return polygon_union(
        [Polygon.from_rect(shots[0])],
        [Polygon.from_rect(s) for s in shots[1:]] or [Polygon.from_rect(shots[0])],
        pitch,
    )
