"""Boundary tracing: boolean pixel mask → rectilinear boundary polygon.

The known-optimal benchmark generator (and the toy ILT flow) produce
targets as ρ-contours of a simulated intensity map, i.e. boolean masks.
Tracing converts those masks into the closed vertex loops (``V_M``) the
fracturer consumes.  Boundaries follow pixel-cell edges, so the result is
rectilinear at the pixel pitch — exactly the "pixel-resolution curvy
contour" character of real ILT mask shapes.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid

# Oriented boundary edge directions, chosen so the interior is on the left
# of the walking direction: loops around filled regions come out CCW.
_RIGHT = (1, 0)
_LEFT = (-1, 0)
_UP = (0, 1)
_DOWN = (0, -1)


def _boundary_edges(mask: np.ndarray) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """Collect oriented cell-boundary edges keyed by their start corner."""
    ny, nx = mask.shape
    padded = np.zeros((ny + 2, nx + 2), dtype=bool)
    padded[1:-1, 1:-1] = mask
    inside = padded[1:-1, 1:-1]
    edges: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)

    # Neighbour-outside tests, vectorized per side.
    top_open = inside & ~padded[2:, 1:-1]
    bottom_open = inside & ~padded[:-2, 1:-1]
    left_open = inside & ~padded[1:-1, :-2]
    right_open = inside & ~padded[1:-1, 2:]

    for iy, ix in zip(*np.nonzero(bottom_open)):
        edges[(int(ix), int(iy))].append(_RIGHT)  # bottom edge, walk +x
    for iy, ix in zip(*np.nonzero(top_open)):
        edges[(int(ix) + 1, int(iy) + 1)].append(_LEFT)  # top edge, walk -x
    for iy, ix in zip(*np.nonzero(left_open)):
        edges[(int(ix), int(iy) + 1)].append(_DOWN)  # left edge, walk -y
    for iy, ix in zip(*np.nonzero(right_open)):
        edges[(int(ix) + 1, int(iy))].append(_UP)  # right edge, walk +y
    return edges


def _pick_direction(
    options: list[tuple[int, int]], incoming: tuple[int, int] | None
) -> tuple[int, int]:
    """Resolve corners where two boundary edges start (diagonal pinch).

    Preferring the left turn keeps diagonally-touching regions as separate
    loops instead of welding them into a self-touching polygon.
    """
    if len(options) == 1 or incoming is None:
        return options[0]
    left_turn = (-incoming[1], incoming[0])
    if left_turn in options:
        return left_turn
    if incoming in options:
        return incoming
    return options[0]


def trace_all_boundaries(mask: np.ndarray, grid: PixelGrid) -> list[Polygon]:
    """Trace every boundary loop of ``mask``.

    Returns one polygon per loop in mask-plane (nm) coordinates.  Outer
    boundaries of filled regions are traced CCW; hole boundaries come out
    CW in the raw walk but :class:`Polygon` normalizes orientation, so
    callers that need hole semantics should use :func:`trace_boundary` on
    hole-free masks (all masks produced by the benchmark generators are
    hole-free by construction — see ``repro.bench.shapes``).
    """
    if mask.shape != grid.shape:
        raise ValueError(f"mask shape {mask.shape} != grid shape {grid.shape}")
    edges = _boundary_edges(mask)
    unused = {corner: list(dirs) for corner, dirs in edges.items()}
    loops: list[list[tuple[int, int]]] = []
    for start in sorted(unused):
        while unused.get(start):
            loop: list[tuple[int, int]] = [start]
            corner = start
            incoming: tuple[int, int] | None = None
            while True:
                options = unused.get(corner)
                if not options:
                    break  # open chain: malformed mask edge bookkeeping
                direction = _pick_direction(options, incoming)
                options.remove(direction)
                corner = (corner[0] + direction[0], corner[1] + direction[1])
                incoming = direction
                if corner == start:
                    break
                loop.append(corner)
            if len(loop) >= 4:
                loops.append(loop)
    polygons = []
    for loop in loops:
        pts = [
            Point(grid.x0 + cx * grid.pitch, grid.y0 + cy * grid.pitch)
            for cx, cy in loop
        ]
        polygons.append(Polygon(pts).without_collinear_vertices())
    return polygons


def trace_boundary(mask: np.ndarray, grid: PixelGrid) -> Polygon:
    """Trace the single largest boundary loop of ``mask``.

    Convenience for single-shape clips: picks the loop enclosing the most
    area, which is the outer boundary for a connected, hole-free mask.
    """
    polygons = trace_all_boundaries(mask, grid)
    if not polygons:
        raise ValueError("mask contains no filled pixels")
    return max(polygons, key=lambda p: p.area)
