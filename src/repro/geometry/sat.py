"""Summed-area tables for O(1) rectangle occupancy queries.

The fracturer repeatedly asks "what fraction of this candidate shot lies
inside the target shape?" — for the 80 % graph-edge overlap rule (paper §3
footnote 2) and the 90 % merge rule (§4.5).  A summed-area table over the
inside-mask answers each query in constant time.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect


class SummedAreaTable:
    """Integral image over a scalar (or boolean) pixel field."""

    __slots__ = ("_grid", "_table")

    def __init__(self, field: np.ndarray, grid: PixelGrid):
        if field.shape != grid.shape:
            raise ValueError(f"field shape {field.shape} != grid shape {grid.shape}")
        self._grid = grid
        table = np.zeros((grid.ny + 1, grid.nx + 1), dtype=np.float64)
        np.cumsum(field, axis=0, out=table[1:, 1:])
        np.cumsum(table[1:, 1:], axis=1, out=table[1:, 1:])
        self._table = table

    @property
    def grid(self) -> PixelGrid:
        return self._grid

    def window_sum(self, iy_lo: int, iy_hi: int, ix_lo: int, ix_hi: int) -> float:
        """Sum of the field over the half-open index window.

        ``iy_lo <= iy < iy_hi`` and ``ix_lo <= ix < ix_hi``; indices are
        clamped to the grid.
        """
        iy_lo = min(max(iy_lo, 0), self._grid.ny)
        iy_hi = min(max(iy_hi, iy_lo), self._grid.ny)
        ix_lo = min(max(ix_lo, 0), self._grid.nx)
        ix_hi = min(max(ix_hi, ix_lo), self._grid.nx)
        t = self._table
        return float(
            t[iy_hi, ix_hi] - t[iy_lo, ix_hi] - t[iy_hi, ix_lo] + t[iy_lo, ix_lo]
        )

    def rect_sum(self, rect: Rect) -> float:
        """Sum of the field over pixels whose centres lie inside ``rect``."""
        g = self._grid
        ix_lo = int(np.ceil((rect.xbl - g.x0) / g.pitch - 0.5))
        ix_hi = int(np.floor((rect.xtr - g.x0) / g.pitch - 0.5)) + 1
        iy_lo = int(np.ceil((rect.ybl - g.y0) / g.pitch - 0.5))
        iy_hi = int(np.floor((rect.ytr - g.y0) / g.pitch - 0.5)) + 1
        return self.window_sum(iy_lo, iy_hi, ix_lo, ix_hi)

    def rect_pixel_count(self, rect: Rect) -> int:
        """Number of grid pixels whose centres lie inside ``rect``."""
        g = self._grid
        ix_lo = min(max(int(np.ceil((rect.xbl - g.x0) / g.pitch - 0.5)), 0), g.nx)
        ix_hi = min(max(int(np.floor((rect.xtr - g.x0) / g.pitch - 0.5)) + 1, ix_lo), g.nx)
        iy_lo = min(max(int(np.ceil((rect.ybl - g.y0) / g.pitch - 0.5)), 0), g.ny)
        iy_hi = min(max(int(np.floor((rect.ytr - g.y0) / g.pitch - 0.5)) + 1, iy_lo), g.ny)
        return (ix_hi - ix_lo) * (iy_hi - iy_lo)

    def rect_fraction(self, rect: Rect) -> float:
        """Mean field value over the pixels covered by ``rect``.

        For a boolean inside-mask this is exactly "fraction of the shot
        inside the target shape"; returns 0.0 for rects covering no pixel.
        """
        count = self.rect_pixel_count(rect)
        if count == 0:
            return 0.0
        return self.rect_sum(rect) / count
