"""Fracturing-method registry shared by the CLI and the service daemon.

One canonical mapping from the short method names used everywhere
(benchmark tables, CLI flags, job submissions) to the classes that
implement them, so the CLI and :mod:`repro.service` cannot drift apart
on what ``"ours"`` or ``"partition"`` means.
"""

from __future__ import annotations

from repro.baselines import (
    GreedySetCoverFracturer,
    MatchingPursuitFracturer,
    PartitionFracturer,
    ProtoEdaFracturer,
)
from repro.fracture.base import Fracturer
from repro.fracture.pipeline import ModelBasedFracturer

__all__ = ["METHODS", "make_fracturer", "method_names"]

METHODS: dict[str, type[Fracturer]] = {
    "ours": ModelBasedFracturer,
    "gsc": GreedySetCoverFracturer,
    "mp": MatchingPursuitFracturer,
    "proto-eda": ProtoEdaFracturer,
    "partition": PartitionFracturer,
}


def method_names() -> list[str]:
    return sorted(METHODS)


def make_fracturer(name: str) -> Fracturer:
    """Instantiate a registered method; ``ValueError`` on unknown names."""
    try:
        cls = METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; choose from {method_names()}"
        ) from None
    fracturer = cls()
    # Cache keys use the registry name, matching service job submissions,
    # so library and service entries for the same method coincide.
    fracturer.cache_method = name
    return fracturer
