"""Regenerate paper Table 3: known-optimal AGB/RGB shapes, four methods.

Paper reference (Table 3): per-clip shot count + runtime against the
known optimal shot count (the generator's K), with the "Sum of
Normalized Shot Count wrt Optimal" summary row.  Expected shape: every
heuristic is above 1.0x optimal; the proposed method has the lowest
normalized sum; PROTO-EDA and the proposed method may terminate with a
small number of failing pixels on the wavy clips (the paper reports the
same effect — its own method fails on AGB-2/3 and RGB-3).

Artifact: ``benchmarks/output/table3.txt``.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    GreedySetCoverFracturer,
    MatchingPursuitFracturer,
    ProtoEdaFracturer,
)
from repro.bench.runner import run_suite
from repro.bench.tables import format_table3
from repro.fracture.pipeline import (
    DEFAULT_PORTFOLIO,
    ModelBasedFracturer,
)


def _ours_coloring_only() -> ModelBasedFracturer:
    """The paper-faithful initializer mix: coloring-seeded entries only.

    The full default portfolio also contains a partition-seeded entry,
    which recovers the generated shapes' construction exactly (they are
    ρ-contours of K rectangles — a known weakness of such benchmarks);
    this variant isolates the published §3+§4 pipeline.
    """
    coloring_only = tuple(c for c in DEFAULT_PORTFOLIO if c.init == "coloring")
    fracturer = ModelBasedFracturer(portfolio=coloring_only)
    fracturer.name = "OURS-GC"
    return fracturer


_METHODS = {
    "GSC": GreedySetCoverFracturer,
    "MP": MatchingPursuitFracturer,
    "PROTO-EDA": ProtoEdaFracturer,
    "OURS-GC": _ours_coloring_only,
    "OURS": ModelBasedFracturer,
}

_suite_cache: dict = {}


def _run_method(name: str, shapes, spec):
    return run_suite(shapes, [_METHODS[name]()], spec)


@pytest.mark.parametrize("method", list(_METHODS))
def test_table3_method_runtime(benchmark, method, known_optimal_shapes, spec):
    """Wall time of one heuristic over the ten known-optimal clips."""
    result = benchmark.pedantic(
        _run_method, args=(method, known_optimal_shapes, spec),
        rounds=1, iterations=1,
    )
    _suite_cache[method] = result
    assert len(result.clips) == 10


def test_table3_assemble(benchmark, known_optimal_shapes, spec, output_dir):
    """Merge per-method results and emit the Table 3 artifact."""

    def assemble():
        from repro.bench.runner import ClipResult, SuiteResult

        merged = SuiteResult()
        for index, ko in enumerate(known_optimal_shapes):
            results = {}
            for method in _METHODS:
                suite = _suite_cache.get(method)
                if suite is None:
                    suite = _run_method(method, [ko], spec)
                    results.update(suite.clips[0].results)
                else:
                    results.update(suite.clips[index].results)
            merged.clips.append(
                ClipResult(
                    shape_name=ko.shape.name,
                    results=results,
                    optimal=ko.optimal_shots,
                )
            )
        return merged

    merged = benchmark.pedantic(assemble, rounds=1, iterations=1)
    table = format_table3(merged, methods=list(_METHODS))
    (output_dir / "table3.txt").write_text(table + "\n")
    print("\n" + table)

    ours = merged.sum_normalized("OURS")
    assert ours is not None
    assert ours >= 10.0  # can never beat the optimum on aggregate
    for method in ("GSC", "MP"):
        other = merged.sum_normalized(method)
        if other is not None:
            assert ours <= other + 1e-9, f"proposed method must beat {method}"
