"""Extension bench: SRAF clips — matching pursuit's home workload.

Not a paper table; quantifies the §1 discussion that MP was proposed
for "complex SRAF shapes" [13] while GSC targets "simpler OPC shapes"
[14].  On skinny assist bars MP's shot counts are competitive (unlike on
the ILT clips) even though its fixed-dose atoms still leave residual
violations; the proposed method stays feasible at comparable counts.

Artifact: ``benchmarks/output/sraf.txt``.
"""

from __future__ import annotations

import pytest

from repro.baselines import GreedySetCoverFracturer, MatchingPursuitFracturer
from repro.bench.runner import run_suite
from repro.bench.shapes import sraf_suite
from repro.fracture.pipeline import ModelBasedFracturer

_METHODS = {
    "MP": MatchingPursuitFracturer,
    "GSC": GreedySetCoverFracturer,
    "OURS": ModelBasedFracturer,
}

_cache: dict = {}


@pytest.mark.parametrize("method", list(_METHODS))
def test_sraf_method_runtime(benchmark, method, spec):
    shapes = sraf_suite()
    result = benchmark.pedantic(
        lambda: run_suite(shapes, [_METHODS[method]()], spec),
        rounds=1, iterations=1,
    )
    _cache[method] = result
    assert len(result.clips) == 5


def test_sraf_summary(benchmark, spec, output_dir):
    def assemble():
        lines = [f"{'clip':<8s}" + "".join(f"{m:>12s}" for m in _METHODS)]
        shapes = sraf_suite()
        for index, shape in enumerate(shapes):
            row = [f"{shape.name:<8s}"]
            for method in _METHODS:
                suite = _cache.get(method) or run_suite(
                    [shape], [_METHODS[method]()], spec
                )
                clip = suite.clips[index if method in _cache else 0]
                result = clip.results[method]
                mark = "" if result.feasible else f"*{result.report.total_failing}"
                row.append(f"{result.shot_count}{mark}".rjust(12))
            lines.append("".join(row))
        return "\n".join(lines)

    table = benchmark.pedantic(assemble, rounds=1, iterations=1)
    (output_dir / "sraf.txt").write_text(table + "\n")
    print("\n" + table)
    # The proposed method must be CD-clean on every SRAF clip.
    ours = _cache.get("OURS")
    if ours is not None:
        assert all(c.results["OURS"].feasible for c in ours.clips)
