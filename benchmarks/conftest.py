"""Shared benchmark fixtures: suites, spec, and artifact output dir.

Benchmarks double as the paper-reproduction harness: each table/figure
bench writes its regenerated artifact (plain-text table or SVG) under
``benchmarks/output/`` so EXPERIMENTS.md can reference stable files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.mask.constraints import FractureSpec

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def spec() -> FractureSpec:
    return FractureSpec()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def ilt_shapes():
    from repro.bench.shapes import ilt_suite

    return ilt_suite()


@pytest.fixture(scope="session")
def known_optimal_shapes(spec):
    from repro.bench.shapes import agb_suite, rgb_suite

    return agb_suite(spec) + rgb_suite(spec)
