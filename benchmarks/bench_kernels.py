"""Kernel benchmark: vectorized backend vs the scalar oracle paths.

Three sections, one per hot-spot kernel behind the ``repro.kernels``
seam:

* ``labeling`` — connected-component labeling on random / structured
  masks at growing sizes, vectorized run-length row-merge vs the pure
  Python union–find oracle (the contract requires ≥3x at 512²);
* ``pricing`` — the fused gather/scatter ``clamped_band_sums`` kernel
  vs per-candidate in-place scoring on synthetic contour-band batches,
  at a thin band size (fused regime) and a bulky one (loop regime —
  this is why ``fused_band_limit`` exists);
* ``stitch_crop`` — per-iteration cost-field work of a seam-band
  restricted ``RefinementState`` with the bbox crop (numpy backend) vs
  the full grid (scalar backend), on a long-bar layout whose seam is a
  narrow strip, so the work scales with seam area, not grid area.

Standalone by design (no pytest-benchmark): CI runs it non-gating and
uploads the JSON artifact.

    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --out benchmarks/output/BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.fracture.graph_color import approximate_fracture
from repro.fracture.state import RefinementState
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.kernels import get_backend, set_backend, use_backend
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- labeling ---------------------------------------------------------------

def _labeling_masks(size: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    iy, ix = np.indices((size, size))
    block = max(1, size // 64)
    coarse = rng.random((size // block + 1, size // block + 1)) < 0.5
    return {
        # p=0.5 noise: the adversarial many-component case.
        "random": rng.random((size, size)) < 0.5,
        # Chunky block noise: the realistic fractured-geometry case.
        "blocks": np.repeat(np.repeat(coarse, block, 0), block, 1)[:size, :size],
        # Diagonal stripes: long runs, few merges.
        "stripes": ((iy + ix) // 7) % 2 == 0,
    }


def bench_labeling(sizes: list[int], repeats: int) -> list[dict]:
    from repro.geometry.labeling import label_components_scalar

    with use_backend("numpy") as backend:
        rng = np.random.default_rng(20150607)
        results = []
        for size in sizes:
            for kind, mask in _labeling_masks(size, rng).items():
                backend.label_components(mask)  # warm-up (scipy import)
                vec = _best_of(lambda: backend.label_components(mask), repeats)
                scal = _best_of(lambda: label_components_scalar(mask), repeats)
                labels_v, count_v = backend.label_components(mask)
                labels_s, count_s = label_components_scalar(mask)
                entry = {
                    "size": size,
                    "kind": kind,
                    "components": int(count_v),
                    "scalar_ms": scal * 1e3,
                    "numpy_ms": vec * 1e3,
                    "speedup": scal / vec if vec > 0 else None,
                    "identical": bool(
                        count_v == count_s and np.array_equal(labels_v, labels_s)
                    ),
                }
                results.append(entry)
                print(
                    f"labeling {size}x{size} {kind}: {entry['speedup']:.2f}x "
                    f"({entry['scalar_ms']:.1f}ms -> {entry['numpy_ms']:.1f}ms, "
                    f"{count_v} components, identical={entry['identical']})"
                )
    return results


# -- pricing ----------------------------------------------------------------

def _loop_band_sums(row_vals, col_vals, rows, cols, y0, x0, col_off, sign, base):
    """Per-candidate in-place scoring — the fallback side of the adaptive
    dispatch in ``RefinementState._price_edge_moves_fused``."""
    out = np.zeros(rows.shape[0], dtype=np.float64)
    r_off = 0
    for i in range(rows.shape[0]):
        h, w = int(rows[i]), int(cols[i])
        rv = row_vals[r_off:r_off + h]
        cv = col_vals[col_off[i]:col_off[i] + w]
        r_off += h
        window = (slice(y0[i], y0[i] + h), slice(x0[i], x0[i] + w))
        patch = rv[:, None] * cv[None, :]
        patch *= sign[window]
        patch += base[window]
        np.maximum(patch, 0.0, out=patch)
        out[i] = patch.sum()
    return out


def bench_pricing(repeats: int) -> list[dict]:
    rng = np.random.default_rng(20150608)
    grid = 512
    sign = rng.choice(np.array([-1.0, 0.0, 1.0]), size=(grid, grid))
    base = rng.normal(scale=0.2, size=(grid, grid))
    backend = set_backend("numpy")
    results = []
    for label, (h, w, ncand) in {
        "thin_band": (8, 8, 200),       # seam/contour regime: fused wins
        "bulky_window": (40, 40, 200),  # whole-window regime: loop wins
    }.items():
        rows = np.full(ncand, h, dtype=np.int64)
        cols = np.full(ncand, w, dtype=np.int64)
        y0 = rng.integers(0, grid - h, ncand).astype(np.int64)
        x0 = rng.integers(0, grid - w, ncand).astype(np.int64)
        col_off = (np.cumsum(cols) - cols).astype(np.int64)
        row_vals = rng.normal(size=int(rows.sum()))
        col_vals = rng.normal(size=int(cols.sum()))
        args = (row_vals, col_vals, rows, cols, y0, x0, col_off, sign, base)
        backend.clamped_band_sums(*args)  # warm-up
        fused = _best_of(lambda: backend.clamped_band_sums(*args), repeats)
        loop = _best_of(lambda: _loop_band_sums(*args), repeats)
        elems = h * w
        limit = backend.fused_band_limit
        entry = {
            "case": label,
            "candidates": ncand,
            "elements_per_candidate": elems,
            "loop_ms": loop * 1e3,
            "fused_ms": fused * 1e3,
            "fused_speedup": loop / fused if fused > 0 else None,
            "identical": bool(
                np.array_equal(
                    backend.clamped_band_sums(*args), _loop_band_sums(*args)
                )
            ),
            "dispatch": (
                "fused" if limit is None or elems <= limit else "loop"
            ),
        }
        results.append(entry)
        print(
            f"pricing {label} ({elems} el/cand): fused {entry['fused_speedup']:.2f}x "
            f"vs loop ({entry['loop_ms']:.2f}ms -> {entry['fused_ms']:.2f}ms), "
            f"identical={entry['identical']}, "
            f"adaptive dispatch picks: {entry['dispatch']}"
        )
    return results


# -- stitch crop ------------------------------------------------------------

def _long_bar(spec: FractureSpec, length: float = 1200.0, width: float = 60.0):
    polygon = Polygon(
        [Point(0, 0), Point(length, 0), Point(length, width), Point(0, width)]
    )
    return MaskShape.from_polygon(
        polygon, pitch=spec.pitch, margin=spec.grid_margin, name="long-bar"
    )


def bench_stitch_crop(repeats: int, iters: int = 20) -> dict:
    spec = FractureSpec()
    shape = _long_bar(spec)
    shots, _ = approximate_fracture(shape, spec)
    ny, nx = shape.grid.shape
    # A single interior seam band: the 1-D-tiling stitch shape, where
    # the bbox crop pays off (2-D seam lattices cross the whole grid).
    mask = np.zeros((ny, nx), dtype=bool)
    mid = nx // 2
    mask[:, mid - 20:mid + 20] = True

    def field_pass(state: RefinementState) -> None:
        for _ in range(iters):
            state._refresh_cost_base(None)
            state.cost_integral()
            state.active_integral()

    walls = {}
    for name in ("numpy", "scalar"):
        with use_backend(name):
            state = RefinementState(shape, spec, shots, active_mask=mask)
            field_pass(state)  # warm-up
            walls[name] = _best_of(lambda: field_pass(state), repeats)
    grid_px = int(mask.size)
    seam_px = int(np.count_nonzero(mask))
    rows = np.flatnonzero(mask.any(axis=1))
    cols = np.flatnonzero(mask.any(axis=0))
    bbox_px = int((rows[-1] - rows[0] + 1) * (cols[-1] - cols[0] + 1))
    entry = {
        "grid_px": grid_px,
        "seam_px": seam_px,
        "bbox_px": bbox_px,
        "bbox_fraction": bbox_px / grid_px,
        "iterations": iters,
        "full_ms": walls["scalar"] * 1e3,
        "cropped_ms": walls["numpy"] * 1e3,
        "speedup": walls["scalar"] / walls["numpy"],
    }
    print(
        f"stitch crop: {entry['speedup']:.2f}x per-iteration field work "
        f"({entry['full_ms']:.1f}ms -> {entry['cropped_ms']:.1f}ms for "
        f"{iters} iterations; bbox {bbox_px}px = "
        f"{entry['bbox_fraction']:.1%} of {grid_px}px grid)"
    )
    return entry


def run(repeats: int) -> dict:
    labeling = bench_labeling([128, 256, 512], repeats)
    pricing = bench_pricing(repeats)
    stitch = bench_stitch_crop(repeats)
    at512 = [r for r in labeling if r["size"] == 512]
    aggregate = {
        "labeling_min_speedup_512": min(r["speedup"] for r in at512),
        "labeling_all_identical": all(r["identical"] for r in labeling),
        "pricing_all_identical": all(r["identical"] for r in pricing),
        "fused_thin_band_speedup": next(
            r["fused_speedup"] for r in pricing if r["case"] == "thin_band"
        ),
        "stitch_crop_speedup": stitch["speedup"],
    }
    print(
        f"aggregate: labeling >= {aggregate['labeling_min_speedup_512']:.2f}x "
        f"at 512², fused thin-band {aggregate['fused_thin_band_speedup']:.2f}x, "
        f"stitch crop {aggregate['stitch_crop_speedup']:.2f}x"
    )
    return {
        "benchmark": "kernels",
        "baseline": "scalar backend (pure-Python union-find, per-candidate "
                    "loop scoring, full-grid stitch fields)",
        "backend": get_backend().name,
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "labeling": labeling,
        "pricing": pricing,
        "stitch_crop": stitch,
        "aggregate": aggregate,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing runs per case; best wall time wins",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/output/BENCH_kernels.json")
    )
    args = parser.parse_args()
    payload = run(args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
