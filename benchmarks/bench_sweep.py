"""Parameter-sensitivity sweeps around the paper's operating point.

The paper evaluates at a single setting (γ = 2 nm, σ = 6.25 nm,
L_min = 10 nm).  These sweeps show how shot count responds to each knob
on a fixed clip — the sanity curves a mask shop would want before
adopting the flow:

* **γ sweep** — a wider CD tolerance gives the cover more slack; shot
  count must be non-increasing (within heuristic noise).
* **L_min sweep** — a larger minimum shot size removes the small patch
  shots; count tends down but feasibility gets harder.
* **σ sweep** — more blur rounds corners further, changing L_th and the
  whole corner-point geometry.

Artifact: ``benchmarks/output/sweeps.txt``.
"""

from __future__ import annotations

from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams
from repro.mask.constraints import FractureSpec

_CONFIG = RefineConfig(params=RefineParams(nmax=400, nh=3))


def _fracture(shape, spec):
    result = ModelBasedFracturer(config=_CONFIG).fracture(shape, spec)
    return result.shot_count, result.report.total_failing


def test_gamma_sweep(benchmark, ilt_shapes, output_dir):
    shape = ilt_shapes[0]

    def sweep():
        rows = []
        for gamma in (1.0, 2.0, 3.0, 4.0):
            spec = FractureSpec(gamma=gamma)
            shots, failing = _fracture(shape, spec)
            rows.append((gamma, shots, failing))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["gamma sweep (ILT-1)", "gamma  shots  failing"]
    lines += [f"{g:5.1f}  {s:5d}  {f:7d}" for g, s, f in rows]
    _append(output_dir, lines)
    # Wider tolerance never needs *more* shots (allow 1 for heuristic noise).
    tightest = rows[0][1]
    loosest = rows[-1][1]
    assert loosest <= tightest + 1


def test_lmin_sweep(benchmark, ilt_shapes, output_dir):
    shape = ilt_shapes[0]

    def sweep():
        rows = []
        for lmin in (8.0, 10.0, 14.0, 18.0):
            spec = FractureSpec(lmin=lmin)
            shots, failing = _fracture(shape, spec)
            rows.append((lmin, shots, failing))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["lmin sweep (ILT-1)", " lmin  shots  failing"]
    lines += [f"{l:5.1f}  {s:5d}  {f:7d}" for l, s, f in rows]
    _append(output_dir, lines)
    assert all(s >= 1 for _, s, _ in rows)


def test_sigma_sweep(benchmark, ilt_shapes, output_dir):
    shape = ilt_shapes[0]

    def sweep():
        rows = []
        for sigma in (4.0, 6.25, 9.0):
            spec = FractureSpec(sigma=sigma)
            shots, failing = _fracture(shape, spec)
            rows.append((sigma, shots, failing, spec.lth))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["sigma sweep (ILT-1)", "sigma  shots  failing    Lth"]
    lines += [f"{sg:5.2f}  {s:5d}  {f:7d}  {lth:5.1f}" for sg, s, f, lth in rows]
    _append(output_dir, lines)
    # L_th grows with sigma — the corner-rounding lever gets stronger.
    assert rows[0][3] < rows[-1][3]


def _append(output_dir, lines: list[str]) -> None:
    path = output_dir / "sweeps.txt"
    existing = path.read_text() if path.exists() else ""
    path.write_text(existing + "\n".join(lines) + "\n\n")
