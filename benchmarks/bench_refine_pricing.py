"""Refinement pricing benchmark: batched engine vs the pre-engine baseline.

Runs the full refinement loop on the ILT bench clips twice — once with
the ``"legacy"`` pricing engine (the pre-batching code path, preserved
verbatim, with the profile cache disabled) and once with the default
``"batched"`` engine — and reports, per clip and aggregated:

* candidates priced per second inside the pricing phase (from the
  ``refine.candidates_priced`` counter and the ``pricing`` span);
* end-to-end ``refine`` span wall time (what ``trace summarize`` calls
  the refine phase);
* final shot counts of both engines (they must match — the engines
  accept the same moves).

Standalone by design (no pytest-benchmark): CI runs it non-gating and
uploads the JSON artifact.

    PYTHONPATH=src python benchmarks/bench_refine_pricing.py \
        --nmax 60 --out benchmarks/output/BENCH_refine.json
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.bench.shapes import ilt_suite
from repro.ebeam.intensity_map import profile_caching
from repro.fracture.edge_adjust import pricing_engine
from repro.fracture.graph_color import approximate_fracture
from repro.fracture.refine import RefineParams, refine
from repro.mask.constraints import FractureSpec
from repro.obs import TelemetryRecorder, phase_breakdown, recording


def _phase_wall(payload: dict, phase: str) -> float:
    for entry in phase_breakdown(payload):
        if entry["phase"] == phase:
            return entry["wall_s"]
    return 0.0


def _run_engine(shape, spec, initial, nmax: int, engine: str) -> dict:
    recorder = TelemetryRecorder()
    with recording(recorder):
        if engine == "legacy":
            with profile_caching(False), pricing_engine("legacy"):
                shots, trace = refine(shape, spec, initial, RefineParams(nmax=nmax))
        else:
            shots, trace = refine(shape, spec, initial, RefineParams(nmax=nmax))
    payload = recorder.export()
    priced = recorder.counters.get("refine.candidates_priced", 0)
    pricing_wall = _phase_wall(payload, "pricing")
    return {
        "engine": engine,
        "refine_wall_s": _phase_wall(payload, "refine"),
        "pricing_wall_s": pricing_wall,
        "candidates_priced": int(priced),
        "candidates_per_s": priced / pricing_wall if pricing_wall > 0 else 0.0,
        "final_shots": len(shots),
        "final_cost": trace.cost_history[-1] if trace.cost_history else None,
        "iterations": trace.iterations,
        "profile_cache_hits": int(
            recorder.counters.get("cache.profile.hits", 0)
        ),
        "profile_cache_misses": int(
            recorder.counters.get("cache.profile.misses", 0)
        ),
    }


def run(nmax: int, clips: list[int] | None, repeats: int) -> dict:
    spec = FractureSpec()
    suite = ilt_suite()
    if clips:
        suite = [suite[i] for i in clips]
    results = []
    for shape in suite:
        initial, _ = approximate_fracture(shape, spec)
        # Best-of-N wall times: the box noise is large relative to the
        # per-clip runtime, and minima compare steady-state code speed.
        legacy = min(
            (_run_engine(shape, spec, initial, nmax, "legacy") for _ in range(repeats)),
            key=lambda r: r["refine_wall_s"],
        )
        batched = min(
            (_run_engine(shape, spec, initial, nmax, "batched") for _ in range(repeats)),
            key=lambda r: r["refine_wall_s"],
        )
        entry = {
            "clip": shape.name,
            "initial_shots": len(initial),
            "legacy": legacy,
            "batched": batched,
            "pricing_speedup": (
                batched["candidates_per_s"] / legacy["candidates_per_s"]
                if legacy["candidates_per_s"]
                else None
            ),
            "refine_wall_speedup": (
                legacy["refine_wall_s"] / batched["refine_wall_s"]
                if batched["refine_wall_s"]
                else None
            ),
            "shots_match": legacy["final_shots"] == batched["final_shots"],
        }
        results.append(entry)
        print(
            f"{shape.name}: pricing {entry['pricing_speedup']:.2f}x "
            f"({legacy['candidates_per_s']:.0f} -> {batched['candidates_per_s']:.0f} cand/s), "
            f"refine wall {entry['refine_wall_speedup']:.2f}x "
            f"({legacy['refine_wall_s']:.3f}s -> {batched['refine_wall_s']:.3f}s), "
            f"shots {legacy['final_shots']} vs {batched['final_shots']}"
        )
    total_priced_l = sum(r["legacy"]["candidates_priced"] for r in results)
    total_priced_b = sum(r["batched"]["candidates_priced"] for r in results)
    total_pricing_l = sum(r["legacy"]["pricing_wall_s"] for r in results)
    total_pricing_b = sum(r["batched"]["pricing_wall_s"] for r in results)
    total_wall_l = sum(r["legacy"]["refine_wall_s"] for r in results)
    total_wall_b = sum(r["batched"]["refine_wall_s"] for r in results)
    aggregate = {
        "pricing_speedup": (total_priced_b / total_pricing_b)
        / (total_priced_l / total_pricing_l),
        "refine_wall_speedup": total_wall_l / total_wall_b,
        "legacy_candidates_per_s": total_priced_l / total_pricing_l,
        "batched_candidates_per_s": total_priced_b / total_pricing_b,
        "all_shots_match": all(r["shots_match"] for r in results),
    }
    print(
        f"aggregate: pricing {aggregate['pricing_speedup']:.2f}x, "
        f"refine wall {aggregate['refine_wall_speedup']:.2f}x, "
        f"shots match: {aggregate['all_shots_match']}"
    )
    return {
        "benchmark": "refine_pricing",
        "baseline": "legacy engine (pre-batching pricing path), profile cache off",
        "nmax": nmax,
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "clips": results,
        "aggregate": aggregate,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nmax", type=int, default=60)
    parser.add_argument(
        "--clips", type=int, nargs="*", default=None,
        help="indices into the ILT suite (default: all clips)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per engine per clip; best wall time wins",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/output/BENCH_refine.json")
    )
    args = parser.parse_args()
    payload = run(args.nmax, args.clips, args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
