"""Tiled-executor benchmark: 2-D halo tiles + seam-band stitch vs the
pre-refactor windowed fracturer.

Generates deterministic synthetic "chip" layouts — rows of rectangular
bars crossing tile seams plus isolated contact islands — sized in tile
units, then sweeps tile-grid size × worker count and reports per config:

* end-to-end wall time of the tiled executor;
* stitch iterations and the ``windowed.stitch_candidates_priced``
  counter (the seam-band restriction evidence: priced candidates scale
  with seam area, not chip area);
* shot count and failing pixels, with the per-component *direct*
  fracture (no tiling) as the shot-count reference;
* a determinism check — workers=4 must reproduce workers=1 exactly.

Each layout is also run through :class:`LegacyWindowedFracturer`
(serial 1-D slabs, largest-component extraction, full-grid stitch) —
the baseline this refactor replaces.  The legacy path both drops
isolated components (its stitch must rebuild them shot by shot) and
prices every shot against the whole grid, which is where the tiled
executor's wall-time win comes from.

Standalone by design (no pytest-benchmark): CI runs it non-gating and
uploads the JSON artifact.

    PYTHONPATH=src python benchmarks/bench_windowed.py \
        --out benchmarks/output/BENCH_windowed.json
    PYTHONPATH=src python benchmarks/bench_windowed.py --reduced ...
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams
from repro.fracture.runtime import RuntimePolicy
from repro.fracture.windowed import LegacyWindowedFracturer, WindowedFracturer
from repro.geometry.labeling import component_masks
from repro.geometry.raster import PixelGrid
from repro.mask.constraints import FractureSpec, check_solution
from repro.mask.shape import MaskShape
from repro.obs import TelemetryRecorder, recording

TILE_NM = 300.0
_MARGIN = 40  # grid padding (px) ≥ FractureSpec.grid_margin for defaults


def chip_shape(tiles_x: int, tiles_y: int, pitch: float = 1.0) -> MaskShape:
    """A deterministic multi-component layout spanning a tile grid.

    Rows of bar segments (40 nm tall, staggered so segments cross the
    vertical seams at x = k·TILE_NM) alternate with rows of isolated
    contact islands.  Every component is rectangular, so tile
    sub-problems converge quickly and the benchmark measures the
    executor, not the inner method's convergence struggles.
    """
    width = int(tiles_x * TILE_NM)
    height = int(tiles_y * TILE_NM)
    grid = PixelGrid(
        0.0, 0.0, pitch, width + 2 * _MARGIN, height + 2 * _MARGIN
    )
    mask = np.zeros(grid.shape, dtype=bool)
    bar_h, island = 40, 26
    row_pitch = 75
    row = 0
    y = _MARGIN + 20
    while y + bar_h <= _MARGIN + height - 10:
        if row % 2 == 0:
            # Bar segments ~250 nm long, staggered by row so several
            # cross each seam line.
            seg, gap = 250, 40
            x = _MARGIN + 10 + (row // 2 % 3) * 90
            while x < _MARGIN + width - 30:
                x_hi = min(x + seg, _MARGIN + width - 10)
                if x_hi - x >= 30:
                    mask[y : y + bar_h, x:x_hi] = True
                x = x_hi + gap
        else:
            # Contact islands between the bar rows.
            x = _MARGIN + 45 + (row % 3) * 60
            while x + island < _MARGIN + width - 30:
                mask[y : y + island, x : x + island] = True
                x += 170
        y += row_pitch
        row += 1
    return MaskShape.from_mask(mask, grid, name=f"chip-{tiles_x}x{tiles_y}")


def _inner(nmax: int) -> ModelBasedFracturer:
    return ModelBasedFracturer(
        config=RefineConfig(params=RefineParams(nmax=nmax, nh=3))
    )


def _direct_reference(shape: MaskShape, spec: FractureSpec, nmax: int) -> dict:
    """Per-component direct fracture — no tiling, no stitch.

    The inner fracturers expect single-polygon problems, so the direct
    reference fractures each connected component on the full grid and
    concatenates.  This is both the shot-count reference and the serial
    no-decomposition wall-time reference.
    """
    inner = _inner(nmax)
    grid = shape.grid
    shots = []
    start = time.perf_counter()
    for k, component in enumerate(component_masks(shape.inside)):
        sub = MaskShape.from_mask(component, grid, name=f"{shape.name}#{k}")
        shots.extend(inner.fracture_shots(sub, spec))
    wall = time.perf_counter() - start
    report = check_solution(shots, shape, spec)
    return {
        "wall_s": wall,
        "shots": len(shots),
        "failing": report.total_failing,
        "components": k + 1,
    }


def _run_tiled(
    shape: MaskShape, spec: FractureSpec, nmax: int, workers: int
) -> tuple[list, dict]:
    fracturer = WindowedFracturer(
        _inner(nmax), window_nm=TILE_NM, workers=workers
    )
    recorder = TelemetryRecorder()
    start = time.perf_counter()
    with recording(recorder):
        shots = fracturer.fracture_shots(shape, spec)
    wall = time.perf_counter() - start
    report = check_solution(shots, shape, spec)
    extra = fracturer._last_extra
    return shots, {
        "workers": workers,
        "wall_s": wall,
        "shots": len(shots),
        "failing": report.total_failing,
        "feasible": report.total_failing == 0,
        "tiles": extra.get("tiles"),
        "stitch_iterations": extra.get("stitch_iterations"),
        "stitch_converged": extra.get("stitch_converged"),
        "stitch_candidates_priced": int(
            recorder.counters.get("windowed.stitch_candidates_priced", 0)
        ),
        "seam_shots": extra.get("seam_shots"),
        "frozen_shots": extra.get("frozen_shots"),
        "full_repair": extra.get("full_repair", False),
    }


def _run_legacy(shape: MaskShape, spec: FractureSpec, nmax: int) -> dict:
    fracturer = LegacyWindowedFracturer(_inner(nmax), window_nm=TILE_NM)
    recorder = TelemetryRecorder()
    start = time.perf_counter()
    with recording(recorder):
        shots = fracturer.fracture_shots(shape, spec)
    wall = time.perf_counter() - start
    report = check_solution(shots, shape, spec)
    extra = fracturer._last_extra
    return {
        "wall_s": wall,
        "shots": len(shots),
        "failing": report.total_failing,
        "feasible": report.total_failing == 0,
        "slabs": extra.get("slabs"),
        "stitch_iterations": extra.get("stitch_iterations"),
        "stitch_candidates_priced": int(
            recorder.counters.get("refine.candidates_priced", 0)
        ),
    }


def _fault_layer_overhead(
    shape: MaskShape, spec: FractureSpec, nmax: int, repeats: int = 3
) -> dict:
    """Cost of the fault layer's optional features on a fault-free run.

    Compares a plain serial tiled run against the same run with the
    per-tile JSONL checkpoint journal enabled (the priciest optional
    feature: one fsync'd append per tile).  Best-of-``repeats`` wall
    time each; the acceptance bar is < 3% overhead.
    """
    import tempfile

    def best(fracturer: WindowedFracturer) -> float:
        walls = []
        for _ in range(repeats):
            start = time.perf_counter()
            fracturer.fracture_shots(shape, spec)
            walls.append(time.perf_counter() - start)
        return min(walls)

    plain_wall = best(WindowedFracturer(_inner(nmax), window_nm=TILE_NM))
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        guarded_wall = best(
            WindowedFracturer(
                _inner(nmax), window_nm=TILE_NM,
                runtime=RuntimePolicy(checkpoint_dir=checkpoint_dir),
            )
        )
    return {
        "plain_wall_s": plain_wall,
        "checkpointed_wall_s": guarded_wall,
        "overhead_fraction": guarded_wall / plain_wall - 1.0,
    }


def _streaming_overhead(
    shape: MaskShape, spec: FractureSpec, nmax: int, repeats: int = 3
) -> dict:
    """Cost of live telemetry streaming + worker heartbeats.

    Compares a pooled tiled run against the identical run with a
    :class:`TelemetryStream` attached to the recorder (every span/event/
    convergence record written live to JSONL) and the worker heartbeat
    channel enabled.  Best-of-``repeats`` wall time each; the acceptance
    bar is < 5% overhead, and the merged shot list must be bit-identical
    with streaming on and off.
    """
    import tempfile

    from repro.obs import TelemetryStream

    def best(stream_dir: str | None) -> tuple[float, list]:
        walls = []
        shots: list = []
        for i in range(repeats):
            fracturer = WindowedFracturer(
                _inner(nmax), window_nm=TILE_NM, workers=2,
                runtime=RuntimePolicy(
                    heartbeat_s=0.25 if stream_dir is not None else None
                ),
            )
            stream = (
                TelemetryStream(Path(stream_dir) / f"run{i}.jsonl")
                if stream_dir is not None
                else None
            )
            recorder = TelemetryRecorder(stream=stream)
            start = time.perf_counter()
            with recording(recorder):
                shots = fracturer.fracture_shots(shape, spec)
            walls.append(time.perf_counter() - start)
            if stream is not None:
                stream.close()
        return min(walls), shots

    plain_wall, plain_shots = best(None)
    with tempfile.TemporaryDirectory() as stream_dir:
        streamed_wall, streamed_shots = best(stream_dir)
    return {
        "plain_wall_s": plain_wall,
        "streamed_wall_s": streamed_wall,
        "overhead_fraction": streamed_wall / plain_wall - 1.0,
        "bit_identical_shots": streamed_shots == plain_shots,
    }


def _tracing_overhead(
    shape: MaskShape, spec: FractureSpec, nmax: int, repeats: int = 3
) -> dict:
    """Marginal cost of trace correlation itself.

    Both sides run the full observability stack — live stream, worker
    heartbeats, per-tile checkpoint journal, pooled workers — so the
    comparison isolates exactly what trace propagation adds: minting a
    :class:`TraceContext`, threading it through the runtime into the
    pool initializers, and stamping every stream record, heartbeat and
    journal line with the trace_id.  (The stack's own cost is measured
    separately by the fault-layer and streaming phases.)  Best of
    ``repeats`` wall time each; the acceptance bar is < 5% overhead,
    and the merged shot list must be bit-identical with tracing on and
    off.
    """
    import tempfile

    from repro.obs import TelemetryStream, mint_trace

    def best(work_dir: str, tag: str, traced: bool) -> tuple[float, list]:
        walls = []
        shots: list = []
        for i in range(repeats):
            trace = mint_trace() if traced else None
            fracturer = WindowedFracturer(
                _inner(nmax), window_nm=TILE_NM, workers=2,
                runtime=RuntimePolicy(
                    heartbeat_s=0.25,
                    checkpoint_dir=str(Path(work_dir) / f"ckpt-{tag}{i}"),
                    trace=trace.to_dict() if trace else None,
                ),
            )
            stream = TelemetryStream(
                Path(work_dir) / f"run-{tag}{i}.jsonl",
                trace_id=trace.trace_id if trace else None,
            )
            recorder = TelemetryRecorder(
                stream=stream, trace=trace.to_dict() if trace else None
            )
            start = time.perf_counter()
            with recording(recorder):
                shots = fracturer.fracture_shots(shape, spec)
            walls.append(time.perf_counter() - start)
            stream.close()
        return min(walls), shots

    with tempfile.TemporaryDirectory() as work_dir:
        plain_wall, plain_shots = best(work_dir, "plain", traced=False)
        traced_wall, traced_shots = best(work_dir, "traced", traced=True)
    return {
        "plain_wall_s": plain_wall,
        "traced_wall_s": traced_wall,
        "overhead_fraction": traced_wall / plain_wall - 1.0,
        "bit_identical_shots": traced_shots == plain_shots,
    }


def run(grids: list[tuple[int, int]], workers: list[int], nmax: int) -> dict:
    spec = FractureSpec()
    layouts = []
    for tiles_x, tiles_y in grids:
        shape = chip_shape(tiles_x, tiles_y)
        print(f"== {shape.name}: grid {shape.grid.ny}x{shape.grid.nx} px ==")
        direct = _direct_reference(shape, spec, nmax)
        print(
            f"   direct: {direct['wall_s']:.2f}s, {direct['shots']} shots, "
            f"{direct['components']} components, failing {direct['failing']}"
        )
        legacy = _run_legacy(shape, spec, nmax)
        print(
            f"   legacy: {legacy['wall_s']:.2f}s, {legacy['shots']} shots, "
            f"failing {legacy['failing']} "
            f"({legacy['stitch_candidates_priced']} stitch candidates)"
        )
        runs = []
        baseline_shots: list | None = None
        deterministic = True
        for w in workers:
            shots, entry = _run_tiled(shape, spec, nmax, w)
            entry["shot_delta_vs_direct"] = entry["shots"] - direct["shots"]
            entry["speedup_vs_legacy"] = (
                legacy["wall_s"] / entry["wall_s"] if entry["wall_s"] else None
            )
            if baseline_shots is None:
                baseline_shots = shots
            elif shots != baseline_shots:
                deterministic = False
            runs.append(entry)
            print(
                f"   tiled w={w}: {entry['wall_s']:.2f}s "
                f"({entry['speedup_vs_legacy']:.2f}x vs legacy), "
                f"{entry['shots']} shots (Δ{entry['shot_delta_vs_direct']:+d} "
                f"vs direct), failing {entry['failing']}, "
                f"stitch {entry['stitch_iterations']} iters / "
                f"{entry['stitch_candidates_priced']} candidates"
            )
        layouts.append({
            "layout": shape.name,
            "tiles_x": tiles_x,
            "tiles_y": tiles_y,
            "grid_px": list(shape.grid.shape),
            "direct": direct,
            "legacy": legacy,
            "tiled": runs,
            "deterministic_across_workers": deterministic,
        })
    overhead = _fault_layer_overhead(
        chip_shape(*grids[0]), spec, nmax
    )
    print(
        f"fault layer (checkpoint journal on, fault-free): "
        f"{overhead['overhead_fraction']:+.1%} vs plain"
    )
    streaming = _streaming_overhead(chip_shape(*grids[0]), spec, nmax)
    print(
        f"streaming (live stream + heartbeats, workers=2): "
        f"{streaming['overhead_fraction']:+.1%} vs plain, "
        f"bit-identical shots {streaming['bit_identical_shots']}"
    )
    tracing = _tracing_overhead(chip_shape(*grids[0]), spec, nmax)
    print(
        f"tracing (full obs stack, trace on vs off, workers=2): "
        f"{tracing['overhead_fraction']:+.1%}, "
        f"bit-identical shots {tracing['bit_identical_shots']}"
    )
    # Hard acceptance bars for the correlation layer: stamping ids must
    # never change shots and must stay in the noise (< 5%).
    assert tracing["bit_identical_shots"], \
        "trace propagation changed the merged shot list"
    assert tracing["overhead_fraction"] < 0.05, (
        f"trace propagation overhead {tracing['overhead_fraction']:+.1%} "
        f"exceeds the 5% bar"
    )
    aggregate = {
        "fault_layer": overhead,
        "streaming": streaming,
        "tracing": tracing,
        "all_tiled_feasible": all(
            r["feasible"] for lay in layouts for r in lay["tiled"]
        ),
        "all_deterministic": all(
            lay["deterministic_across_workers"] for lay in layouts
        ),
        "max_speedup_vs_legacy": max(
            r["speedup_vs_legacy"] for lay in layouts for r in lay["tiled"]
        ),
        "max_abs_shot_delta_vs_direct": max(
            abs(r["shot_delta_vs_direct"])
            for lay in layouts
            for r in lay["tiled"]
        ),
    }
    print(
        f"aggregate: max speedup {aggregate['max_speedup_vs_legacy']:.2f}x, "
        f"feasible {aggregate['all_tiled_feasible']}, "
        f"deterministic {aggregate['all_deterministic']}"
    )
    return {
        "benchmark": "windowed_tiled_executor",
        "baseline": (
            "LegacyWindowedFracturer: serial 1-D slabs, largest-component "
            "extraction, full-grid stitch"
        ),
        "tile_nm": TILE_NM,
        "inner_nmax": nmax,
        "workers": workers,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "layouts": layouts,
        "aggregate": aggregate,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI-sized sweep: one layout, workers 1 and 2",
    )
    parser.add_argument("--nmax", type=int, default=120)
    parser.add_argument(
        "--out", type=Path,
        default=Path("benchmarks/output/BENCH_windowed.json"),
    )
    args = parser.parse_args()
    if args.reduced:
        grids = [(3, 1)]
        workers = [1, 2]
    else:
        grids = [(2, 1), (3, 1), (3, 2)]
        workers = [1, 4]
    payload = run(grids, workers, args.nmax)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
