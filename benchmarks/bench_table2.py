"""Regenerate paper Table 2: ten real-ILT-style clips, four methods.

Paper reference (Table 2): per-clip shot count + runtime for GSC, MP,
PROTO-EDA and the proposed method, LB/UB columns, and the "Sum of
Normalized Shot Count wrt Upper Bound" summary row.  Expected shape of
the result (not absolute numbers — the workload is synthetic): the
proposed method has the lowest normalized sum, PROTO-EDA ~20-25 % more
shots, MP ~45 % more and the slowest per-shot runtime among the
model-based heuristics, GSC worst-or-near-worst in shots but fastest.

Each method is one pytest-benchmark case measuring its full-suite wall
time; the table itself is assembled once and written to
``benchmarks/output/table2.txt``.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    GreedySetCoverFracturer,
    MatchingPursuitFracturer,
    ProtoEdaFracturer,
)
from repro.bench.bounds import lower_bound_shots
from repro.bench.runner import run_suite
from repro.bench.tables import format_table2
from repro.fracture.pipeline import ModelBasedFracturer

_METHODS = {
    "GSC": GreedySetCoverFracturer,
    "MP": MatchingPursuitFracturer,
    "PROTO-EDA": ProtoEdaFracturer,
    "OURS": ModelBasedFracturer,
}

_suite_cache: dict = {}


def _run_method(name: str, shapes, spec):
    fracturer = _METHODS[name]()
    return run_suite(shapes, [fracturer], spec)


@pytest.mark.parametrize("method", list(_METHODS))
def test_table2_method_runtime(benchmark, method, ilt_shapes, spec):
    """Wall time of one heuristic over the full ILT-10 suite."""
    result = benchmark.pedantic(
        _run_method, args=(method, ilt_shapes, spec), rounds=1, iterations=1
    )
    _suite_cache[method] = result
    assert len(result.clips) == len(ilt_shapes)


def test_table2_assemble(benchmark, ilt_shapes, spec, output_dir):
    """Merge per-method results, add LB/UB, emit the Table 2 artifact."""

    def assemble():
        from repro.bench.runner import ClipResult, SuiteResult
        from repro.bench.bounds import upper_bound_shots

        merged = SuiteResult()
        for index, shape in enumerate(ilt_shapes):
            results = {}
            for method in _METHODS:
                suite = _suite_cache.get(method)
                if suite is None:  # method bench was deselected
                    suite = _run_method(method, [shape], spec)
                    results.update(suite.clips[0].results)
                else:
                    results.update(suite.clips[index].results)
            clip = ClipResult(shape_name=shape.name, results=results)
            clip.lower_bound = lower_bound_shots(shape, spec)
            clip.upper_bound = upper_bound_shots(list(results.values()))
            merged.clips.append(clip)
        return merged

    merged = benchmark.pedantic(assemble, rounds=1, iterations=1)
    table = format_table2(merged, methods=list(_METHODS))
    (output_dir / "table2.txt").write_text(table + "\n")
    print("\n" + table)

    # The paper's headline orderings must hold on the regenerated table.
    # Raw totals are not comparable across feasibility levels (an
    # infeasible solution can be arbitrarily small), so the checks are
    # on normalized sums and CD-cleanliness.
    ours = merged.sum_normalized("OURS")
    assert ours is not None
    for other in ("PROTO-EDA", "MP", "GSC"):
        other_sum = merged.sum_normalized(other)
        assert other_sum is None or ours <= other_sum, (
            f"proposed method must beat {other}"
        )

    def feasible_clips(method: str) -> int:
        return sum(
            1 for clip in merged.clips if clip.results[method].feasible
        )

    assert feasible_clips("OURS") == max(
        feasible_clips(m) for m in _METHODS
    ), "proposed method must be the most often CD-clean"
