"""LUT-resolution sweep: erf table size vs accuracy vs refinement cost.

The refinement loop evaluates every candidate edge move through the
shared :class:`ErfLookupTable` (paper §4.1), memoized per (axis, lo, hi,
window) by the :class:`IntensityMap` profile cache.  This sweep re-runs
the same refinement under tables of decreasing resolution and reports,
per ``(bound, samples)`` config:

* the table's worst interpolation error (``max_abs_error``);
* refinement wall time, final shot count and cost;
* whether the shot list is bit-identical to the reference table's
  (20001 samples — the production default);
* the ``cache.profile.hits`` / ``_misses`` / ``lut_hits``
  counters, which show how the profile cache shields the LUT: the
  number of *table interpolations* per run is set by cache misses, not
  by candidates priced, so table resolution is a memory/accuracy trade
  rather than a throughput one.

Every config result is also emitted as a ``lut_config`` event through a
live :class:`TelemetryStream` (``--stream``, default alongside the JSON
output), so ``trace tail`` can watch the sweep and ``trace diff`` can
compare two sweeps.

    PYTHONPATH=src python benchmarks/bench_lut_sweep.py \
        --out benchmarks/output/BENCH_lut_sweep.json
    PYTHONPATH=src python benchmarks/bench_lut_sweep.py --reduced ...
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.bench.shapes import ilt_suite
from repro.ebeam.lut import ErfLookupTable, set_default_lut
from repro.fracture.graph_color import approximate_fracture
from repro.fracture.refine import RefineParams, refine
from repro.mask.constraints import FractureSpec
from repro.obs import TelemetryRecorder, TelemetryStream, recording

# (bound, samples) configs, coarsest first; the last is the production
# default and serves as the bit-identity reference.
FULL_SWEEP = [
    (5.0, 51),
    (5.0, 201),
    (5.0, 1001),
    (5.0, 5001),
    (4.0, 20001),
    (5.0, 20001),
]
REDUCED_SWEEP = [(5.0, 201), (5.0, 2001), (5.0, 20001)]


def _run_config(
    shape, spec: FractureSpec, nmax: int, bound: float, samples: int
) -> dict:
    """One refinement run under a freshly installed default LUT."""
    lut = ErfLookupTable(bound=bound, samples=samples)
    previous = set_default_lut(lut)
    recorder = TelemetryRecorder()
    try:
        initial, _ = approximate_fracture(shape, spec)
        start = time.perf_counter()
        with recording(recorder):
            shots, trace = refine(
                shape, spec, initial, RefineParams(nmax=nmax)
            )
        wall = time.perf_counter() - start
    finally:
        set_default_lut(previous)
    counters = recorder.counters
    return {
        "bound": bound,
        "samples": samples,
        "table_bytes": samples * 8,
        "max_abs_error": lut.max_abs_error(),
        "refine_wall_s": wall,
        "final_shots": len(shots),
        "final_cost": trace.cost_history[-1] if trace.cost_history else None,
        "iterations": trace.iterations,
        "profile_cache_hits": int(
            counters.get("cache.profile.hits", 0)
        ),
        "profile_cache_misses": int(
            counters.get("cache.profile.misses", 0)
        ),
        "lut_evaluations": int(counters.get("cache.lut.hits", 0)),
        "_shots": shots,  # stripped before serialization
    }


def run(sweep: list[tuple[float, int]], nmax: int, clips: list[int],
        stream: TelemetryStream) -> dict:
    spec = FractureSpec()
    suite = ilt_suite()
    shapes = [suite[i] for i in clips]
    reference = sweep[-1]
    results = []
    for shape in shapes:
        print(f"== {shape.name} ==")
        configs = []
        reference_shots = None
        for bound, samples in sweep:
            entry = _run_config(shape, spec, nmax, bound, samples)
            entry["clip"] = shape.name
            if (bound, samples) == reference:
                reference_shots = entry["_shots"]
            configs.append(entry)
        for entry in configs:
            entry["bit_identical_to_reference"] = (
                entry.pop("_shots") == reference_shots
            )
            hits, misses = (
                entry["profile_cache_hits"], entry["profile_cache_misses"]
            )
            entry["cache_hit_rate"] = (
                hits / (hits + misses) if hits + misses else None
            )
            stream.emit({"type": "event", "name": "lut_config", **{
                k: v for k, v in entry.items() if not k.startswith("_")
            }})
            print(
                f"   bound={entry['bound']} samples={entry['samples']:>6}: "
                f"err {entry['max_abs_error']:.2e}, "
                f"{entry['refine_wall_s']:.2f}s, "
                f"{entry['final_shots']} shots"
                f"{' (=ref)' if entry['bit_identical_to_reference'] else ''}, "
                f"cache hit rate {entry['cache_hit_rate']:.1%}, "
                f"{entry['lut_evaluations']} LUT evals"
            )
        results.append({"clip": shape.name, "configs": configs})
    # The coarsest table whose shots match the reference on every clip.
    identical = [
        cfg["samples"]
        for cfg in results[0]["configs"]
        if all(
            c["bit_identical_to_reference"]
            for lay in results
            for c in lay["configs"]
            if (c["bound"], c["samples"]) == (cfg["bound"], cfg["samples"])
        )
    ]
    aggregate = {
        "reference": {"bound": reference[0], "samples": reference[1]},
        "min_samples_bit_identical": min(identical) if identical else None,
    }
    print(
        f"aggregate: coarsest bit-identical table "
        f"{aggregate['min_samples_bit_identical']} samples"
    )
    return {
        "benchmark": "lut_resolution_sweep",
        "baseline": "ErfLookupTable(bound=5.0, samples=20001) — the default",
        "nmax": nmax,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "clips": results,
        "aggregate": aggregate,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI-sized sweep: one clip, three table sizes",
    )
    parser.add_argument("--nmax", type=int, default=60)
    parser.add_argument(
        "--clips", type=int, nargs="*", default=None,
        help="ilt_suite indices (default: 0 1 reduced, 0 1 2 full)",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path("benchmarks/output/BENCH_lut_sweep.json"),
    )
    parser.add_argument(
        "--stream", type=Path, default=None,
        help="telemetry stream path (default: <out>.jsonl)",
    )
    args = parser.parse_args()
    sweep = REDUCED_SWEEP if args.reduced else FULL_SWEEP
    clips = args.clips if args.clips is not None else (
        [0] if args.reduced else [0, 1, 2]
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    stream_path = args.stream or args.out.with_suffix(".jsonl")
    with TelemetryStream(stream_path) as stream:
        payload = run(sweep, args.nmax, clips, stream)
    args.out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.out} (stream: {stream_path})")


if __name__ == "__main__":
    main()
