"""Regenerate paper Figures 1–5 and benchmark the operations they depict.

Each figure of the paper illustrates one algorithmic step; the matching
bench here measures that step on a real clip and writes the regenerated
SVG to ``benchmarks/output/figureN.svg``:

* Figure 1 — RDP simplification + corner point extraction.
* Figure 2 — corner rounding analysis (numeric L_th derivation).
* Figure 3 — compatibility graph build + inverse-graph coloring.
* Figure 4 — degenerate color class placement (min-size + extension).
* Figure 5 — the MergeShots pass.
"""

from __future__ import annotations

from repro.bench.figures import render_figure
from repro.ebeam.corner import compute_lth
from repro.fracture.corner_points import extract_corner_points
from repro.fracture.graph_color import build_compatibility_graph
from repro.fracture.merge import merge_shots
from repro.fracture.placement import shot_from_class
from repro.fracture.state import RefinementState
from repro.geometry.rdp import rdp_simplify
from repro.geometry.rect import Rect
from repro.graphlib.clique_cover import clique_partition


def _save(output_dir, number: int) -> None:
    (output_dir / f"figure{number}.svg").write_text(render_figure(number))


def test_fig1_rdp_and_corner_points(benchmark, ilt_shapes, spec, output_dir):
    shape = ilt_shapes[0]

    def op():
        simplified = rdp_simplify(shape.polygon, spec.gamma)
        return extract_corner_points(simplified, spec.lth)

    points = benchmark(op)
    assert len(points) >= 4
    _save(output_dir, 1)


def test_fig2_lth_derivation(benchmark, spec, output_dir):
    def op():
        compute_lth.cache_clear()
        return compute_lth(spec.sigma, spec.gamma, spec.rho)

    lth = benchmark(op)
    assert 8.0 < lth < 22.0
    _save(output_dir, 2)


def test_fig3_graph_build_and_coloring(benchmark, ilt_shapes, spec, output_dir):
    shape = ilt_shapes[0]
    simplified = rdp_simplify(shape.polygon, spec.gamma)
    corner_points = extract_corner_points(simplified, spec.lth)

    def op():
        graph = build_compatibility_graph(corner_points, shape, spec)
        return clique_partition(graph)

    cliques = benchmark(op)
    assert cliques
    _save(output_dir, 3)


def test_fig4_placement_extension(benchmark, ilt_shapes, spec, output_dir):
    shape = ilt_shapes[0]
    simplified = rdp_simplify(shape.polygon, spec.gamma)
    corner_points = extract_corner_points(simplified, spec.lth)
    # A degenerate class: the first corner point alone.
    single = [corner_points[0]]

    def op():
        return shot_from_class(single, shape, spec.lmin)

    shot = benchmark(op)
    assert shot is None or shot.meets_min_size(spec.lmin)
    _save(output_dir, 4)


def test_fig5_merge_pass(benchmark, ilt_shapes, spec, output_dir):
    shape = ilt_shapes[0]
    bbox = shape.polygon.bounding_box()
    # Stacked aligned shots inside the clip's bounding region.
    shots = [
        Rect(bbox.xbl, bbox.ybl + i * 12.0, bbox.xtr, bbox.ybl + i * 12.0 + 11.0)
        for i in range(4)
    ]

    def op():
        state = RefinementState(shape, spec, shots)
        return merge_shots(state)

    merges = benchmark(op)
    assert merges >= 0
    _save(output_dir, 5)
