"""Hierarchy-aware fracturing benchmark: fracture unique cells once,
instantiate every placement, and re-run warm from the on-disk cache.

Builds a deterministic arrayed layout — an AREF lattice of a 3-polygon
unit cell (bar, contact, L) plus a rotated and a mirrored SREF so the
orientation-specific template path is exercised — and measures three
flows over the same placements:

* **flattened** — every placed polygon fractured from scratch (the
  pre-PR-8 reference path);
* **cold hierarchy** — unique canonical geometry fractured once,
  repeats instantiated by exact shot translation, templates persisted
  to an on-disk :class:`~repro.fracture.cache.FractureCache`;
* **warm hierarchy** — a second run against the same disk store: every
  placement served from cache, zero fresh fractures.

Recorded per layout: wall time, total shots, failing pixels, unique
geometries vs instances, cache hit rates, bit-identity of the three
shot lists, and the warm-vs-cold / vs-flattened speedups (the PR's
acceptance bar: warm ≥ 5× faster than the cold run).

The default method is ``partition``: its fracture is a pure function
of the local geometry, so template replay is bit-identical to the
flattened run and the script gates its exit code on that identity.
The model-based ``ours`` method evaluates the aerial-image model in
absolute mask coordinates, so two placements of the same cell can
legitimately differ in the last ulp (and a greedy near-tie can flip a
shot's extension axis); with ``--method ours`` identity is still
*recorded* but not gated.

Standalone by design (no pytest-benchmark): CI runs it non-gating and
diffs the JSON against the committed baseline.

    PYTHONPATH=src python benchmarks/bench_hierarchy.py \
        --out benchmarks/output/BENCH_hierarchy.json
    PYTHONPATH=src python benchmarks/bench_hierarchy.py --reduced ...
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.fracture.cache import FractureCache
from repro.geometry.polygon import Polygon
from repro.mask.constraints import FractureSpec
from repro.mask.gds import GdsCell, GdsRef, Layout, TARGET_LAYER
from repro.mask.hierarchy import fracture_layout
from repro.methods import make_fracturer

SPEC = FractureSpec()


def unit_cell() -> GdsCell:
    """Three-polygon unit cell: a bar, a contact, and an L."""
    return GdsCell("UNIT", polygons=[
        (TARGET_LAYER, Polygon([(0, 0), (120, 0), (120, 40), (0, 40)])),
        (TARGET_LAYER, Polygon([(160, 0), (200, 0), (200, 40), (160, 40)])),
        (TARGET_LAYER, Polygon(
            [(0, 60), (80, 60), (80, 100), (40, 100), (40, 140), (0, 140)]
        )),
    ])


def arrayed_layout(cols: int, rows: int) -> Layout:
    """``cols×rows`` AREF of the unit cell + one rotated, one mirrored SREF."""
    pitch = 260.0
    top = GdsCell("TOP", refs=[
        GdsRef.array("UNIT", origin=(0.0, 0.0), cols=cols, rows=rows,
                     col_pitch=pitch, row_pitch=pitch),
        GdsRef("UNIT", origin=(cols * pitch + 200.0, 0.0), rotation=90),
        GdsRef("UNIT", origin=(cols * pitch + 200.0, rows * pitch),
               mirror_x=True),
    ])
    return Layout(cells={"UNIT": unit_cell(), "TOP": top}, top="TOP")


def run_flow(layout, method, hierarchy, cache=None):
    fracturer = make_fracturer(method)
    start = time.perf_counter()
    report = fracture_layout(
        layout, fracturer, SPEC, cache=cache, hierarchy=hierarchy
    )
    wall = time.perf_counter() - start
    return report, wall


def shot_key(shots):
    return [(s.xbl, s.ybl, s.xtr, s.ytr) for s in shots]


def bench_layout(name, layout, method, store: Path) -> dict:
    flat_report, flat_wall = run_flow(layout, method, hierarchy=False)
    flat_shots = shot_key(flat_report.shots)

    cold_cache = FractureCache(max_entries=4096, persist_dir=store)
    cold_report, cold_wall = run_flow(
        layout, method, hierarchy=True, cache=cold_cache
    )
    warm_cache = FractureCache(max_entries=4096, persist_dir=store)
    warm_report, warm_wall = run_flow(
        layout, method, hierarchy=True, cache=warm_cache
    )

    stats = cold_report.stats
    entry = {
        "layout": name,
        "cells": stats["cells"],
        "cell_instances": stats["cell_instances"],
        "polygon_instances": stats["polygon_instances"],
        "unique_geometries": stats["unique_geometries"],
        "flattened": {
            "wall_s": flat_wall,
            "shots": flat_report.shot_count,
            "failing": sum(
                r.report.total_failing for r in flat_report.results
            ),
        },
        "cold": {
            "wall_s": cold_wall,
            "shots": cold_report.shot_count,
            "template_fractures": stats["template_fractures"],
            "cache_hits": stats["cache_hits"],
            "hit_rate": stats["hit_rate"],
            "identical_to_flattened": shot_key(cold_report.shots) == flat_shots,
            "speedup_vs_flattened": flat_wall / cold_wall,
        },
        "warm": {
            "wall_s": warm_wall,
            "shots": warm_report.shot_count,
            "template_fractures": warm_report.stats["template_fractures"],
            "hit_rate": warm_report.stats["hit_rate"],
            "identical_to_flattened": shot_key(warm_report.shots) == flat_shots,
            "speedup_vs_cold": cold_wall / warm_wall,
            "speedup_vs_flattened": flat_wall / warm_wall,
        },
    }
    print(
        f"{name}: {stats['polygon_instances']} instances / "
        f"{stats['unique_geometries']} unique — flat {flat_wall:.2f}s, "
        f"cold {cold_wall:.2f}s ({stats['hit_rate']:.0%} hits), "
        f"warm {warm_wall:.3f}s "
        f"({entry['warm']['speedup_vs_cold']:.1f}x vs cold)"
    )
    return entry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/output/BENCH_hierarchy.json")
    parser.add_argument(
        "--method", default="partition",
        help="fracture method; identity is gated only for 'partition' "
        "(translation-equivariant — see module docstring)",
    )
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI mode: smaller arrays, same structure",
    )
    args = parser.parse_args()

    # 5×5 is the smallest grid whose *cold* run already clears the CI
    # gate of a >=90% instance hit rate (75 hits / 81 instances).
    grids = [(5, 5)] if args.reduced else [(5, 5), (8, 8)]
    layouts = []
    for cols, rows in grids:
        store = Path(tempfile.mkdtemp(prefix="bench-hier-cache-"))
        try:
            layouts.append(
                bench_layout(
                    f"array-{cols}x{rows}",
                    arrayed_layout(cols, rows),
                    args.method,
                    store,
                )
            )
        finally:
            shutil.rmtree(store, ignore_errors=True)

    payload = {
        "benchmark": "hierarchy_cache",
        "method": args.method,
        "reduced": args.reduced,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "layouts": layouts,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1))
    print(f"wrote {out}")

    identical = all(
        entry["cold"]["identical_to_flattened"]
        and entry["warm"]["identical_to_flattened"]
        for entry in layouts
    )
    if not identical and args.method == "partition":
        print("FAIL: hierarchical shot list differs from flattened run")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
