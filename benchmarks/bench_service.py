"""Fracture-service benchmark: throughput, latency, and warm-cache win.

Runs a real :class:`FractureService` daemon (in a background thread, on
a private state directory) and drives it through the wire protocol with
the stock :class:`ServiceClient` — the measured path is exactly what a
CLI user gets, socket round-trips included.

Workload: a mixed batch of small contact-like clips (fast, priority 0)
and large tiled bars (``window_nm`` executor, priority 5), submitted
twice:

* **cold** — empty caches: every clip fractures from scratch;
* **warm** — identical resubmission: every clip should hit the
  content-addressed result cache, and the per-job telemetry counters
  (``cache.result.hits``) prove where the speedup came from.

Reported per phase: jobs/sec over the batch, p50/p99 submit-to-settled
latency (overall and per priority class), plus daemon cache statistics
and the warm/cold speedup.  Standalone by design (no pytest-benchmark):
CI runs it non-gating and uploads the JSON artifact.

    PYTHONPATH=src python benchmarks/bench_service.py \
        --out benchmarks/output/BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --reduced ...
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import tempfile
import threading
import time
from pathlib import Path

from repro.service.client import ServiceClient, wait_for_daemon
from repro.service.guard import ServiceLimits
from repro.service.server import FractureService

SMALL_PRIORITY = 0
LARGE_PRIORITY = 5

#: Maximum jobs/sec regression the guarded phase may show against the
#: cold phase before the benchmark itself fails (the hardening PR's
#: acceptance bar: admission + watchdog are per-submit microseconds and
#: one timer tick, invisible next to seconds of fracturing).
MAX_GUARD_OVERHEAD_PCT = 5.0


# -- workload ----------------------------------------------------------------


def small_job(index: int) -> dict:
    """A distinct contact-like square per index (cold phase must miss)."""
    size = 40.0 + 2.0 * index
    return {
        "clips": {f"sq-{index}": [
            [0.0, 0.0], [size, 0.0], [size, size], [0.0, size],
        ]},
        "method": "partition",
        "priority": SMALL_PRIORITY,
        "name": f"small-{index}",
    }


def large_job(index: int) -> dict:
    """A tiled bar (11×1 tiles under window 100) per index."""
    width = 1100.0 + 100.0 * index
    return {
        "clips": {f"bar-{index}": [
            [0.0, 0.0], [width, 0.0], [width, 60.0], [0.0, 60.0],
        ]},
        "method": "partition",
        "window_nm": 100.0,
        "priority": LARGE_PRIORITY,
        "name": f"large-{index}",
    }


def warmup_workload() -> list[dict]:
    """Clips disjoint from the measured workload (content-addressed
    caching would otherwise hand the cold phase warm results)."""
    return [
        {
            "clips": {"warmup-sq": [
                [0.0, 0.0], [33.5, 0.0], [33.5, 33.5], [0.0, 33.5],
            ]},
            "method": "partition",
            "priority": SMALL_PRIORITY,
            "name": "warmup-sq",
        },
        {
            "clips": {"warmup-bar": [
                [0.0, 0.0], [777.0, 0.0], [777.0, 60.0], [0.0, 60.0],
            ]},
            "method": "partition",
            "window_nm": 100.0,
            "priority": LARGE_PRIORITY,
            "name": "warmup-bar",
        },
    ]


def build_workload(reduced: bool) -> list[dict]:
    n_small, n_large = (4, 1) if reduced else (12, 3)
    return (
        [small_job(i) for i in range(n_small)]
        + [large_job(i) for i in range(n_large)]
    )


# -- daemon under test -------------------------------------------------------


def bench_limits() -> ServiceLimits:
    """Every guard armed, none tight enough to shed the bench workload.

    The point is to pay the full enforcement cost on each request —
    admission validation, token-bucket accounting, fair-share lookup,
    watchdog ticks against real heartbeats — without any guard firing.
    """
    return ServiceLimits(
        rate_per_s=1000.0,
        rate_burst=1000,
        queue_share=1.0,
        job_wall_budget_s=600.0,
        watchdog_interval_s=0.25,
        read_deadline_s=30.0,
        idle_timeout_s=300.0,
    )


def start_daemon(
    state_dir: Path, workers: int, limits: ServiceLimits | None = None
) -> threading.Thread:
    """Run the daemon's event loop on a background thread until shutdown."""
    ready = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        async def main() -> None:
            service = FractureService(
                state_dir, workers=workers, max_queue_depth=256,
                limits=limits,
            )
            await service.start()
            ready.set()
            await service.run_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException as error:  # surfaced via the join below
            failure.append(error)
            ready.set()

    thread = threading.Thread(target=run, name="bench-daemon", daemon=True)
    thread.start()
    if not ready.wait(timeout=30) or failure:
        raise RuntimeError(f"daemon failed to start: {failure or 'timeout'}")
    return thread


# -- measurement -------------------------------------------------------------


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile; deterministic and dependency-free."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def latency_stats(latencies: list[float]) -> dict:
    return {
        "count": len(latencies),
        "p50_s": round(percentile(latencies, 0.50), 4),
        "p99_s": round(percentile(latencies, 0.99), 4),
        "mean_s": round(sum(latencies) / len(latencies), 4),
        "max_s": round(max(latencies), 4),
    }


def run_phase(
    client: ServiceClient, state_dir: Path, workload: list[dict], phase: str
) -> dict:
    started = time.perf_counter()
    submitted: list[tuple[str, dict]] = []
    for job in workload:
        job_id = client.submit(
            job["clips"],
            name=f"{phase}-{job['name']}",
            method=job["method"],
            priority=job["priority"],
            window_nm=job.get("window_nm"),
        )
        submitted.append((job_id, job))

    jobs: list[dict] = []
    cache_hits = cache_misses = 0
    for job_id, job in submitted:
        record = client.wait(job_id, timeout_s=600)
        if record["state"] != "done":
            raise RuntimeError(
                f"{phase}: {job_id} settled as {record['state']}: "
                f"{record.get('error')}"
            )
        telemetry = json.loads(
            (state_dir / "jobs" / job_id / "telemetry.json").read_text()
        )
        counters = telemetry.get("counters", {})
        cache_hits += counters.get("cache.result.hits", 0)
        cache_misses += counters.get("cache.result.misses", 0)
        jobs.append({
            "job_id": job_id,
            "priority": job["priority"],
            "latency_s": record["latency_s"],
            "queue_wait_s": record["queue_wait_s"],
            "run_wall_s": record["run_wall_s"],
            "result_cache_hits": counters.get("cache.result.hits", 0),
        })
    wall_s = time.perf_counter() - started

    latencies = [job["latency_s"] for job in jobs]
    by_priority = {
        "small_p0": [j["latency_s"] for j in jobs
                     if j["priority"] == SMALL_PRIORITY],
        "large_p5": [j["latency_s"] for j in jobs
                     if j["priority"] == LARGE_PRIORITY],
    }
    return {
        "wall_s": round(wall_s, 4),
        "jobs_per_sec": round(len(jobs) / wall_s, 3),
        "latency": latency_stats(latencies),
        "latency_by_class": {
            name: latency_stats(values)
            for name, values in by_priority.items() if values
        },
        "telemetry_cache_hits": cache_hits,
        "telemetry_cache_misses": cache_misses,
        "jobs": jobs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).parent / "output" / "BENCH_service.json",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--reduced", action="store_true",
        help="small workload for CI (4 small + 1 large job per phase)",
    )
    args = parser.parse_args()

    workload = build_workload(args.reduced)
    # Pay the process-wide one-time costs (default LUT build) before any
    # phase, so cold vs guarded measures guard overhead, not warmup luck.
    from repro.ebeam.lut import default_lut

    default_lut()
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        state_dir = Path(tmp) / "state"
        daemon = start_daemon(state_dir, args.workers)
        if not wait_for_daemon(state_dir, timeout_s=30):
            raise RuntimeError("daemon socket never came up")
        client = ServiceClient(state_dir, timeout_s=600)
        try:
            # Throwaway phase: first-fracture costs (allocator, numpy
            # internals) are paid here, not by whichever measured phase
            # happens to run first.  Distinct daemon-level caches per
            # phase name keep it from warming the cold phase's clips.
            run_phase(client, state_dir, warmup_workload(), "warmup")
            cold = run_phase(client, state_dir, workload, "cold")
            warm = run_phase(client, state_dir, workload, "warm")
            daemon_stats = client.stats()
        finally:
            client.shutdown("drain")
            daemon.join(timeout=60)

        # Guarded phase: a fresh daemon (cold caches, like the cold
        # phase) with the whole guard stack armed.  Same workload, same
        # from-scratch fracturing — the jobs/sec delta against cold IS
        # the enforcement overhead.
        guarded_dir = Path(tmp) / "state-guarded"
        daemon = start_daemon(guarded_dir, args.workers, bench_limits())
        if not wait_for_daemon(guarded_dir, timeout_s=30):
            raise RuntimeError("guarded daemon socket never came up")
        client = ServiceClient(guarded_dir, timeout_s=600, client_id="bench")
        try:
            guarded = run_phase(client, guarded_dir, workload, "guarded")
            guarded_stats = client.stats()
        finally:
            client.shutdown("drain")
            daemon.join(timeout=60)

    speedup = (
        round(cold["wall_s"] / warm["wall_s"], 2) if warm["wall_s"] else None
    )
    overhead_pct = round(
        100.0 * (1.0 - guarded["jobs_per_sec"] / cold["jobs_per_sec"]), 2
    )
    guard_counters = guarded_stats["guard"]["counters"]
    fired = {k: v for k, v in guard_counters.items() if v}
    if fired:
        raise RuntimeError(
            f"guarded phase tripped guards on bench traffic: {fired} "
            f"(limits must be generous enough to only *measure* the path)"
        )
    if not guarded_stats["guard"]["watchdog_enabled"]:
        raise RuntimeError("guarded phase ran without the watchdog")
    if overhead_pct > MAX_GUARD_OVERHEAD_PCT:
        raise RuntimeError(
            f"guard overhead {overhead_pct}% exceeds "
            f"{MAX_GUARD_OVERHEAD_PCT}% "
            f"(cold {cold['jobs_per_sec']} -> guarded "
            f"{guarded['jobs_per_sec']} jobs/s)"
        )
    report = {
        "schema": "repro.bench.service/v1",
        "host": platform.node(),
        "python": platform.python_version(),
        "config": {
            "workers": args.workers,
            "reduced": args.reduced,
            "jobs_per_phase": len(workload),
            "priorities": {"small": SMALL_PRIORITY, "large": LARGE_PRIORITY},
        },
        "phases": {"cold": cold, "warm": warm, "guarded": guarded},
        "warm_speedup_x": speedup,
        "guard_overhead_pct": overhead_pct,
        "guard_limits": guarded_stats["guard"]["limits"],
        "daemon_caches": daemon_stats["caches"],
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=1) + "\n")

    print(f"cold: {cold['jobs_per_sec']} jobs/s "
          f"(p50 {cold['latency']['p50_s']} s, "
          f"p99 {cold['latency']['p99_s']} s)")
    print(f"warm: {warm['jobs_per_sec']} jobs/s "
          f"(p50 {warm['latency']['p50_s']} s, "
          f"p99 {warm['latency']['p99_s']} s, "
          f"{warm['telemetry_cache_hits']} cache hits)")
    print(f"guarded: {guarded['jobs_per_sec']} jobs/s "
          f"(overhead {overhead_pct}% vs cold, budget "
          f"{MAX_GUARD_OVERHEAD_PCT}%)")
    print(f"warm speedup: {speedup}x -> {args.out}")


if __name__ == "__main__":
    main()
