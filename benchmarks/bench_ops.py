"""Micro-benchmarks and ablations of the design choices DESIGN.md calls out.

Not tied to a specific paper table; these quantify:

* the LUT speedup of the intensity convolution (paper §4.1 claims the
  lookup table is what makes edge pricing affordable);
* incremental vs from-scratch intensity maintenance;
* the narrow edge-move window vs the full shot window;
* coloring-strategy ablation for stage 1;
* the polish/portfolio extensions vs the paper-faithful Algorithm 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import erf

from repro.ebeam.intensity import shot_profile_1d
from repro.ebeam.intensity_map import IntensityMap
from repro.ebeam.lut import default_lut
from repro.fracture.graph_color import GraphBuildConfig, approximate_fracture
from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams, refine
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.mask.constraints import check_solution


class TestIntensityOps:
    def test_profile_with_lut(self, benchmark):
        xs = np.linspace(-50, 150, 400)
        lut = default_lut()
        benchmark(lambda: shot_profile_1d(xs, 0.0, 100.0, 6.25, lut))

    def test_profile_with_exact_erf(self, benchmark):
        xs = np.linspace(-50, 150, 400)
        benchmark(lambda: shot_profile_1d(xs, 0.0, 100.0, 6.25, erf))

    def test_incremental_replace(self, benchmark):
        grid = PixelGrid(0, 0, 1.0, 320, 320)
        imap = IntensityMap(grid, 6.25)
        shots = [Rect(20 + 30 * i, 40, 45 + 30 * i, 200) for i in range(8)]
        for shot in shots:
            imap.add(shot)

        def op():
            imap.replace(shots[3], shots[3].moved_edge("right", 1.0))
            imap.replace(shots[3].moved_edge("right", 1.0), shots[3])

        benchmark(op)

    def test_full_rebuild(self, benchmark):
        grid = PixelGrid(0, 0, 1.0, 320, 320)
        imap = IntensityMap(grid, 6.25)
        shots = [Rect(20 + 30 * i, 40, 45 + 30 * i, 200) for i in range(8)]
        benchmark(lambda: imap.rebuild(shots))

    def test_edge_move_delta_narrow_window(self, benchmark):
        grid = PixelGrid(0, 0, 1.0, 320, 320)
        imap = IntensityMap(grid, 6.25)
        shot = Rect(50, 50, 250, 250)
        imap.add(shot)
        moved = shot.moved_edge("left", 1.0)
        benchmark(lambda: imap.edge_move_delta(shot, moved, "left"))

    def test_candidate_total_full_window(self, benchmark):
        grid = PixelGrid(0, 0, 1.0, 320, 320)
        imap = IntensityMap(grid, 6.25)
        shot = Rect(50, 50, 250, 250)
        imap.add(shot)
        moved = shot.moved_edge("left", 1.0)
        benchmark(lambda: imap.candidate_total(shot, moved))


class TestStageOneAblation:
    @pytest.mark.parametrize("strategy", ["given", "largest_first", "dsatur"])
    def test_coloring_strategy(self, benchmark, ilt_shapes, spec, strategy):
        shape = ilt_shapes[3]
        config = GraphBuildConfig(coloring_strategy=strategy)
        shots, _ = benchmark(lambda: approximate_fracture(shape, spec, config))
        assert shots


class TestPipelineAblation:
    def test_paper_faithful_algorithm1(self, benchmark, ilt_shapes, spec):
        """Algorithm 1 exactly as published: single run, no polish."""
        shape = ilt_shapes[1]
        fracturer = ModelBasedFracturer(config=RefineConfig.paper_faithful())
        result = benchmark.pedantic(
            lambda: fracturer.fracture(shape, spec), rounds=1, iterations=1
        )
        assert result.shot_count >= 1

    def test_with_polish_and_portfolio(self, benchmark, ilt_shapes, spec):
        """The full engineered pipeline (extensions enabled)."""
        shape = ilt_shapes[1]
        fracturer = ModelBasedFracturer()
        result = benchmark.pedantic(
            lambda: fracturer.fracture(shape, spec), rounds=1, iterations=1
        )
        assert result.feasible

    def test_refinement_alone_fixes_violations(self, benchmark, ilt_shapes, spec):
        """Stage 2 value: violations before vs after refinement."""
        shape = ilt_shapes[0]
        initial, _ = approximate_fracture(shape, spec)
        before = check_solution(initial, shape, spec).total_failing

        def op():
            return refine(shape, spec, initial, RefineParams(nmax=250))

        shots, trace = benchmark.pedantic(op, rounds=1, iterations=1)
        after = check_solution(shots, shape, spec).total_failing
        assert after <= before


class TestColoringOptimality:
    """Quantifies the paper's claim that simple sequential coloring "is
    sufficient": exact branch-and-bound clique partition vs greedy on
    the real corner-point graphs."""

    def test_greedy_vs_exact_clique_partition(self, benchmark, ilt_shapes, spec):
        from repro.fracture.corner_points import extract_corner_points
        from repro.geometry.rdp import rdp_simplify
        from repro.fracture.graph_color import build_compatibility_graph
        from repro.graphlib.clique_cover import clique_partition
        from repro.graphlib.exact import SearchBudgetExceeded, exact_clique_partition

        def ablation():
            gaps = []
            for shape in ilt_shapes[:6]:
                simplified = rdp_simplify(shape.polygon, spec.gamma)
                corner_points = extract_corner_points(simplified, spec.lth)
                graph = build_compatibility_graph(corner_points, shape, spec)
                greedy = len(clique_partition(graph))
                try:
                    exact = len(exact_clique_partition(graph, node_limit=500_000))
                except SearchBudgetExceeded:
                    continue
                gaps.append(greedy - exact)
            return gaps

        gaps = benchmark.pedantic(ablation, rounds=1, iterations=1)
        assert gaps, "exact solver must finish on at least one clip"
        # The paper's observation: greedy is (near-)optimal on these graphs.
        assert max(gaps) <= 2


class TestSolutionQuality:
    """Dose-latitude comparison: solutions with equal shot counts are not
    equally manufacturable; the proposed method's overlapping cover keeps
    a usable dose window."""

    def test_dose_latitude_by_method(self, benchmark, ilt_shapes, spec, output_dir):
        from repro.baselines import GreedySetCoverFracturer
        from repro.ebeam.latitude import compare_latitude

        shape = ilt_shapes[0]

        def analysis():
            solutions = {
                "GSC": GreedySetCoverFracturer().fracture_shots(shape, spec),
                "OURS": ModelBasedFracturer(
                    config=RefineConfig(params=RefineParams(nmax=400, nh=3))
                ).fracture_shots(shape, spec),
            }
            return compare_latitude(solutions, shape, spec)

        windows = benchmark.pedantic(analysis, rounds=1, iterations=1)
        lines = [f"dose latitude on {shape.name}"]
        for name, window in windows.items():
            lines.append(
                f"  {name:>5s}: s_min={window.s_min:.3f} s_max={window.s_max:.3f} "
                f"latitude={window.latitude:.3f} nominal-feasible={window.feasible_at_nominal}"
            )
        (output_dir / "dose_latitude.txt").write_text("\n".join(lines) + "\n")
        print("\n" + "\n".join(lines))
        assert windows["OURS"].feasible_at_nominal
