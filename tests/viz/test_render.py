"""Unit tests for ready-made renderings."""

import xml.etree.ElementTree as ET

import numpy as np

from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.viz.render import intensity_contour, render_fracture, render_polygon_overlay


class TestRenderFracture:
    def test_valid_svg_with_shots(self, rect_shape):
        svg = render_fracture(rect_shape, [Rect(0, 0, 30, 40), Rect(30, 0, 60, 40)])
        root = ET.fromstring(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) == 3  # background + 2 shots
        assert "2 shots" in svg

    def test_custom_title(self, rect_shape):
        svg = render_fracture(rect_shape, [], title="hello")
        assert "hello" in svg


class TestRenderOverlay:
    def test_overlay_polylines_and_points(self, rect_shape):
        svg = render_polygon_overlay(
            rect_shape,
            overlays=[(rect_shape.polygon, "#ff0000")],
            points=[(5.0, 5.0, "#00ff00")],
            title="overlay",
        )
        root = ET.fromstring(svg)
        assert root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert root.findall(".//{http://www.w3.org/2000/svg}circle")


class TestIntensityContour:
    def test_contour_surrounds_shot(self):
        grid = PixelGrid(-20, -20, 1.0, 100, 100)
        imap = IntensityMap(grid, 6.25)
        shot = Rect(0, 0, 50, 40)
        imap.add(shot)
        segments = intensity_contour(imap.total, grid, 0.5)
        assert len(segments) > 50
        points = np.array([p for seg in segments for p in seg])
        # ρ=0.5 contour tracks the shot boundary within ~2 px.
        assert abs(points[:, 0].min() - 0.0) < 2.0
        assert abs(points[:, 0].max() - 50.0) < 2.0
        assert abs(points[:, 1].min() - 0.0) < 2.0
        assert abs(points[:, 1].max() - 40.0) < 2.0

    def test_no_contour_for_flat_field(self):
        grid = PixelGrid(0, 0, 1.0, 10, 10)
        assert intensity_contour(np.zeros((10, 10)), grid, 0.5) == []
