"""Unit tests for the SVG canvas."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import SvgCanvas


@pytest.fixture()
def canvas() -> SvgCanvas:
    return SvgCanvas(0.0, 0.0, 100.0, 50.0, scale=2.0, padding=0.0)


class TestCanvas:
    def test_degenerate_extent_rejected(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 0, 0, 10)

    def test_empty_document_valid(self, canvas):
        root = ET.fromstring(canvas.to_string())
        assert root.tag.endswith("svg")
        assert root.get("width") == "200"
        assert root.get("height") == "100"

    def test_y_axis_flipped(self, canvas):
        canvas.circle(0.0, 0.0, radius_px=1.0)
        root = ET.fromstring(canvas.to_string())
        circle = root.find(".//{http://www.w3.org/2000/svg}circle")
        assert float(circle.get("cy")) == 100.0  # bottom of the image

    def test_rect_geometry(self, canvas):
        canvas.rect(10, 10, 30, 20)
        root = ET.fromstring(canvas.to_string())
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        drawn = rects[1]  # rects[0] is the background
        assert float(drawn.get("width")) == 40.0
        assert float(drawn.get("height")) == 20.0

    def test_text_escaped(self, canvas):
        canvas.text(5, 5, "a < b & c")
        assert "a &lt; b &amp; c" in canvas.to_string()

    def test_all_elements_render(self, canvas):
        canvas.rect(0, 0, 10, 10)
        canvas.polygon([(0, 0), (10, 0), (5, 8)])
        canvas.polyline([(0, 0), (10, 10)], dash="2,2")
        canvas.circle(5, 5)
        canvas.line(0, 0, 10, 0)
        canvas.text(1, 1, "label")
        root = ET.fromstring(canvas.to_string())
        assert len(list(root)) == 7  # background + 6 elements

    def test_save(self, canvas, tmp_path):
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")
